//! Lowering parsed specifications into the semantic model the Tiera and
//! Wiera engines interpret.
//!
//! Compilation does three jobs:
//!
//! 1. **Layout extraction** — tier declarations become [`TierLayout`]s
//!    (name resolved, sizes normalized to bytes); region declarations become
//!    [`RegionLayout`]s.
//! 2. **Rule lowering** — each `event(...) : response {...}` becomes a
//!    [`Rule`]: a recognized [`EventKind`] plus a list of [`Action`]s with
//!    units normalized (durations → ms, sizes → bytes, rates → bytes/s,
//!    percent → fraction) and all symbolic targets resolved.
//! 3. **Consistency recognition** — the paper hand-codes its three
//!    consistency protocols from event/response shapes; we recognize those
//!    shapes in the insert rule and report them as a [`ConsistencyModel`]
//!    so the Wiera engine can run its native protocol implementation.

use crate::ast::{BinOp, EventRule, Expr, PolicySpec, SpecKind, Stmt};
use crate::error::PolicyError;
use crate::units;
use crate::units::Unit;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A storage tier within an instance, sizes normalized to bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierLayout {
    pub label: String,
    /// Tier kind name as written (`Memcached`, `LocalDisk`, `S3-IA`, …);
    /// resolution to an actual backend kind happens in the tiera crate.
    pub kind_name: String,
    pub size_bytes: u64,
}

/// A Tiera instance template: named tier stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceLayout {
    pub name: String,
    pub tiers: Vec<TierLayout>,
}

/// One replica site in a Wiera policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionLayout {
    pub label: String,
    /// Region name as written (`US-West`); resolved by the wiera crate.
    pub region_name: String,
    pub primary: bool,
    pub instance: InstanceLayout,
}

/// The three consistency protocols of §3.3.1, recognized from rule shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsistencyModel {
    /// Global lock + synchronous broadcast from any replica (Fig. 3(a)).
    MultiPrimaries,
    /// All writes forwarded to one primary; `sync` chooses the `copy`
    /// (synchronous) vs `queue` (asynchronous) propagation variant (Fig. 3(b)).
    PrimaryBackup { sync: bool },
    /// Local write + queued background distribution (Fig. 4).
    Eventual,
}

impl std::fmt::Display for ConsistencyModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyModel::MultiPrimaries => write!(f, "MultiPrimaries"),
            ConsistencyModel::PrimaryBackup { sync: true } => write!(f, "PrimaryBackup(sync)"),
            ConsistencyModel::PrimaryBackup { sync: false } => write!(f, "PrimaryBackup(async)"),
            ConsistencyModel::Eventual => write!(f, "Eventual"),
        }
    }
}

/// Recognized event shapes (§2.1 Tiera events + §3.2.3 Wiera additions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// `insert.into` / `insert.into == tierX` — a put arrived (optionally
    /// scoped to a tier).
    Insert { into: Option<String> },
    /// `time = t` — periodic timer. `period_ms` is `None` when the period is
    /// an unbound specification parameter (bound at instantiation).
    Timer { period_ms: Option<f64> },
    /// `tierX.filled == 50%` — capacity threshold.
    TierFilled { tier: String, fraction: f64 },
    /// `object.lastAccessedTime > 120 hours` — ColdDataMonitoring (§3.2.3).
    ColdData { older_than_ms: f64 },
    /// `threshold.type == put|get` — LatencyMonitoring (§3.2.3).
    OpLatency { op: String },
    /// `threshold.type == primary` — RequestsMonitoring (§3.2.3).
    Requests,
}

/// What an action operates on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Selector {
    /// `what: insert.object` — the object being inserted.
    InsertObject,
    /// `what: insert.key` — the key being inserted (lock/release).
    InsertKey,
    /// `what: object.location == tier1 && object.dirty == true` — all
    /// objects matching a metadata predicate.
    Where(Condition),
    /// `what: consistency` — the global consistency model (change_policy).
    Consistency,
    /// `what: primary_instance` — the primary role (change_policy).
    PrimaryRole,
}

/// Where an action sends data (or what it changes to).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Target {
    /// A tier label within this instance.
    Tier(String),
    /// The local Tiera instance (its default ingest tier).
    LocalInstance,
    /// Every other replica in the Wiera instance.
    AllRegions,
    /// The current primary instance.
    PrimaryInstance,
    /// The instance that forwarded the most requests (ChangePrimary).
    InstanceForwardMost,
    /// A named policy (change_policy to:EventualConsistency).
    Policy(String),
}

/// A lowered response action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    Store {
        what: Selector,
        to: Target,
    },
    Copy {
        what: Selector,
        to: Target,
        bandwidth_bps: Option<f64>,
    },
    Move {
        what: Selector,
        to: Target,
        bandwidth_bps: Option<f64>,
    },
    Delete {
        what: Selector,
    },
    Forward {
        what: Selector,
        to: Target,
    },
    Queue {
        what: Selector,
        to: Target,
    },
    Lock {
        what: Selector,
    },
    Release {
        what: Selector,
    },
    ChangePolicy {
        what: Selector,
        to: Target,
    },
    /// `insert.object.dirty = true`
    SetAttr {
        path: Vec<String>,
        value: CondValue,
    },
    Compress {
        what: Selector,
    },
    Encrypt {
        what: Selector,
    },
    Grow {
        tier: String,
        by_bytes: u64,
    },
    If {
        cond: Condition,
        then: Vec<Action>,
        otherwise: Vec<Action>,
    },
}

/// Comparison operators usable in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A normalized literal or field reference on the right of a comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CondValue {
    /// Canonical units: durations in ms, sizes in bytes, rates in bytes/s,
    /// percent as a fraction.
    Num(f64),
    Bool(bool),
    Ident(String),
    /// Another environment field (`forwarded_requests >= updates_from_primary`).
    Field(Vec<String>),
}

/// An evaluable predicate tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    And(Box<Condition>, Box<Condition>),
    Or(Box<Condition>, Box<Condition>),
    Cmp {
        field: Vec<String>,
        op: CmpOp,
        value: CondValue,
    },
}

/// Values an evaluation environment can supply for a field.
#[derive(Debug, Clone, PartialEq)]
pub enum EnvValue {
    Num(f64),
    Bool(bool),
    Str(String),
}

/// Evaluation environment: maps dotted field paths to values. Canonical
/// units as in [`CondValue::Num`].
pub trait Env {
    fn lookup(&self, path: &[String]) -> Option<EnvValue>;
}

/// A `(path, value)` map environment, convenient for tests and monitors.
impl Env for BTreeMap<String, EnvValue> {
    fn lookup(&self, path: &[String]) -> Option<EnvValue> {
        self.get(&path.join(".")).cloned()
    }
}

impl Condition {
    /// Evaluate against an environment. Unknown fields make the comparison
    /// false (never errors at run time — matching the forgiving behaviour
    /// policies need when metadata is missing).
    pub fn eval(&self, env: &dyn Env) -> bool {
        match self {
            Condition::And(a, b) => a.eval(env) && b.eval(env),
            Condition::Or(a, b) => a.eval(env) || b.eval(env),
            Condition::Cmp { field, op, value } => {
                let Some(lhs) = env.lookup(field) else {
                    return false;
                };
                let rhs = match value {
                    CondValue::Num(n) => EnvValue::Num(*n),
                    CondValue::Bool(b) => EnvValue::Bool(*b),
                    // A bare identifier is first tried as an environment
                    // field (`forwarded_requests >= updates_from_primary`),
                    // falling back to a symbolic string (`== tier1`).
                    CondValue::Ident(s) => env
                        .lookup(std::slice::from_ref(s))
                        .unwrap_or_else(|| EnvValue::Str(s.clone())),
                    CondValue::Field(p) => match env.lookup(p) {
                        Some(v) => v,
                        None => return false,
                    },
                };
                Self::compare(&lhs, *op, &rhs)
            }
        }
    }

    fn compare(lhs: &EnvValue, op: CmpOp, rhs: &EnvValue) -> bool {
        use std::cmp::Ordering;
        let ord = match (lhs, rhs) {
            (EnvValue::Num(a), EnvValue::Num(b)) => a.partial_cmp(b),
            (EnvValue::Bool(a), EnvValue::Bool(b)) => Some(a.cmp(b)),
            (EnvValue::Str(a), EnvValue::Str(b)) => Some(a.cmp(b)),
            _ => None,
        };
        let Some(ord) = ord else { return false };
        match op {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// One lowered event→response rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    pub event: EventKind,
    pub actions: Vec<Action>,
}

/// The compiled policy: layouts + rules + recognized consistency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledPolicy {
    pub kind: SpecKind,
    pub name: String,
    pub tiers: Vec<TierLayout>,
    pub regions: Vec<RegionLayout>,
    pub rules: Vec<Rule>,
    /// Recognized consistency protocol, if the insert rule matches one of
    /// the paper's three shapes.
    pub consistency: Option<ConsistencyModel>,
}

/// Compile with no parameter bindings.
pub fn compile(spec: &PolicySpec) -> Result<CompiledPolicy, PolicyError> {
    compile_with_params(spec, &BTreeMap::new())
}

/// Compile, binding specification parameters (e.g. `time t`) to values in
/// canonical units (durations in ms).
///
/// Runs the static analyzer first and refuses the specification when it
/// produces any deny-level diagnostic; the findings are carried in
/// [`PolicyError::diagnostics`]. Use [`lower_with_params`] to skip the gate.
pub fn compile_with_params(
    spec: &PolicySpec,
    params: &BTreeMap<String, f64>,
) -> Result<CompiledPolicy, PolicyError> {
    let diags = crate::analyze::analyze(spec);
    if crate::diag::worst_is_deny(&diags, false) {
        return Err(PolicyError::rejected(diags));
    }
    lower_with_params(spec, params)
}

/// Lower without the analyzer gate (the analyzer itself uses this; tools
/// that already ran [`crate::analyze::analyze`] can too).
pub fn lower_with_params(
    spec: &PolicySpec,
    params: &BTreeMap<String, f64>,
) -> Result<CompiledPolicy, PolicyError> {
    let c = Compiler { spec, params };
    c.run()
}

struct Compiler<'a> {
    spec: &'a PolicySpec,
    params: &'a BTreeMap<String, f64>,
}

impl<'a> Compiler<'a> {
    fn run(&self) -> Result<CompiledPolicy, PolicyError> {
        let tiers = self
            .spec
            .tiers
            .iter()
            .map(|t| self.tier_layout(&t.label, &t.attrs))
            .collect::<Result<Vec<_>, _>>()?;

        let mut regions = Vec::new();
        for r in &self.spec.regions {
            let region_name = r
                .attr("region")
                .and_then(|e| e.as_ident().map(str::to_string))
                .ok_or_else(|| {
                    PolicyError::general(format!("region '{}' missing 'region' attribute", r.label))
                })?;
            let primary = r.attr("primary").and_then(Expr::as_bool).unwrap_or(false);
            let name = r
                .attr("name")
                .and_then(|e| e.as_ident().map(str::to_string))
                .unwrap_or_else(|| "Instance".to_string());
            let rtiers = r
                .tiers
                .iter()
                .map(|t| self.tier_layout(&t.label, &t.attrs))
                .collect::<Result<Vec<_>, _>>()?;
            regions.push(RegionLayout {
                label: r.label.clone(),
                region_name,
                primary,
                instance: InstanceLayout {
                    name,
                    tiers: rtiers,
                },
            });
        }

        let tier_labels: Vec<&str> = tiers.iter().map(|t| t.label.as_str()).collect();
        let rules = self
            .spec
            .events
            .iter()
            .map(|e| self.rule(e, &tier_labels))
            .collect::<Result<Vec<_>, _>>()?;

        let consistency = deduce_consistency(&rules);

        Ok(CompiledPolicy {
            kind: self.spec.kind,
            name: self.spec.name.clone(),
            tiers,
            regions,
            rules,
            consistency,
        })
    }

    fn tier_layout(
        &self,
        label: &str,
        attrs: &BTreeMap<String, Expr>,
    ) -> Result<TierLayout, PolicyError> {
        let kind_name = attrs
            .get("name")
            .and_then(|e| e.as_ident().map(str::to_string))
            .ok_or_else(|| PolicyError::general(format!("tier '{label}' missing 'name'")))?;
        let size_bytes = match attrs.get("size") {
            Some(e) => {
                let (v, u) = e.as_num().ok_or_else(|| {
                    PolicyError::general(format!("tier '{label}' size not numeric"))
                })?;
                match u {
                    Some(u) => units::to_bytes(v, u).ok_or_else(|| {
                        PolicyError::general(format!("tier '{label}' size has non-size unit"))
                    })?,
                    None => v as u64, // raw bytes
                }
            }
            None => 0, // unlimited / provider-managed (e.g. S3)
        };
        Ok(TierLayout {
            label: label.to_string(),
            kind_name,
            size_bytes,
        })
    }

    // ---- events -----------------------------------------------------------

    fn rule(&self, rule: &EventRule, tier_labels: &[&str]) -> Result<Rule, PolicyError> {
        let event = self
            .event_kind(&rule.event)
            .map_err(|e| e.or_at(rule.span))?;
        let actions = self.actions(&rule.body, tier_labels)?;
        Ok(Rule { event, actions })
    }

    fn event_kind(&self, e: &Expr) -> Result<EventKind, PolicyError> {
        match e {
            // `insert.into`
            Expr::Path(p) if p == &["insert".to_string(), "into".to_string()] => {
                Ok(EventKind::Insert { into: None })
            }
            Expr::Binary {
                op: BinOp::Eq,
                lhs,
                rhs,
            } => {
                let lpath = lhs.as_path().map(|p| p.join("."));
                match lpath.as_deref() {
                    // `insert.into == tier1`
                    Some("insert.into") => {
                        let tier = rhs.as_ident().ok_or_else(|| {
                            PolicyError::general("insert.into == <tier> expected")
                        })?;
                        Ok(EventKind::Insert {
                            into: Some(tier.to_string()),
                        })
                    }
                    // `time = t` or `time = 30 seconds`
                    Some("time") => match rhs.as_ref() {
                        Expr::Num { value, unit } => {
                            let ms = match unit {
                                Some(u) => units::to_millis(*value, *u).ok_or_else(|| {
                                    PolicyError::general("timer period must have a duration unit")
                                })?,
                                None => *value,
                            };
                            Ok(EventKind::Timer {
                                period_ms: Some(ms),
                            })
                        }
                        Expr::Path(p) if p.len() == 1 => Ok(EventKind::Timer {
                            period_ms: self.params.get(&p[0]).copied(),
                        }),
                        other => Err(PolicyError::general(format!("bad timer period {other}"))),
                    },
                    // `threshold.type == put|get|primary`
                    Some("threshold.type") => {
                        let what = rhs.as_ident().ok_or_else(|| {
                            PolicyError::general("threshold.type == <op> expected")
                        })?;
                        match what {
                            "put" | "get" => Ok(EventKind::OpLatency {
                                op: what.to_string(),
                            }),
                            "primary" => Ok(EventKind::Requests),
                            other => Err(PolicyError::general(format!(
                                "unknown threshold type '{other}'"
                            ))),
                        }
                    }
                    // `tierX.filled == 50%`
                    Some(path) if path.ends_with(".filled") => {
                        let tier = path.trim_end_matches(".filled").to_string();
                        let (v, u) = rhs
                            .as_num()
                            .ok_or_else(|| PolicyError::general("filled threshold not numeric"))?;
                        let fraction = match u {
                            Some(u) => units::to_fraction(v, u).ok_or_else(|| {
                                PolicyError::general("filled threshold must be a percentage")
                            })?,
                            None => v,
                        };
                        Ok(EventKind::TierFilled { tier, fraction })
                    }
                    _ => Err(PolicyError::general(format!("unrecognized event '{e}'"))),
                }
            }
            // `object.lastAccessedTime > 120 hours`
            Expr::Binary {
                op: BinOp::Gt,
                lhs,
                rhs,
            } => {
                let lpath = lhs.as_path().map(|p| p.join("."));
                if lpath.as_deref() == Some("object.lastAccessedTime") {
                    let (v, u) = rhs
                        .as_num()
                        .ok_or_else(|| PolicyError::general("cold-data threshold not numeric"))?;
                    let ms = match u {
                        Some(u) => units::to_millis(v, u).ok_or_else(|| {
                            PolicyError::general("cold-data threshold must be a duration")
                        })?,
                        None => v,
                    };
                    Ok(EventKind::ColdData { older_than_ms: ms })
                } else {
                    Err(PolicyError::general(format!("unrecognized event '{e}'")))
                }
            }
            other => Err(PolicyError::general(format!(
                "unrecognized event '{other}'"
            ))),
        }
    }

    // ---- actions ----------------------------------------------------------

    fn actions(&self, body: &[Stmt], tiers: &[&str]) -> Result<Vec<Action>, PolicyError> {
        body.iter().map(|s| self.action(s, tiers)).collect()
    }

    fn action(&self, stmt: &Stmt, tiers: &[&str]) -> Result<Action, PolicyError> {
        match stmt {
            Stmt::Assign {
                target,
                value,
                span,
            } => Ok(Action::SetAttr {
                path: target.clone(),
                value: self.cond_value(value).map_err(|e| e.or_at(*span))?,
            }),
            Stmt::If {
                cond,
                then,
                otherwise,
                span,
            } => Ok(Action::If {
                cond: self.condition(cond).map_err(|e| e.or_at(*span))?,
                then: self.actions(then, tiers)?,
                otherwise: self.actions(otherwise, tiers)?,
            }),
            Stmt::Call { name, args, span } => {
                self.call(name, args, tiers).map_err(|e| e.or_at(*span))
            }
        }
    }

    fn call(
        &self,
        name: &str,
        args: &[(String, Expr)],
        tiers: &[&str],
    ) -> Result<Action, PolicyError> {
        let get = |key: &str| args.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let what = || -> Result<Selector, PolicyError> {
            let e = get("what")
                .ok_or_else(|| PolicyError::general(format!("{name}() missing 'what:'")))?;
            self.selector(e)
        };
        let to = |ts: &[&str]| -> Result<Target, PolicyError> {
            let e =
                get("to").ok_or_else(|| PolicyError::general(format!("{name}() missing 'to:'")))?;
            self.target(e, ts)
        };
        let bandwidth = || -> Result<Option<f64>, PolicyError> {
            match get("bandwidth") {
                None => Ok(None),
                Some(e) => {
                    let (v, u) = e
                        .as_num()
                        .ok_or_else(|| PolicyError::general("bandwidth must be numeric"))?;
                    let bps = match u {
                        Some(u) => units::to_bytes_per_sec(v, u)
                            .ok_or_else(|| PolicyError::general("bandwidth needs a rate unit"))?,
                        None => v,
                    };
                    Ok(Some(bps))
                }
            }
        };

        // Normalize the paper's `chage_policy` typo.
        let name_norm = if name == "chage_policy" {
            "change_policy"
        } else {
            name
        };
        match name_norm {
            "store" => Ok(Action::Store {
                what: what()?,
                to: to(tiers)?,
            }),
            "copy" => Ok(Action::Copy {
                what: what()?,
                to: to(tiers)?,
                bandwidth_bps: bandwidth()?,
            }),
            "move" => Ok(Action::Move {
                what: what()?,
                to: to(tiers)?,
                bandwidth_bps: bandwidth()?,
            }),
            "delete" => Ok(Action::Delete { what: what()? }),
            "forward" => Ok(Action::Forward {
                what: what()?,
                to: to(tiers)?,
            }),
            "queue" => Ok(Action::Queue {
                what: what()?,
                to: to(tiers)?,
            }),
            "lock" => Ok(Action::Lock { what: what()? }),
            "release" => Ok(Action::Release { what: what()? }),
            "change_policy" => Ok(Action::ChangePolicy {
                what: what()?,
                to: to(tiers)?,
            }),
            "compress" => Ok(Action::Compress { what: what()? }),
            "encrypt" => Ok(Action::Encrypt { what: what()? }),
            "grow" => {
                let tier = get("what")
                    .and_then(|e| e.as_ident().map(str::to_string))
                    .ok_or_else(|| PolicyError::general("grow() needs what:<tier>"))?;
                let by = get("by")
                    .and_then(Expr::as_num)
                    .ok_or_else(|| PolicyError::general("grow() needs by:<size>"))?;
                let by_bytes = match by.1 {
                    Some(u) => units::to_bytes(by.0, u)
                        .ok_or_else(|| PolicyError::general("grow() 'by' needs a size unit"))?,
                    None => by.0 as u64,
                };
                Ok(Action::Grow { tier, by_bytes })
            }
            other => Err(PolicyError::general(format!("unknown response '{other}'"))),
        }
    }

    fn selector(&self, e: &Expr) -> Result<Selector, PolicyError> {
        match e {
            Expr::Path(p) => match p.join(".").as_str() {
                "insert.object" | "insert.oject" => Ok(Selector::InsertObject), // figure typo
                "insert.key" => Ok(Selector::InsertKey),
                "consistency" => Ok(Selector::Consistency),
                "primary_instance" => Ok(Selector::PrimaryRole),
                _ => Ok(Selector::Where(self.condition(e)?)),
            },
            Expr::Binary { .. } => Ok(Selector::Where(self.condition(e)?)),
            other => Err(PolicyError::general(format!("bad selector '{other}'"))),
        }
    }

    fn target(&self, e: &Expr, tiers: &[&str]) -> Result<Target, PolicyError> {
        let ident = e
            .as_ident()
            .ok_or_else(|| PolicyError::general(format!("bad target '{e}'")))?;
        Ok(match ident {
            "local_instance" => Target::LocalInstance,
            "all_regions" => Target::AllRegions,
            "primary_instance" => Target::PrimaryInstance,
            "instance_forward_most" => Target::InstanceForwardMost,
            t if tiers.contains(&t) || t.to_ascii_lowercase().starts_with("tier") => {
                Target::Tier(t.to_string())
            }
            policy => Target::Policy(policy.to_string()),
        })
    }

    fn condition(&self, e: &Expr) -> Result<Condition, PolicyError> {
        match e {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => Ok(Condition::And(
                Box::new(self.condition(lhs)?),
                Box::new(self.condition(rhs)?),
            )),
            Expr::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
            } => Ok(Condition::Or(
                Box::new(self.condition(lhs)?),
                Box::new(self.condition(rhs)?),
            )),
            Expr::Binary { op, lhs, rhs } => {
                let field = lhs
                    .as_path()
                    .ok_or_else(|| {
                        PolicyError::general(format!("condition lhs must be a field: {e}"))
                    })?
                    .to_vec();
                let cmp = match op {
                    BinOp::Eq => CmpOp::Eq,
                    BinOp::Ne => CmpOp::Ne,
                    BinOp::Lt => CmpOp::Lt,
                    BinOp::Le => CmpOp::Le,
                    BinOp::Gt => CmpOp::Gt,
                    BinOp::Ge => CmpOp::Ge,
                    _ => unreachable!("and/or handled above"),
                };
                Ok(Condition::Cmp {
                    field,
                    op: cmp,
                    value: self.cond_value(rhs)?,
                })
            }
            // Bare path: truthiness of a boolean field.
            Expr::Path(p) => Ok(Condition::Cmp {
                field: p.clone(),
                op: CmpOp::Eq,
                value: CondValue::Bool(true),
            }),
            other => Err(PolicyError::general(format!("bad condition '{other}'"))),
        }
    }

    /// Normalize a literal to canonical units; paths with >1 segment become
    /// field references, single idents stay symbolic.
    fn cond_value(&self, e: &Expr) -> Result<CondValue, PolicyError> {
        let bad_unit = |u: Unit| {
            PolicyError::general(format!(
                "cannot normalize value with unit '{u}' in condition"
            ))
        };
        Ok(match e {
            Expr::Num { value, unit } => {
                let v = match unit {
                    None => *value,
                    Some(u) if u.is_duration() => {
                        units::to_millis(*value, *u).ok_or_else(|| bad_unit(*u))?
                    }
                    Some(u) if u.is_size() => {
                        units::to_bytes(*value, *u).ok_or_else(|| bad_unit(*u))? as f64
                    }
                    Some(u) if u.is_rate() => {
                        units::to_bytes_per_sec(*value, *u).ok_or_else(|| bad_unit(*u))?
                    }
                    Some(Unit::Percent) => units::to_fraction(*value, Unit::Percent)
                        .ok_or_else(|| bad_unit(Unit::Percent))?,
                    Some(_) => *value,
                };
                CondValue::Num(v)
            }
            Expr::Bool(b) => CondValue::Bool(*b),
            Expr::Str(s) => CondValue::Ident(s.clone()),
            Expr::Path(p) if p.len() == 1 => CondValue::Ident(p[0].clone()),
            Expr::Path(p) => CondValue::Field(p.clone()),
            other => return Err(PolicyError::general(format!("bad value '{other}'"))),
        })
    }
}

/// Recognize the paper's consistency protocols from the insert rule's shape.
pub fn deduce_consistency(rules: &[Rule]) -> Option<ConsistencyModel> {
    let insert = rules
        .iter()
        .find(|r| matches!(r.event, EventKind::Insert { .. }))?;

    fn flat<'r>(actions: &'r [Action], out: &mut Vec<&'r Action>) {
        for a in actions {
            out.push(a);
            if let Action::If {
                then, otherwise, ..
            } = a
            {
                flat(then, out);
                flat(otherwise, out);
            }
        }
    }
    let mut all = Vec::new();
    flat(&insert.actions, &mut all);

    let has_lock = all.iter().any(|a| matches!(a, Action::Lock { .. }));
    let has_forward = all.iter().any(|a| {
        matches!(
            a,
            Action::Forward {
                to: Target::PrimaryInstance,
                ..
            }
        )
    });
    let has_copy_all = all.iter().any(|a| {
        matches!(
            a,
            Action::Copy {
                to: Target::AllRegions,
                ..
            }
        )
    });
    let has_queue_all = all.iter().any(|a| {
        matches!(
            a,
            Action::Queue {
                to: Target::AllRegions,
                ..
            }
        )
    });

    if has_lock && has_copy_all {
        Some(ConsistencyModel::MultiPrimaries)
    } else if has_forward {
        Some(ConsistencyModel::PrimaryBackup { sync: has_copy_all })
    } else if has_queue_all {
        Some(ConsistencyModel::Eventual)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compiled(src: &str) -> CompiledPolicy {
        compile(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn tier_layout_sizes_normalized() {
        let c = compiled(
            "Tiera T() {
                tier1: {name: Memcached, size: 5G};
                tier2: {name: EBS, size: 512M};
                tier3: {name: S3};
            }",
        );
        assert_eq!(c.tiers.len(), 3);
        assert_eq!(c.tiers[0].size_bytes, 5 * 1024 * 1024 * 1024);
        assert_eq!(c.tiers[1].size_bytes, 512 * 1024 * 1024);
        assert_eq!(c.tiers[2].size_bytes, 0, "unsized tier is provider-managed");
        assert_eq!(c.tiers[1].kind_name, "EBS");
    }

    #[test]
    fn region_layout_extraction() {
        let c = compiled(
            "Wiera G() {
                Region1 = {name:LowLatencyInstance, region:US-West, primary:True,
                    tier1 = {name:LocalMemory, size=5G}}
                Region2 = {name:LowLatencyInstance, region:US-East,
                    tier1 = {name:LocalMemory, size=5G}}
            }",
        );
        assert_eq!(c.regions.len(), 2);
        assert!(c.regions[0].primary);
        assert!(!c.regions[1].primary);
        assert_eq!(c.regions[0].region_name, "US-West");
        assert_eq!(c.regions[0].instance.tiers[0].kind_name, "LocalMemory");
    }

    #[test]
    fn insert_event_with_and_without_tier() {
        let c = compiled(
            "Tiera T() {
                event(insert.into) : response { store(what:insert.object, to:tier1); }
                event(insert.into == tier1) : response { copy(what:insert.object, to:tier2); }
            }",
        );
        assert_eq!(c.rules[0].event, EventKind::Insert { into: None });
        assert_eq!(
            c.rules[1].event,
            EventKind::Insert {
                into: Some("tier1".into())
            }
        );
    }

    #[test]
    fn timer_event_bound_and_unbound() {
        let spec = parse(
            "Tiera T(time t) {
                event(time=t) : response { copy(what:object.dirty == true, to:tier2); }
            }",
        )
        .unwrap();
        let unbound = compile(&spec).unwrap();
        assert_eq!(unbound.rules[0].event, EventKind::Timer { period_ms: None });
        let mut params = BTreeMap::new();
        params.insert("t".to_string(), 5000.0);
        let bound = compile_with_params(&spec, &params).unwrap();
        assert_eq!(
            bound.rules[0].event,
            EventKind::Timer {
                period_ms: Some(5000.0)
            }
        );

        let lit = compiled(
            "Tiera T() { event(time=30 seconds) : response { delete(what:object.dirty == true); } }",
        );
        assert_eq!(
            lit.rules[0].event,
            EventKind::Timer {
                period_ms: Some(30_000.0)
            }
        );
    }

    #[test]
    fn filled_and_cold_events() {
        let c = compiled(
            "Tiera T() {
                event(tier2.filled == 50%) : response {
                    copy(what:object.location == tier2, to:tier3, bandwidth:40KB/s);
                }
                event(object.lastAccessedTime > 120 hours) : response {
                    move(what:object.location == tier1, to:tier2, bandwidth:100KB/s);
                }
            }",
        );
        assert_eq!(
            c.rules[0].event,
            EventKind::TierFilled {
                tier: "tier2".into(),
                fraction: 0.5
            }
        );
        match &c.rules[0].actions[0] {
            Action::Copy { bandwidth_bps, .. } => {
                assert_eq!(*bandwidth_bps, Some(40.0 * 1024.0));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            c.rules[1].event,
            EventKind::ColdData {
                older_than_ms: 120.0 * 3600.0 * 1000.0
            }
        );
    }

    #[test]
    fn threshold_events() {
        let c = compiled(
            "Wiera D() {
                event(threshold.type == put) : response {
                    if(threshold.latency > 800 ms && threshold.period > 30 seconds)
                        change_policy(what:consistency, to:EventualConsistency);
                }
                event(threshold.type == primary) : response {
                    change_policy(what:primary_instance, to:instance_forward_most)
                }
            }",
        );
        assert_eq!(c.rules[0].event, EventKind::OpLatency { op: "put".into() });
        assert_eq!(c.rules[1].event, EventKind::Requests);
        match &c.rules[0].actions[0] {
            Action::If { cond, then, .. } => {
                // Units normalized: 800 ms and 30_000 ms.
                let mut env = BTreeMap::new();
                env.insert("threshold.latency".to_string(), EnvValue::Num(900.0));
                env.insert("threshold.period".to_string(), EnvValue::Num(31_000.0));
                assert!(cond.eval(&env));
                env.insert("threshold.latency".to_string(), EnvValue::Num(700.0));
                assert!(!cond.eval(&env));
                match &then[0] {
                    Action::ChangePolicy {
                        what: Selector::Consistency,
                        to: Target::Policy(p),
                    } => {
                        assert_eq!(p, "EventualConsistency");
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
        match &c.rules[1].actions[0] {
            Action::ChangePolicy {
                what: Selector::PrimaryRole,
                to: Target::InstanceForwardMost,
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn consistency_recognition_multi_primaries() {
        let c = compiled(
            "Wiera MP() {
                event(insert.into) : response {
                    lock(what:insert.key)
                    store(what:insert.object, to:local_instance)
                    copy(what:insert.object, to:all_regions)
                    release(what:insert.key)
                }
            }",
        );
        assert_eq!(c.consistency, Some(ConsistencyModel::MultiPrimaries));
    }

    #[test]
    fn consistency_recognition_primary_backup() {
        let sync = compiled(
            "Wiera PB() {
                event(insert.into) : response {
                    if(local_instance.isPrimary == True)
                        store(what:insert.object, to:local_instance)
                        copy(what:insert.object, to:all_regions)
                    else
                        forward(what:insert.object, to:primary_instance)
                }
            }",
        );
        assert_eq!(
            sync.consistency,
            Some(ConsistencyModel::PrimaryBackup { sync: true })
        );
        let asynch = compiled(
            "Wiera PB() {
                event(insert.into) : response {
                    if(local_instance.isPrimary == True)
                        store(what:insert.object, to:local_instance)
                        queue(what:insert.object, to:all_regions)
                    else
                        forward(what:insert.object, to:primary_instance)
                }
            }",
        );
        assert_eq!(
            asynch.consistency,
            Some(ConsistencyModel::PrimaryBackup { sync: false })
        );
    }

    #[test]
    fn consistency_recognition_eventual() {
        let c = compiled(
            "Wiera E() {
                event(insert.into) : response {
                    store(what:insert.oject, to:local_instance)
                    queue(what:insert.object, to:all_regions)
                }
            }",
        );
        assert_eq!(c.consistency, Some(ConsistencyModel::Eventual));
    }

    #[test]
    fn no_consistency_for_local_policies() {
        let c = compiled(
            "Tiera T() {
                event(insert.into) : response { store(what:insert.object, to:tier1); }
            }",
        );
        assert_eq!(c.consistency, None);
    }

    #[test]
    fn selector_where_evaluates_metadata() {
        let c = compiled(
            "Tiera T(time t) {
                event(time=t) : response {
                    copy(what: object.location == tier1 && object.dirty == true, to:tier2);
                }
            }",
        );
        match &c.rules[0].actions[0] {
            Action::Copy {
                what: Selector::Where(cond),
                ..
            } => {
                let mut env = BTreeMap::new();
                env.insert("object.location".to_string(), EnvValue::Str("tier1".into()));
                env.insert("object.dirty".to_string(), EnvValue::Bool(true));
                assert!(cond.eval(&env));
                env.insert("object.dirty".to_string(), EnvValue::Bool(false));
                assert!(!cond.eval(&env));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn field_to_field_comparison() {
        let c = compiled(
            "Wiera CP() {
                event(threshold.type == primary) : response {
                    if(forwarded.requests >= primary.requests && threshold.period = 600 seconds)
                        change_policy(what:primary_instance, to:instance_forward_most)
                }
            }",
        );
        match &c.rules[0].actions[0] {
            Action::If { cond, .. } => {
                let mut env = BTreeMap::new();
                env.insert("forwarded.requests".to_string(), EnvValue::Num(10.0));
                env.insert("primary.requests".to_string(), EnvValue::Num(5.0));
                env.insert("threshold.period".to_string(), EnvValue::Num(600_000.0));
                assert!(cond.eval(&env));
                env.insert("primary.requests".to_string(), EnvValue::Num(50.0));
                assert!(!cond.eval(&env));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_response_rejected() {
        let spec =
            parse("Tiera T() { event(insert.into) : response { explode(what:insert.object); } }")
                .unwrap();
        assert!(compile(&spec).is_err());
    }

    #[test]
    fn missing_region_attr_rejected() {
        let spec = parse("Wiera W() { Region1 = {name:X} }").unwrap();
        assert!(compile(&spec).is_err());
    }

    #[test]
    fn set_attr_lowering() {
        let c = compiled(
            "Tiera T() {
                event(insert.into) : response {
                    insert.object.dirty = true;
                    store(what:insert.object, to:tier1);
                }
            }",
        );
        assert_eq!(
            c.rules[0].actions[0],
            Action::SetAttr {
                path: vec!["insert".into(), "object".into(), "dirty".into()],
                value: CondValue::Bool(true)
            }
        );
    }

    #[test]
    fn condition_missing_field_is_false() {
        let cond = Condition::Cmp {
            field: vec!["nope".into()],
            op: CmpOp::Eq,
            value: CondValue::Num(1.0),
        };
        let env: BTreeMap<String, EnvValue> = BTreeMap::new();
        assert!(!cond.eval(&env));
    }

    #[test]
    fn condition_type_mismatch_is_false() {
        let cond = Condition::Cmp {
            field: vec!["x".into()],
            op: CmpOp::Eq,
            value: CondValue::Num(1.0),
        };
        let mut env = BTreeMap::new();
        env.insert("x".to_string(), EnvValue::Bool(true));
        assert!(!cond.eval(&env));
    }
}
