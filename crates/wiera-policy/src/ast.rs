//! Abstract syntax tree for policy specifications.
//!
//! Declarations, rules, and statements carry [`Span`]s pointing back into
//! the source text for diagnostics. Spans never affect equality (see
//! [`Span`]), so pretty-print/reparse round trips still compare equal.

use crate::diag::Span;
use crate::units::Unit;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Whether the specification defines a single-DC (Tiera) or global (Wiera)
/// policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecKind {
    Tiera,
    Wiera,
}

impl fmt::Display for SpecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecKind::Tiera => write!(f, "Tiera"),
            SpecKind::Wiera => write!(f, "Wiera"),
        }
    }
}

/// A parsed policy specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySpec {
    pub kind: SpecKind,
    pub name: String,
    /// Formal parameters, e.g. `(time t)`.
    pub params: Vec<Param>,
    /// `tierN: {name: ..., size: ...}` declarations (Tiera specs).
    pub tiers: Vec<TierDecl>,
    /// `RegionN = {name: ..., region: ..., ...}` declarations (Wiera specs).
    pub regions: Vec<RegionDecl>,
    /// `event(...) : response { ... }` rules, in source order.
    pub events: Vec<EventRule>,
}

/// A formal parameter: `time t`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    pub ty: String,
    pub name: String,
    pub span: Span,
}

/// `tier1: {name: Memcached, size: 5G}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierDecl {
    pub label: String,
    pub attrs: BTreeMap<String, Expr>,
    /// Span of the declaration's label.
    pub span: Span,
}

impl TierDecl {
    pub fn attr(&self, key: &str) -> Option<&Expr> {
        self.attrs.get(key)
    }
}

/// `Region1 = {name: LowLatencyInstance, region: US-West, primary: True,
///             tier1 = {...}, tier2 = {...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionDecl {
    pub label: String,
    pub attrs: BTreeMap<String, Expr>,
    pub tiers: Vec<TierDecl>,
    /// Span of the declaration's label.
    pub span: Span,
}

impl RegionDecl {
    pub fn attr(&self, key: &str) -> Option<&Expr> {
        self.attrs.get(key)
    }
}

/// One `event(...) : response { ... }` rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRule {
    pub event: Expr,
    pub body: Vec<Stmt>,
    /// Span of the `event(...)` header.
    pub span: Span,
}

/// Response-body statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `insert.object.dirty = true;`
    Assign {
        target: Vec<String>,
        value: Expr,
        span: Span,
    },
    /// `store(what: insert.object, to: tier1);` — a named response with
    /// keyword arguments.
    Call {
        name: String,
        args: Vec<(String, Expr)>,
        span: Span,
    },
    /// `if (cond) stmts [else if ... / else stmts]` (brace-less in the
    /// paper's figures; braces also accepted).
    If {
        cond: Expr,
        then: Vec<Stmt>,
        otherwise: Vec<Stmt>,
        span: Span,
    },
}

impl Stmt {
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. } | Stmt::Call { span, .. } | Stmt::If { span, .. } => *span,
        }
    }
}

/// Binary operators in event conditions and if-conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Numeric literal with optional unit: `5G`, `800 ms`, `50%`.
    Num {
        value: f64,
        unit: Option<Unit>,
    },
    /// Bare or quoted string that is not a path: `US-West`.
    Str(String),
    Bool(bool),
    /// Dotted identifier path: `insert.object`, `object.location`,
    /// `threshold.latency`, `tier1`, `local_instance`, `all_regions`.
    Path(Vec<String>),
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
}

impl Expr {
    pub fn path(segments: &[&str]) -> Expr {
        Expr::Path(segments.iter().map(|s| s.to_string()).collect())
    }

    /// The path segments if this is a path expression.
    pub fn as_path(&self) -> Option<&[String]> {
        match self {
            Expr::Path(p) => Some(p),
            _ => None,
        }
    }

    /// A single-segment path or bare string as an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Expr::Path(p) if p.len() == 1 => Some(&p[0]),
            Expr::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<(f64, Option<Unit>)> {
        match self {
            Expr::Num { value, unit } => Some((*value, *unit)),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Expr::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num { value, unit } => {
                if value.fract() == 0.0 {
                    write!(f, "{}", *value as i64)?;
                } else {
                    write!(f, "{value}")?;
                }
                if let Some(u) = unit {
                    write!(f, "{u}")?;
                }
                Ok(())
            }
            Expr::Str(s) => write!(f, "{s}"),
            Expr::Bool(b) => write!(f, "{}", if *b { "True" } else { "False" }),
            Expr::Path(p) => write!(f, "{}", p.join(".")),
            Expr::Binary { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Assign { target, value, .. } => write!(f, "{} = {value};", target.join(".")),
            Stmt::Call { name, args, .. } => {
                let a: Vec<String> = args.iter().map(|(k, v)| format!("{k}:{v}")).collect();
                write!(f, "{name}({});", a.join(", "))
            }
            Stmt::If {
                cond,
                then,
                otherwise,
                ..
            } => {
                writeln!(f, "if ({cond}) {{")?;
                for s in then {
                    writeln!(f, "  {s}")?;
                }
                if !otherwise.is_empty() {
                    writeln!(f, "}} else {{")?;
                    for s in otherwise {
                        writeln!(f, "  {s}")?;
                    }
                }
                write!(f, "}}")
            }
        }
    }
}

impl fmt::Display for PolicySpec {
    /// Pretty-print in canonical form (braces around if-bodies, `:` between
    /// attribute keys and values). Reparsing the output yields an equal AST.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}(", self.kind, self.name)?;
        let ps: Vec<String> = self
            .params
            .iter()
            .map(|p| format!("{} {}", p.ty, p.name))
            .collect();
        writeln!(f, "{}) {{", ps.join(", "))?;
        for t in &self.tiers {
            let attrs: Vec<String> = t.attrs.iter().map(|(k, v)| format!("{k}: {v}")).collect();
            writeln!(f, "  {}: {{{}}};", t.label, attrs.join(", "))?;
        }
        for r in &self.regions {
            let mut parts: Vec<String> = r.attrs.iter().map(|(k, v)| format!("{k}: {v}")).collect();
            for t in &r.tiers {
                let attrs: Vec<String> = t.attrs.iter().map(|(k, v)| format!("{k}: {v}")).collect();
                parts.push(format!("{} = {{{}}}", t.label, attrs.join(", ")));
            }
            writeln!(f, "  {} = {{{}}}", r.label, parts.join(", "))?;
        }
        for e in &self.events {
            writeln!(f, "  event({}) : response {{", e.event)?;
            for s in &e.body {
                for line in s.to_string().lines() {
                    writeln!(f, "    {line}")?;
                }
            }
            writeln!(f, "  }}")?;
        }
        write!(f, "}}")
    }
}
