//! Fuzz-style property tests: the policy front end must never panic.
//!
//! Arbitrary byte soup, arbitrary token-ish text, and mutated canned
//! policies all have to flow through lex → parse → analyze → compile and
//! come out as either a value or a typed `PolicyError` — panics and stack
//! overflows are bugs.

use proptest::prelude::*;
use wiera_policy::{analyze_source, parser};

/// Run the full front end on arbitrary text; returns whether it parsed.
fn front_end_survives(src: &str) -> bool {
    let _ = wiera_policy::lexer::lex(src);
    let (spec, diags) = analyze_source(src);
    for d in &diags {
        // Rendering must not panic either, even against mismatched source.
        let _ = d.render_human(src, "fuzz");
        let _ = d.compact();
        let _ = d.to_json();
    }
    match spec {
        Some(spec) => {
            let _ = wiera_policy::compile(&spec);
            true
        }
        None => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raw bytes (interpreted lossily as UTF-8) never panic the pipeline.
    #[test]
    fn prop_arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        front_end_survives(&src);
    }

    /// Text built from language fragments — much likelier to get deep into
    /// the parser and analyzer than raw bytes — never panics either.
    #[test]
    fn prop_fragment_soup_never_panics(parts in prop::collection::vec(
        prop::sample::select(vec![
            "Tiera", "Wiera", "T", "(", ")", "{", "}", ";", ":", "=", "==", ">",
            "&&", "||", "event", "response", "insert.into", "time", "t", "5G",
            "50%", "800 ms", "tier1", "tier2", "store", "copy", "move", "if",
            "else", "what", "to", "insert.object", "object.location",
            "Region1", "name", "size", "Memcached", "%comment\n", "\n", ",",
        ]),
        0..64,
    )) {
        front_end_survives(&parts.join(" "));
    }

    /// Canned paper policies with a window of bytes deleted still never
    /// panic — truncation mid-token, mid-rule, mid-region included.
    #[test]
    fn prop_mutated_canned_never_panics(
        which in 0usize..10,
        start in 0usize..2000,
        len in 1usize..200,
    ) {
        let (_, _, src) = wiera_policy::canned::ALL[which];
        let chars: Vec<char> = src.chars().collect();
        let start = start.min(chars.len());
        let end = (start + len).min(chars.len());
        let mutated: String = chars[..start].iter().chain(&chars[end..]).collect();
        front_end_survives(&mutated);
    }

    /// Deeply nested expressions error out instead of blowing the stack.
    #[test]
    fn prop_deep_nesting_is_an_error(depth in 1usize..600) {
        let src = format!(
            "Tiera T() {{ event(insert.into) : response {{ delete(what:{}object.dirty == true{}); }} }}",
            "(".repeat(depth),
            ")".repeat(depth),
        );
        let r = parser::parse(&src);
        if depth > 128 {
            prop_assert!(r.is_err());
        }
    }
}
