//! The shipped policy corpus must satisfy the analyzer.
//!
//! * Every canned paper policy and every `examples/policies/*.policy` file
//!   lints clean at deny level — [`wiera_policy::compile`] would otherwise
//!   refuse them at launch time.
//! * Warnings are held to zero too (notes are advisory and allowed), which
//!   is the same bar the CI `policy-lint` job enforces with
//!   `--deny-warnings`.

use std::path::Path;
use wiera_policy::diag::Severity;

fn assert_clean(origin: &str, src: &str) {
    let (spec, diags) = wiera_policy::analyze_source(src);
    assert!(spec.is_some(), "{origin}: does not parse: {diags:?}");
    let gating: Vec<String> = diags
        .iter()
        .filter(|d| d.severity != Severity::Note)
        .map(|d| d.compact())
        .collect();
    assert!(gating.is_empty(), "{origin}: {gating:#?}");
}

#[test]
fn canned_corpus_lints_clean() {
    for (id, _, src) in wiera_policy::canned::ALL {
        assert_clean(&format!("canned:{id}"), src);
    }
}

#[test]
fn example_policies_lint_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/policies");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/policies exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "policy") {
            let src = std::fs::read_to_string(&path).expect("read policy");
            assert_clean(&path.to_string_lossy(), &src);
            checked += 1;
        }
    }
    assert!(checked >= 4, "expected the example corpus, found {checked}");
}

#[test]
fn canned_corpus_compiles_after_gating() {
    // The deny gate in compile() must not lock out any shipped policy.
    for (id, _, src) in wiera_policy::canned::ALL {
        let spec = wiera_policy::parse(src).expect(id);
        wiera_policy::compile(&spec).unwrap_or_else(|e| panic!("{id}: {e}"));
    }
}
