//! Golden-file tests for analyzer diagnostics.
//!
//! Each `tests/golden/wpNNN_*.policy` file is analyzed and its findings —
//! one compact line per diagnostic — are compared byte-for-byte against
//! the sibling `.expected` file. Regenerate the expectations after an
//! intentional change with:
//!
//! ```text
//! WIERA_BLESS=1 cargo test -p wiera-policy --test golden_diags
//! ```

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn policy_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(golden_dir())
        .expect("tests/golden exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "policy"))
        .collect();
    files.sort();
    files
}

fn compact_report(src: &str) -> String {
    let (_, diags) = wiera_policy::analyze_source(src);
    let mut out = String::new();
    for d in &diags {
        out.push_str(&d.compact());
        out.push('\n');
    }
    out
}

#[test]
fn golden_diagnostics_match() {
    let bless = std::env::var_os("WIERA_BLESS").is_some();
    let mut mismatches = Vec::new();
    let files = policy_files();
    assert!(
        files.len() >= 18,
        "expected one golden policy per diagnostic code, found {}",
        files.len()
    );
    for policy in &files {
        let src = std::fs::read_to_string(policy).expect("read policy");
        let got = compact_report(&src);
        let expected_path = policy.with_extension("expected");
        if bless {
            std::fs::write(&expected_path, &got).expect("write expected");
            continue;
        }
        let want = std::fs::read_to_string(&expected_path).unwrap_or_default();
        if got != want {
            mismatches.push(format!(
                "== {} ==\n--- expected ---\n{want}--- got ---\n{got}",
                policy.file_name().unwrap_or_default().to_string_lossy()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden diagnostics diverged (run with WIERA_BLESS=1 to regenerate):\n{}",
        mismatches.join("\n")
    );
}

/// The corpus must exercise every stable diagnostic code, and each file's
/// primary code (from its name) must actually fire on that file.
#[test]
fn golden_corpus_covers_every_code() {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for policy in policy_files() {
        let src = std::fs::read_to_string(&policy).expect("read policy");
        let (_, diags) = wiera_policy::analyze_source(&src);
        let name = policy
            .file_stem()
            .unwrap_or_default()
            .to_string_lossy()
            .to_string();
        let primary = name[..5].to_ascii_uppercase(); // "wp008_..." -> "WP008"
        assert!(
            diags.iter().any(|d| d.code.as_str() == primary),
            "{name}: expected {primary} to fire, got {:?}",
            diags.iter().map(|d| d.code.as_str()).collect::<Vec<_>>()
        );
        for d in &diags {
            seen.insert(d.code.as_str().to_string());
        }
    }
    for code in wiera_policy::diag::ALL_CODES {
        assert!(
            seen.contains(code.as_str()),
            "no golden policy exercises {code}"
        );
    }
}
