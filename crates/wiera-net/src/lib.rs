#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! Simulated geo-distributed network substrate.
//!
//! The paper runs Wiera on AWS EC2 instances in four regions plus Azure VMs,
//! connected by the public Internet. This crate stands in for all of that:
//!
//! * [`region`] — the fixed set of data-center sites used by the paper's
//!   evaluation (AWS US-East/US-West/EU-West/Asia-East, a second US-West DC,
//!   and an Azure US-East DC).
//! * [`topology`] — base RTT and bandwidth between every pair of sites,
//!   seeded from public inter-region measurements consistent with the
//!   latencies the paper reports (≈2 ms AWS↔Azure within US-East, ≈170 ms
//!   US-East↔Asia-East, …).
//! * [`fabric`] — the live network model: samples per-message latency,
//!   applies runtime *delay injection* (Fig. 7's (a)–(c) events), partitions,
//!   and per-site egress caps (Azure VM-size network throttling, Fig. 11/12).
//! * [`mesh`] — a typed message transport between named nodes with modeled
//!   latency accounting: blocking RPC for synchronous protocol steps and
//!   delayed one-way delivery for asynchronous (queued) replication.
//!
//! All latencies returned are **modeled** [`SimDuration`]s; wall-clock
//! behaviour is compressed through the shared [`Clock`].
//!
//! [`SimDuration`]: wiera_sim::SimDuration
//! [`Clock`]: wiera_sim::Clock

pub mod error;
pub mod fabric;
pub mod mesh;
pub mod region;
pub mod topology;

pub use error::NetError;
pub use fabric::Fabric;
pub use mesh::{Delivery, Mesh, NodeId, ReplySlot, RpcReply};
pub use region::{Provider, Region};
pub use topology::Topology;
