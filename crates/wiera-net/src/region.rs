//! Data-center sites.
//!
//! The paper's evaluation uses AWS US-East (Virginia), US-West (N. California),
//! EU-West (Ireland) and Asia-East (Tokyo), plus Azure VMs in US-East. The
//! SimplerConsistency policy (§3.3.3) additionally uses several DCs *within*
//! the same region, modeled here as `UsWest2`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Cloud provider owning a site. Wiera's selling point is spanning both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provider {
    Aws,
    Azure,
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provider::Aws => write!(f, "AWS"),
            Provider::Azure => write!(f, "Azure"),
        }
    }
}

/// A data-center site. Two sites can be in the same *geographic region*
/// (e.g. [`Region::UsWest`] and [`Region::UsWest2`]) and still be distinct
/// DCs with a small non-zero RTT between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    /// AWS US-East (N. Virginia) — where the paper hosts Wiera + ZooKeeper.
    UsEast,
    /// AWS US-West (N. California).
    UsWest,
    /// A second DC within the US-West geographic region (§3.3.3).
    UsWest2,
    /// AWS EU-West (Ireland).
    EuWest,
    /// AWS Asia-East (Tokyo).
    AsiaEast,
    /// Azure US-East (Virginia) — ≈2 ms from AWS US-East (§5.4).
    AzureUsEast,
}

impl Region {
    /// All sites, in a stable order.
    pub const ALL: [Region; 6] = [
        Region::UsEast,
        Region::UsWest,
        Region::UsWest2,
        Region::EuWest,
        Region::AsiaEast,
        Region::AzureUsEast,
    ];

    /// The four AWS regions the paper's §5.1 experiment spans.
    pub const PAPER_FOUR: [Region; 4] = [
        Region::UsWest,
        Region::UsEast,
        Region::EuWest,
        Region::AsiaEast,
    ];

    pub fn provider(self) -> Provider {
        match self {
            Region::AzureUsEast => Provider::Azure,
            _ => Provider::Aws,
        }
    }

    /// Stable index for table-building. Matches the order of [`Region::ALL`];
    /// written as an exhaustive match so a new variant that is not added to
    /// `ALL` fails to compile instead of panicking on the data path.
    pub fn index(self) -> usize {
        match self {
            Region::UsEast => 0,
            Region::UsWest => 1,
            Region::UsWest2 => 2,
            Region::EuWest => 3,
            Region::AsiaEast => 4,
            Region::AzureUsEast => 5,
        }
    }

    /// Geographic area — sites in the same area are "nearby DCs" in the
    /// paper's sense (a couple of ms apart).
    pub fn area(self) -> &'static str {
        match self {
            Region::UsEast | Region::AzureUsEast => "us-east",
            Region::UsWest | Region::UsWest2 => "us-west",
            Region::EuWest => "eu-west",
            Region::AsiaEast => "asia-east",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Region::UsEast => "US-East",
            Region::UsWest => "US-West",
            Region::UsWest2 => "US-West-2",
            Region::EuWest => "EU-West",
            Region::AsiaEast => "Asia-East",
            Region::AzureUsEast => "Azure-US-East",
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn providers() {
        assert_eq!(Region::AzureUsEast.provider(), Provider::Azure);
        for r in [
            Region::UsEast,
            Region::UsWest,
            Region::EuWest,
            Region::AsiaEast,
        ] {
            assert_eq!(r.provider(), Provider::Aws);
        }
    }

    #[test]
    fn areas_group_nearby_dcs() {
        assert_eq!(Region::UsEast.area(), Region::AzureUsEast.area());
        assert_eq!(Region::UsWest.area(), Region::UsWest2.area());
        assert_ne!(Region::UsEast.area(), Region::UsWest.area());
    }

    #[test]
    fn indices_are_unique_and_dense() {
        let mut seen = vec![false; Region::ALL.len()];
        for r in Region::ALL {
            assert!(!seen[r.index()]);
            seen[r.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_names() {
        assert_eq!(Region::AsiaEast.to_string(), "Asia-East");
        assert_eq!(Region::AzureUsEast.to_string(), "Azure-US-East");
    }
}
