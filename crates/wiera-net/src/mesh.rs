//! Typed message transport between named nodes.
//!
//! A [`Mesh<M>`] connects nodes (Tiera instances, the Wiera controller, the
//! coordination service, clients) with two primitives:
//!
//! * [`Mesh::rpc`] — blocking request/response, used for every synchronous
//!   protocol step (forward-to-primary, synchronous `copy`, lock acquisition).
//!   The caller's thread pays the modeled round-trip (compressed through the
//!   shared clock) and gets the modeled cost back for latency accounting.
//! * [`Mesh::send`] — one-way delivery after the modeled one-way latency,
//!   used for asynchronous replication (the `queue` response) and heartbeats.
//!   A background dispatcher thread releases messages when their modeled
//!   arrival time is reached, so eventually-consistent replicas genuinely lag
//!   — which is what the Fig. 8 staleness measurements observe.
//!
//! Each service builds its own `Mesh` over a shared [`Fabric`], mirroring how
//! the paper's components each run their own Thrift server over one network.

use crate::error::NetError;
use crate::fabric::Fabric;
use crate::region::Region;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wiera_sim::{MetricsRegistry, SharedClock, SimDuration, SimInstant, Tracer};

/// Identity of a node on the mesh: the site it runs in plus a name unique
/// within the deployment (e.g. `"tiera@US-East"`, `"wiera-controller"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    pub region: Region,
    pub name: Arc<str>,
}

impl NodeId {
    pub fn new(region: Region, name: impl Into<Arc<str>>) -> Self {
        NodeId {
            region,
            name: name.into(),
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.name, self.region)
    }
}

/// What a registered node receives from its mesh inbox.
pub struct Delivery<M> {
    pub from: NodeId,
    pub msg: M,
    /// Modeled one-way network latency this message experienced.
    pub net_delay: SimDuration,
    /// Present when the sender is blocked in [`Mesh::rpc`]; the handler must
    /// call [`ReplySlot::reply`] (dropping it fails the RPC with `NoReply`).
    pub reply: Option<ReplySlot<M>>,
}

/// One-shot reply channel handed to RPC handlers.
pub struct ReplySlot<M> {
    tx: Sender<(M, SimDuration, u64)>,
}

impl<M> ReplySlot<M> {
    /// Answer the RPC. `processing` is the modeled time the handler spent
    /// (storage accesses, nested RPCs, locking); `bytes` is the reply payload
    /// size, which determines the response's network serialization time.
    pub fn reply(self, msg: M, processing: SimDuration, bytes: u64) {
        let _ = self.tx.send((msg, processing, bytes));
    }
}

/// Result of a successful RPC, with the modeled cost breakdown.
#[derive(Debug)]
pub struct RpcReply<M> {
    pub msg: M,
    /// Modeled processing time at the remote node.
    pub remote_time: SimDuration,
    /// Modeled network time (request + response legs).
    pub net_time: SimDuration,
}

impl<M> RpcReply<M> {
    /// Total modeled round-trip latency of the call.
    pub fn total(&self) -> SimDuration {
        self.remote_time + self.net_time
    }
}

struct DelayedMsg<M> {
    deliver_at: SimInstant,
    seq: u64,
    from: NodeId,
    to: NodeId,
    msg: M,
    net_delay: SimDuration,
}

impl<M> PartialEq for DelayedMsg<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for DelayedMsg<M> {}
impl<M> PartialOrd for DelayedMsg<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for DelayedMsg<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

struct MeshInner<M> {
    endpoints: RwLock<HashMap<NodeId, Sender<Delivery<M>>>>,
    queue: Mutex<BinaryHeap<Reverse<DelayedMsg<M>>>>,
    queue_cond: Condvar,
    shutdown: AtomicBool,
    seq: AtomicU64,
}

/// The transport. Clone the `Arc<Mesh<M>>` into every node.
pub struct Mesh<M: Send + 'static> {
    pub fabric: Arc<Fabric>,
    pub clock: SharedClock,
    inner: Arc<MeshInner<M>>,
}

impl<M: Send + 'static> Mesh<M> {
    pub fn new(fabric: Arc<Fabric>, clock: SharedClock) -> Arc<Self> {
        let inner = Arc::new(MeshInner {
            endpoints: RwLock::new(HashMap::new()),
            queue: Mutex::new(BinaryHeap::new()),
            queue_cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            seq: AtomicU64::new(0),
        });
        let mesh = Arc::new(Mesh {
            fabric,
            clock: clock.clone(),
            inner: inner.clone(),
        });
        // Dispatcher thread releasing delayed one-way messages. Holds a weak
        // ref via the shutdown flag; exits when the mesh shuts down.
        {
            let inner = inner.clone();
            let clock = clock.clone();
            // Spawn only fails on OS resource exhaustion at construction
            // time; the mesh cannot run without its dispatcher, so there
            // is nothing to degrade to.
            #[allow(clippy::expect_used)]
            std::thread::Builder::new()
                .name("mesh-dispatch".into())
                .spawn(move || Self::dispatch_loop(inner, clock))
                .expect("spawn mesh dispatcher");
        }
        mesh
    }

    fn dispatch_loop(inner: Arc<MeshInner<M>>, clock: SharedClock) {
        loop {
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            let mut due: Vec<DelayedMsg<M>> = Vec::new();
            let wait_hint;
            {
                let mut q = inner.queue.lock();
                let now = clock.now();
                while let Some(Reverse(head)) = q.peek() {
                    if head.deliver_at > now {
                        break;
                    }
                    if let Some(Reverse(m)) = q.pop() {
                        due.push(m);
                    }
                }
                // Correctness comes from re-checking clock.now(); the wall
                // wait below is only a hint, clamped so that ManualClock
                // tests (where scale has no wall meaning) still make progress.
                wait_hint = match q.peek() {
                    Some(Reverse(head)) => (head.deliver_at - now).to_wall(clock.scale()).clamp(
                        std::time::Duration::from_micros(50),
                        std::time::Duration::from_millis(2),
                    ),
                    None => std::time::Duration::from_millis(2),
                };
                if due.is_empty() {
                    // ws-audit: allow(WS103): condvar wait releases the queue lock atomically while parked
                    inner.queue_cond.wait_for(&mut q, wait_hint);
                }
            }
            for m in due {
                let eps = inner.endpoints.read();
                if let Some(tx) = eps.get(&m.to) {
                    let _ = tx.send(Delivery {
                        from: m.from,
                        msg: m.msg,
                        net_delay: m.net_delay,
                        reply: None,
                    });
                } else {
                    // Unknown destination: the node stopped while the message
                    // was in flight. Drop it, like the real network would.
                    let to = m.to.region.to_string();
                    MetricsRegistry::global().inc("net_send_drops", &[("to", &to)]);
                }
            }
        }
    }

    /// Attach a node; returns its inbox.
    pub fn register(&self, node: NodeId) -> Receiver<Delivery<M>> {
        let (tx, rx) = unbounded();
        self.inner.endpoints.write().insert(node, tx);
        rx
    }

    pub fn unregister(&self, node: &NodeId) {
        self.inner.endpoints.write().remove(node);
    }

    pub fn is_registered(&self, node: &NodeId) -> bool {
        self.inner.endpoints.read().contains_key(node)
    }

    /// Stop the dispatcher thread. In-flight delayed messages are dropped.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.queue_cond.notify_all();
    }

    /// One-way send: the message arrives at `to`'s inbox after the modeled
    /// one-way latency. Returns that latency (the sender does not wait).
    pub fn send(
        &self,
        from: &NodeId,
        to: &NodeId,
        msg: M,
        bytes: u64,
    ) -> Result<SimDuration, NetError> {
        if !self.fabric.is_reachable(from.region, to.region) {
            return Err(NetError::Unreachable(to.clone()));
        }
        if !self.is_registered(to) {
            return Err(NetError::UnknownNode(to.clone()));
        }
        let delay = self
            .fabric
            .one_way_at(from.region, to.region, bytes, self.clock.now());
        let deliver_at = self.clock.now() + delay;
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        self.inner.queue.lock().push(Reverse(DelayedMsg {
            deliver_at,
            seq,
            from: from.clone(),
            to: to.clone(),
            msg,
            net_delay: delay,
        }));
        self.inner.queue_cond.notify_one();
        let (from_r, to_r) = (from.region.to_string(), to.region.to_string());
        let labels = [("from", from_r.as_str()), ("to", to_r.as_str())];
        let metrics = MetricsRegistry::global();
        metrics.inc("net_send_total", &labels);
        metrics.counter("net_send_bytes", &labels).add(bytes);
        Ok(delay)
    }

    /// Blocking RPC. The caller's thread sleeps the modeled network time (so
    /// wall-clock interleavings track modeled time) and receives the modeled
    /// cost breakdown for latency accounting.
    ///
    /// `timeout` bounds the modeled wait for the remote handler.
    pub fn rpc(
        &self,
        from: &NodeId,
        to: &NodeId,
        msg: M,
        bytes: u64,
        timeout: SimDuration,
    ) -> Result<RpcReply<M>, NetError> {
        let started = self.clock.now();
        let (from_r, to_r) = (from.region.to_string(), to.region.to_string());
        let labels = [("from", from_r.as_str()), ("to", to_r.as_str())];
        let metrics = MetricsRegistry::global();
        if !self.fabric.is_reachable(from.region, to.region) {
            metrics.inc("net_rpc_errors", &labels);
            return Err(NetError::Unreachable(to.clone()));
        }
        let req_lat = self
            .fabric
            .one_way_at(from.region, to.region, bytes, self.clock.now());
        let (tx, rx) = unbounded();
        {
            let eps = self.inner.endpoints.read();
            let Some(inbox) = eps.get(to) else {
                metrics.inc("net_rpc_errors", &labels);
                return Err(NetError::UnknownNode(to.clone()));
            };
            inbox
                .send(Delivery {
                    from: from.clone(),
                    msg,
                    net_delay: req_lat,
                    reply: Some(ReplySlot { tx }),
                })
                .map_err(|_| NetError::Unreachable(to.clone()))?;
        }
        // Wall-clock bound on the wait: the modeled timeout compressed by the
        // clock scale, floored generously so slow CI machines don't produce
        // spurious timeouts.
        let wall_timeout = timeout
            .to_wall(self.clock.scale())
            .max(std::time::Duration::from_millis(250));
        let (reply, processing, reply_bytes) = match rx.recv_timeout(wall_timeout) {
            Ok(r) => r,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                metrics.inc("net_rpc_timeouts", &labels);
                Tracer::global().point(
                    self.clock.now(),
                    "net",
                    "rpc_timeout",
                    Some(format!("{from} -> {to}")),
                );
                return Err(NetError::Timeout(to.clone()));
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                metrics.inc("net_rpc_errors", &labels);
                return Err(NetError::NoReply(to.clone()));
            }
        };
        if !self.fabric.is_reachable(to.region, from.region) {
            // Partitioned while the call was in flight: the reply is lost.
            metrics.inc("net_rpc_errors", &labels);
            return Err(NetError::Unreachable(to.clone()));
        }
        let resp_lat =
            self.fabric
                .one_way_at(to.region, from.region, reply_bytes, self.clock.now());
        let net_time = req_lat + resp_lat;
        // Pay the network time on this thread so wall time tracks modeled
        // time. (The remote's processing time was already paid by the remote
        // thread while we blocked in recv.)
        self.clock.sleep(net_time);
        let total = processing + net_time;
        metrics.inc("net_rpc_total", &labels);
        metrics
            .counter("net_rpc_bytes", &labels)
            .add(bytes + reply_bytes);
        metrics.observe("net_rpc_latency", &labels, total);
        Tracer::global()
            .span(started, "net", "rpc")
            .region(to_r.clone())
            .node(to.name.as_ref())
            .finish(started + total);
        Ok(RpcReply {
            msg: reply,
            remote_time: processing,
            net_time,
        })
    }
}

impl<M> Drop for MeshInner<M> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.queue_cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_sim::ScaledClock;
    use Region::*;

    type TestMesh = Arc<Mesh<String>>;

    fn mesh() -> TestMesh {
        let fabric = Arc::new(Fabric::multicloud(1).without_jitter());
        Mesh::new(fabric, ScaledClock::shared(2000.0))
    }

    /// Spawn an echo server on `node` that prefixes replies with "re:".
    fn spawn_echo(mesh: &TestMesh, node: NodeId) -> std::thread::JoinHandle<()> {
        let rx = mesh.register(node);
        std::thread::spawn(move || {
            while let Ok(d) = rx.recv() {
                if d.msg == "stop" {
                    if let Some(r) = d.reply {
                        r.reply("stopped".into(), SimDuration::ZERO, 0);
                    }
                    return;
                }
                if let Some(r) = d.reply {
                    r.reply(format!("re:{}", d.msg), SimDuration::from_millis(3), 64);
                }
            }
        })
    }

    #[test]
    fn rpc_roundtrip_and_accounting() {
        let m = mesh();
        let server = NodeId::new(EuWest, "srv");
        let client = NodeId::new(UsEast, "cli");
        let h = spawn_echo(&m, server.clone());
        let reply = m
            .rpc(
                &client,
                &server,
                "hello".into(),
                128,
                SimDuration::from_secs(10),
            )
            .unwrap();
        assert_eq!(reply.msg, "re:hello");
        assert_eq!(reply.remote_time, SimDuration::from_millis(3));
        // Two 40ms one-way legs plus tiny serialization.
        let net_ms = reply.net_time.as_millis_f64();
        assert!((net_ms - 80.0).abs() < 1.0, "net {net_ms}ms");
        assert!((reply.total().as_millis_f64() - 83.0).abs() < 1.0);
        m.rpc(
            &client,
            &server,
            "stop".into(),
            0,
            SimDuration::from_secs(10),
        )
        .unwrap();
        h.join().unwrap();
    }

    #[test]
    fn rpc_to_unknown_node_errors() {
        let m = mesh();
        let client = NodeId::new(UsEast, "cli");
        let ghost = NodeId::new(EuWest, "ghost");
        match m.rpc(&client, &ghost, "x".into(), 0, SimDuration::from_secs(1)) {
            Err(NetError::UnknownNode(n)) => assert_eq!(n, ghost),
            other => panic!("expected UnknownNode, got {other:?}"),
        }
    }

    #[test]
    fn rpc_to_partitioned_node_errors() {
        let m = mesh();
        let server = NodeId::new(AsiaEast, "srv");
        let client = NodeId::new(UsEast, "cli");
        let h = spawn_echo(&m, server.clone());
        m.fabric.set_partitioned(AsiaEast, true);
        match m.rpc(&client, &server, "x".into(), 0, SimDuration::from_secs(1)) {
            Err(NetError::Unreachable(_)) => {}
            other => panic!("expected Unreachable, got {other:?}"),
        }
        m.fabric.set_partitioned(AsiaEast, false);
        m.rpc(
            &client,
            &server,
            "stop".into(),
            0,
            SimDuration::from_secs(10),
        )
        .unwrap();
        h.join().unwrap();
    }

    #[test]
    fn rpc_handler_dropping_slot_is_noreply() {
        let m = mesh();
        let server = NodeId::new(EuWest, "drop");
        let client = NodeId::new(UsEast, "cli");
        let rx = m.register(server.clone());
        let h = std::thread::spawn(move || {
            let d = rx.recv().unwrap();
            drop(d.reply); // never answer
        });
        match m.rpc(&client, &server, "x".into(), 0, SimDuration::from_secs(5)) {
            Err(NetError::NoReply(_)) => {}
            other => panic!("expected NoReply, got {other:?}"),
        }
        h.join().unwrap();
    }

    #[test]
    fn one_way_send_arrives_with_delay_metadata() {
        let m = mesh();
        let server = NodeId::new(UsWest, "srv");
        let client = NodeId::new(UsEast, "cli");
        let rx = m.register(server.clone());
        let sent_delay = m.send(&client, &server, "async".into(), 256).unwrap();
        let d = rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap();
        assert_eq!(d.msg, "async");
        assert_eq!(d.net_delay, sent_delay);
        assert!(d.reply.is_none());
        assert!((sent_delay.as_millis_f64() - 35.0).abs() < 1.0);
    }

    #[test]
    fn one_way_sends_preserve_modeled_order() {
        let m = mesh();
        let server = NodeId::new(UsEast, "srv");
        let near = NodeId::new(AzureUsEast, "near"); // 1ms one-way
        let far = NodeId::new(AsiaEast, "far"); // 85ms one-way
        let rx = m.register(server.clone());
        m.register(near.clone());
        m.register(far.clone());
        // The far message is sent first but must arrive second.
        m.send(&far, &server, "far".into(), 0).unwrap();
        m.send(&near, &server, "near".into(), 0).unwrap();
        let first = rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap();
        let second = rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap();
        assert_eq!(first.msg, "near");
        assert_eq!(second.msg, "far");
    }

    #[test]
    fn send_to_unregistered_errors() {
        let m = mesh();
        let client = NodeId::new(UsEast, "cli");
        let ghost = NodeId::new(EuWest, "ghost");
        assert!(matches!(
            m.send(&client, &ghost, "x".into(), 0),
            Err(NetError::UnknownNode(_))
        ));
    }

    #[test]
    fn unregister_stops_delivery() {
        let m = mesh();
        let server = NodeId::new(UsWest, "srv");
        let client = NodeId::new(UsEast, "cli");
        let rx = m.register(server.clone());
        m.send(&client, &server, "first".into(), 0).unwrap();
        let _ = rx.recv_timeout(std::time::Duration::from_secs(2)).unwrap();
        m.unregister(&server);
        assert!(matches!(
            m.send(&client, &server, "second".into(), 0),
            Err(NetError::UnknownNode(_))
        ));
    }

    #[test]
    fn rpc_times_out_when_handler_stalls() {
        let m = mesh();
        let server = NodeId::new(EuWest, "slow");
        let client = NodeId::new(UsEast, "cli");
        let rx = m.register(server.clone());
        let h = std::thread::spawn(move || {
            let d = rx.recv().unwrap();
            // Stall past the caller's wall-clock bound before replying.
            std::thread::sleep(std::time::Duration::from_millis(400));
            if let Some(r) = d.reply {
                r.reply("late".into(), SimDuration::ZERO, 0);
            }
        });
        match m.rpc(
            &client,
            &server,
            "x".into(),
            0,
            SimDuration::from_millis(100),
        ) {
            Err(NetError::Timeout(n)) => assert_eq!(n, server),
            other => panic!("expected Timeout, got {other:?}"),
        }
        h.join().unwrap();
    }

    #[test]
    fn send_to_partitioned_region_fails_fast() {
        let m = mesh();
        let server = NodeId::new(AsiaEast, "srv");
        let client = NodeId::new(UsEast, "cli");
        let _rx = m.register(server.clone());
        m.fabric.set_partitioned(AsiaEast, true);
        assert!(matches!(
            m.send(&client, &server, "x".into(), 0),
            Err(NetError::Unreachable(_))
        ));
    }

    #[test]
    fn node_display() {
        let n = NodeId::new(UsEast, "tiera-1");
        assert_eq!(n.to_string(), "tiera-1@US-East");
    }
}
