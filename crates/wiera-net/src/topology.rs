//! Base network topology: RTT and bandwidth between every pair of sites.
//!
//! Values are representative public-internet numbers for the paper's era and
//! consistent with what the paper itself reports: ≈2 ms between AWS and Azure
//! within US-East (§5.4.1), ≈170 ms US-East↔Tokyo (so a cold-data get from
//! Asia-East against a centralized US-East S3-IA lands near the paper's
//! ≈200 ms, Fig. 10).

use crate::region::Region;
use serde::{Deserialize, Serialize};

/// Static base topology. Runtime dynamics (delay injection, throttles,
/// partitions) live in [`crate::fabric::Fabric`], not here.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// Round-trip time in ms, indexed by `[Region::index()][Region::index()]`.
    rtt_ms: Vec<Vec<f64>>,
    /// Available bandwidth in Mbit/s for a single transfer between two sites.
    bw_mbps: Vec<Vec<f64>>,
    /// RTT within a single DC (client VM to storage VM), ms.
    pub intra_dc_rtt_ms: f64,
    /// Bandwidth within a single DC, Mbit/s.
    pub intra_dc_bw_mbps: f64,
}

impl Topology {
    /// The multi-cloud topology used by every experiment in this repository.
    pub fn multicloud() -> Self {
        use Region::*;
        let n = Region::ALL.len();
        let mut rtt = vec![vec![0.0; n]; n];
        let mut bw = vec![vec![0.0; n]; n];

        let mut set = |a: Region, b: Region, r: f64, w: f64| {
            rtt[a.index()][b.index()] = r;
            rtt[b.index()][a.index()] = r;
            bw[a.index()][b.index()] = w;
            bw[b.index()][a.index()] = w;
        };

        // WAN links (RTT ms, bandwidth Mbps). Bandwidths are per-flow
        // achievable throughput, not link capacity.
        set(UsEast, UsWest, 70.0, 300.0);
        set(UsEast, EuWest, 80.0, 300.0);
        set(UsEast, AsiaEast, 170.0, 150.0);
        set(UsWest, EuWest, 145.0, 150.0);
        set(UsWest, AsiaEast, 110.0, 150.0);
        set(EuWest, AsiaEast, 230.0, 100.0);

        // Nearby-DC links within a geographic area.
        set(UsWest, UsWest2, 2.0, 1000.0);
        set(UsEast, AzureUsEast, 2.0, 1000.0);

        // Remaining pairs via the AWS site in the same area.
        set(UsWest2, UsEast, 71.0, 300.0);
        set(UsWest2, EuWest, 146.0, 150.0);
        set(UsWest2, AsiaEast, 111.0, 150.0);
        set(UsWest2, AzureUsEast, 72.0, 300.0);
        set(AzureUsEast, UsWest, 72.0, 300.0);
        set(AzureUsEast, EuWest, 82.0, 300.0);
        set(AzureUsEast, AsiaEast, 172.0, 150.0);

        Topology {
            rtt_ms: rtt,
            bw_mbps: bw,
            intra_dc_rtt_ms: 0.5,
            intra_dc_bw_mbps: 4000.0,
        }
    }

    /// Base round-trip time between two sites in ms (intra-DC if equal).
    pub fn rtt_ms(&self, a: Region, b: Region) -> f64 {
        if a == b {
            self.intra_dc_rtt_ms
        } else {
            self.rtt_ms[a.index()][b.index()]
        }
    }

    /// Base bandwidth between two sites in Mbit/s (intra-DC if equal).
    pub fn bw_mbps(&self, a: Region, b: Region) -> f64 {
        if a == b {
            self.intra_dc_bw_mbps
        } else {
            self.bw_mbps[a.index()][b.index()]
        }
    }

    /// Override a link (both directions).
    pub fn set_link(&mut self, a: Region, b: Region, rtt_ms: f64, bw_mbps: f64) {
        assert!(a != b, "use intra_dc fields for the local link");
        self.rtt_ms[a.index()][b.index()] = rtt_ms;
        self.rtt_ms[b.index()][a.index()] = rtt_ms;
        self.bw_mbps[a.index()][b.index()] = bw_mbps;
        self.bw_mbps[b.index()][a.index()] = bw_mbps;
    }

    /// The site in `candidates` with the lowest RTT from `from`
    /// (used for "closest instance" client routing, §4.1 step 8).
    pub fn closest(&self, from: Region, candidates: &[Region]) -> Option<Region> {
        candidates
            .iter()
            .copied()
            .min_by(|&a, &b| self.rtt_ms(from, a).total_cmp(&self.rtt_ms(from, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Region::*;

    #[test]
    fn symmetric_and_complete() {
        let t = Topology::multicloud();
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(t.rtt_ms(a, b), t.rtt_ms(b, a));
                assert!(t.rtt_ms(a, b) > 0.0, "missing rtt {a}-{b}");
                assert!(t.bw_mbps(a, b) > 0.0, "missing bw {a}-{b}");
            }
        }
    }

    #[test]
    fn paper_anchor_values() {
        let t = Topology::multicloud();
        // §5.4.1: "the latency between DCs is around 2 ms" (AWS↔Azure US-East).
        assert_eq!(t.rtt_ms(UsEast, AzureUsEast), 2.0);
        // Fig. 10: Asia-East → US-East dominates its ≈200 ms get latency.
        assert!((150.0..200.0).contains(&t.rtt_ms(UsEast, AsiaEast)));
        // Nearby DCs are far closer than cross-country.
        assert!(t.rtt_ms(UsWest, UsWest2) < 10.0);
        assert!(t.rtt_ms(UsWest, UsEast) > 50.0);
    }

    #[test]
    fn intra_dc_is_fastest() {
        let t = Topology::multicloud();
        for a in Region::ALL {
            for b in Region::ALL {
                if a != b {
                    assert!(t.rtt_ms(a, a) < t.rtt_ms(a, b));
                }
            }
        }
    }

    #[test]
    fn closest_picks_min_rtt() {
        let t = Topology::multicloud();
        let c = t.closest(AsiaEast, &[UsEast, UsWest, EuWest]).unwrap();
        assert_eq!(c, UsWest, "Tokyo's nearest of the three is US-West");
        assert_eq!(t.closest(UsEast, &[UsEast, EuWest]).unwrap(), UsEast);
        assert_eq!(t.closest(UsEast, &[]), None);
    }

    #[test]
    fn set_link_overrides_both_directions() {
        let mut t = Topology::multicloud();
        t.set_link(UsEast, EuWest, 99.0, 42.0);
        assert_eq!(t.rtt_ms(EuWest, UsEast), 99.0);
        assert_eq!(t.bw_mbps(UsEast, EuWest), 42.0);
    }
}
