//! The live network model.
//!
//! A [`Fabric`] wraps the static [`Topology`] with everything that changes at
//! run time — exactly the "dynamics" Wiera exists to handle:
//!
//! * **Delay injection** (Fig. 7): add extra latency to all traffic touching
//!   a site, or to one specific link, and clear it again later.
//! * **Partitions / crashes** (§4.4): mark a site unreachable so heartbeats
//!   miss and RPCs fail.
//! * **Egress throttling** (Fig. 11/12): cap a site's outbound bandwidth the
//!   way Azure caps VM network throughput by instance size.
//!
//! `one_way` is the single place every message's modeled latency comes from.

use crate::region::Region;
use crate::topology::Topology;
use parking_lot::{Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use wiera_sim::{LatencyDist, MetricsRegistry, SimDuration, SimInstant, SimRng};

#[derive(Default)]
struct Dynamics {
    /// Extra one-way delay applied to every message touching the site.
    node_delay: HashMap<Region, SimDuration>,
    /// Extra one-way delay on a specific (unordered) link.
    link_delay: HashMap<(Region, Region), SimDuration>,
    /// Sites currently cut off from everything else.
    partitioned: HashMap<Region, bool>,
    /// Specific (unordered) links currently cut, leaving both endpoints
    /// reachable from everywhere else — an asymmetric WAN partition.
    cut_links: HashSet<(Region, Region)>,
    /// Outbound bandwidth cap (Mbit/s), e.g. a small Azure VM size.
    egress_cap_mbps: HashMap<Region, f64>,
    /// Extra *random* one-way delay (uniform in `0..ms`) on every message
    /// touching the site — modeled WAN jitter, drawn per message from the
    /// fabric's seeded RNG.
    node_jitter_ms: HashMap<Region, f64>,
}

fn link_key(a: Region, b: Region) -> (Region, Region) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Shared network model: static topology + runtime dynamics + jitter RNG.
pub struct Fabric {
    topology: RwLock<Topology>,
    dyn_state: RwLock<Dynamics>,
    rng: Mutex<SimRng>,
    /// If false, latencies are the distribution's typical value (no jitter);
    /// useful for exact-value unit tests.
    jitter: bool,
    /// Per-site NIC serialization state: when an egress cap is set, the
    /// site's transfers queue behind each other (a throttled Azure VM NIC
    /// is a shared serial resource, the effect behind Fig. 11/12).
    nic_busy_until: Mutex<HashMap<Region, SimInstant>>,
}

impl Fabric {
    pub fn new(topology: Topology, seed: u64) -> Self {
        Fabric {
            topology: RwLock::new(topology),
            dyn_state: RwLock::new(Dynamics::default()),
            rng: Mutex::new(SimRng::new(seed).child("fabric")),
            jitter: true,
            nic_busy_until: Mutex::new(HashMap::new()),
        }
    }

    /// The default multi-cloud fabric used by all experiments.
    pub fn multicloud(seed: u64) -> Self {
        Self::new(Topology::multicloud(), seed)
    }

    /// Disable latency jitter (deterministic typical values).
    pub fn without_jitter(mut self) -> Self {
        self.jitter = false;
        self
    }

    pub fn topology(&self) -> Topology {
        self.topology.read().clone()
    }

    pub fn set_link(&self, a: Region, b: Region, rtt_ms: f64, bw_mbps: f64) {
        self.topology.write().set_link(a, b, rtt_ms, bw_mbps);
    }

    /// Base RTT (no injected delays), ms.
    pub fn base_rtt_ms(&self, a: Region, b: Region) -> f64 {
        self.topology.read().rtt_ms(a, b)
    }

    /// Current effective RTT including injected delays, ms. This is what a
    /// ping between the sites would measure right now.
    pub fn effective_rtt(&self, a: Region, b: Region) -> SimDuration {
        let base = SimDuration::from_millis_f64(self.topology.read().rtt_ms(a, b));
        base + self.injected_one_way(a, b) * 2u64
    }

    fn injected_one_way(&self, from: Region, to: Region) -> SimDuration {
        let d = self.dyn_state.read();
        let mut extra = SimDuration::ZERO;
        if let Some(&x) = d.node_delay.get(&from) {
            extra += x;
        }
        if to != from {
            if let Some(&x) = d.node_delay.get(&to) {
                extra += x;
            }
        }
        if let Some(&x) = d.link_delay.get(&link_key(from, to)) {
            extra += x;
        }
        extra
    }

    /// Whether traffic can currently flow between the two sites.
    pub fn is_reachable(&self, a: Region, b: Region) -> bool {
        if a == b {
            return true;
        }
        let d = self.dyn_state.read();
        !(*d.partitioned.get(&a).unwrap_or(&false)
            || *d.partitioned.get(&b).unwrap_or(&false)
            || d.cut_links.contains(&link_key(a, b)))
    }

    /// Effective bandwidth for a transfer from `from` to `to`, Mbit/s.
    pub fn effective_bw_mbps(&self, from: Region, to: Region) -> f64 {
        let base = self.topology.read().bw_mbps(from, to);
        let d = self.dyn_state.read();
        let cap = d
            .egress_cap_mbps
            .get(&from)
            .copied()
            .unwrap_or(f64::INFINITY);
        // The receiving side's cap applies to its inbound traffic too; Azure
        // throttles the VM NIC, which is direction-agnostic.
        let rcap = d.egress_cap_mbps.get(&to).copied().unwrap_or(f64::INFINITY);
        base.min(cap).min(rcap)
    }

    /// Modeled one-way latency for a message of `bytes` from `from` to `to`:
    /// half the (jittered) RTT, plus serialization time at the effective
    /// bandwidth, plus any injected delay. No NIC queueing (time-free form).
    pub fn one_way(&self, from: Region, to: Region, bytes: u64) -> SimDuration {
        let rtt_ms = self.topology.read().rtt_ms(from, to);
        let dist = LatencyDist::rtt(rtt_ms / 2.0);
        let prop = if self.jitter {
            dist.sample(&mut self.rng.lock())
        } else {
            SimDuration::from_millis_f64(dist.typical_ms())
        };
        prop
            + self.transfer_time(from, to, bytes)
            + self.injected_one_way(from, to)
            + self.sampled_jitter(from, to)
    }

    /// Per-message random jitter for injected [`Fabric::set_region_jitter_ms`]
    /// dynamics. Sampled from the fabric RNG even when base-latency jitter is
    /// disabled: injected jitter is an explicit fault, not ambient noise.
    fn sampled_jitter(&self, from: Region, to: Region) -> SimDuration {
        let bound_ms = {
            let d = self.dyn_state.read();
            let mut ms = 0.0;
            if let Some(&j) = d.node_jitter_ms.get(&from) {
                ms += j;
            }
            if to != from {
                if let Some(&j) = d.node_jitter_ms.get(&to) {
                    ms += j;
                }
            }
            ms
        };
        if bound_ms <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_millis_f64(self.rng.lock().gen_range_f64(0.0, bound_ms))
    }

    /// Like [`Fabric::one_way`], but when either endpoint has an egress cap
    /// set, the transfer also queues behind other transfers through that
    /// site's NIC (token-bucket at the capped bandwidth). This is what makes
    /// a throttled Azure VM's *aggregate* throughput respect its cap under
    /// concurrency — the effect Figs. 11/12 measure.
    pub fn one_way_at(&self, from: Region, to: Region, bytes: u64, now: SimInstant) -> SimDuration {
        let base = self.one_way(from, to, bytes);
        // Intra-DC traffic does not traverse the throttled WAN NIC (the
        // paper's client runs on the throttled VM itself).
        if from == to {
            return base;
        }
        let capped_site = {
            let d = self.dyn_state.read();
            [from, to]
                .into_iter()
                .filter(|r| d.egress_cap_mbps.contains_key(r))
                .min_by(|a, b| {
                    let ca = d.egress_cap_mbps[a];
                    let cb = d.egress_cap_mbps[b];
                    ca.total_cmp(&cb)
                })
        };
        let Some(site) = capped_site else { return base };
        let bw = self.effective_bw_mbps(from, to);
        if !bw.is_finite() || bw <= 0.0 || bytes == 0 {
            return base;
        }
        let busy = SimDuration::from_secs_f64(bytes as f64 * 8.0 / (bw * 1e6));
        let mut nic = self.nic_busy_until.lock();
        let nf = nic.entry(site).or_insert(now);
        let start = if *nf > now { *nf } else { now };
        let queue = start - now;
        *nf = start + busy;
        base + queue
    }

    /// Serialization time for `bytes` at the effective bandwidth.
    pub fn transfer_time(&self, from: Region, to: Region, bytes: u64) -> SimDuration {
        let bw = self.effective_bw_mbps(from, to);
        if !bw.is_finite() || bw <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / (bw * 1e6))
    }

    // ---- runtime dynamics -------------------------------------------------

    /// Add `extra` one-way delay to everything touching `site` (Fig. 7's
    /// injected delays). Stacking: a second call replaces the first.
    pub fn inject_node_delay(&self, site: Region, extra: SimDuration) {
        self.dyn_state.write().node_delay.insert(site, extra);
    }

    pub fn clear_node_delay(&self, site: Region) {
        self.dyn_state.write().node_delay.remove(&site);
    }

    /// Add `extra` one-way delay to one link (both directions).
    pub fn inject_link_delay(&self, a: Region, b: Region, extra: SimDuration) {
        self.dyn_state
            .write()
            .link_delay
            .insert(link_key(a, b), extra);
    }

    pub fn clear_link_delay(&self, a: Region, b: Region) {
        self.dyn_state.write().link_delay.remove(&link_key(a, b));
    }

    /// Cut a site off (crash / partition). §4.4 failure handling.
    pub fn set_partitioned(&self, site: Region, cut: bool) {
        self.dyn_state.write().partitioned.insert(site, cut);
    }

    // ---- fault injection (§4.4 / chaos campaigns) -------------------------
    //
    // The public fail/heal API the chaos runner drives. Each call counts into
    // the `net_outages` metric so campaigns can assert faults actually fired.

    fn note_outage(&self, event: &str, site: &str) {
        MetricsRegistry::global().inc("net_outages", &[("event", event), ("site", site)]);
    }

    /// Take a whole site down: nothing in or out (a crashed or isolated DC).
    pub fn fail_node(&self, site: Region) {
        self.set_partitioned(site, true);
        self.note_outage("fail_node", site.name());
    }

    /// Bring a failed site back.
    pub fn heal_node(&self, site: Region) {
        self.set_partitioned(site, false);
        self.note_outage("heal_node", site.name());
    }

    /// Cut just the `a`↔`b` link, leaving both sites reachable from everyone
    /// else — the classic split-brain-inducing WAN partition.
    pub fn partition(&self, a: Region, b: Region) {
        self.dyn_state.write().cut_links.insert(link_key(a, b));
        self.note_outage("partition", &format!("{}-{}", a.name(), b.name()));
    }

    /// Restore a link cut by [`Fabric::partition`].
    pub fn heal_partition(&self, a: Region, b: Region) {
        self.dyn_state.write().cut_links.remove(&link_key(a, b));
        self.note_outage("heal_partition", &format!("{}-{}", a.name(), b.name()));
    }

    /// Add random one-way delay (uniform in `0..ms` per message) to all
    /// traffic touching `site` — the chaos menu's `latency-jitter` fault.
    /// `None` heals. Also cleared by [`Fabric::clear_all_dynamics`].
    pub fn set_region_jitter_ms(&self, site: Region, ms: Option<f64>) {
        let mut d = self.dyn_state.write();
        match ms {
            Some(m) => {
                d.node_jitter_ms.insert(site, m);
                drop(d);
                self.note_outage("jitter", site.name());
            }
            None => {
                d.node_jitter_ms.remove(&site);
                drop(d);
                self.note_outage("heal_jitter", site.name());
            }
        }
    }

    /// Cap a site's NIC bandwidth (Azure VM-size throttling).
    pub fn set_egress_cap_mbps(&self, site: Region, mbps: Option<f64>) {
        let mut d = self.dyn_state.write();
        match mbps {
            Some(m) => d.egress_cap_mbps.insert(site, m),
            None => d.egress_cap_mbps.remove(&site),
        };
    }

    pub fn clear_all_dynamics(&self) {
        *self.dyn_state.write() = Dynamics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Region::*;

    fn fabric() -> Fabric {
        Fabric::multicloud(42).without_jitter()
    }

    #[test]
    fn one_way_is_half_rtt_for_empty_message() {
        let f = fabric();
        let d = f.one_way(UsEast, EuWest, 0);
        assert_eq!(d, SimDuration::from_millis(40)); // 80ms RTT / 2
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let f = fabric();
        let small = f.one_way(UsEast, EuWest, 1024);
        let big = f.one_way(UsEast, EuWest, 100 * 1024 * 1024);
        assert!(big > small);
        // 100MB at 300 Mbps ≈ 2.8s of serialization.
        let xfer = f.transfer_time(UsEast, EuWest, 100 * 1024 * 1024);
        assert!((xfer.as_secs_f64() - 2.8).abs() < 0.2, "xfer {xfer}");
    }

    #[test]
    fn node_delay_injection_applies_and_clears() {
        let f = fabric();
        let base = f.one_way(UsWest, UsEast, 0);
        f.inject_node_delay(UsWest, SimDuration::from_millis(500));
        let slowed = f.one_way(UsWest, UsEast, 0);
        assert_eq!(slowed, base + SimDuration::from_millis(500));
        // Delay applies to traffic toward the site too.
        let inbound = f.one_way(UsEast, UsWest, 0);
        assert_eq!(inbound, SimDuration::from_millis(35 + 500));
        f.clear_node_delay(UsWest);
        assert_eq!(f.one_way(UsWest, UsEast, 0), base);
    }

    #[test]
    fn link_delay_is_direction_agnostic() {
        let f = fabric();
        f.inject_link_delay(EuWest, AsiaEast, SimDuration::from_millis(100));
        let a = f.one_way(EuWest, AsiaEast, 0);
        let b = f.one_way(AsiaEast, EuWest, 0);
        assert_eq!(a, b);
        assert_eq!(a, SimDuration::from_millis(115 + 100));
        // Unrelated link unaffected.
        assert_eq!(f.one_way(UsEast, UsWest, 0), SimDuration::from_millis(35));
    }

    #[test]
    fn effective_rtt_counts_injection_twice() {
        let f = fabric();
        f.inject_node_delay(AsiaEast, SimDuration::from_millis(300));
        assert_eq!(
            f.effective_rtt(UsEast, AsiaEast),
            SimDuration::from_millis(170 + 600)
        );
    }

    #[test]
    fn partition_blocks_reachability() {
        let f = fabric();
        assert!(f.is_reachable(UsEast, EuWest));
        f.set_partitioned(EuWest, true);
        assert!(!f.is_reachable(UsEast, EuWest));
        assert!(!f.is_reachable(EuWest, UsEast));
        assert!(f.is_reachable(UsEast, UsWest));
        f.set_partitioned(EuWest, false);
        assert!(f.is_reachable(UsEast, EuWest));
    }

    #[test]
    fn egress_cap_lowers_bandwidth_both_directions() {
        let f = fabric();
        let base = f.effective_bw_mbps(UsEast, AzureUsEast);
        assert_eq!(base, 1000.0);
        f.set_egress_cap_mbps(AzureUsEast, Some(100.0));
        assert_eq!(f.effective_bw_mbps(AzureUsEast, UsEast), 100.0);
        assert_eq!(f.effective_bw_mbps(UsEast, AzureUsEast), 100.0);
        f.set_egress_cap_mbps(AzureUsEast, None);
        assert_eq!(f.effective_bw_mbps(AzureUsEast, UsEast), base);
    }

    #[test]
    fn pairwise_partition_cuts_only_that_link() {
        let f = fabric();
        f.partition(UsEast, EuWest);
        assert!(!f.is_reachable(UsEast, EuWest));
        assert!(!f.is_reachable(EuWest, UsEast), "cut is direction-agnostic");
        assert!(f.is_reachable(UsEast, UsWest), "other links stay up");
        assert!(
            f.is_reachable(EuWest, AsiaEast),
            "endpoints are not isolated"
        );
        f.heal_partition(UsEast, EuWest);
        assert!(f.is_reachable(UsEast, EuWest));
    }

    #[test]
    fn fail_node_isolates_site_and_counts_outage() {
        let f = fabric();
        let before = wiera_sim::MetricsRegistry::global()
            .snapshot()
            .counter_sum("net_outages");
        f.fail_node(AsiaEast);
        assert!(!f.is_reachable(AsiaEast, UsEast));
        assert!(!f.is_reachable(EuWest, AsiaEast));
        f.heal_node(AsiaEast);
        assert!(f.is_reachable(AsiaEast, UsEast));
        let after = wiera_sim::MetricsRegistry::global()
            .snapshot()
            .counter_sum("net_outages");
        assert!(after >= before + 2, "fail+heal must both count");
    }

    #[test]
    fn region_jitter_adds_bounded_random_delay_and_heals() {
        let f = fabric(); // base latency jitter off: only injected jitter moves
        let base = f.one_way(UsEast, UsWest, 0);
        f.set_region_jitter_ms(UsWest, Some(200.0));
        let mut max_extra = 0.0f64;
        for _ in 0..100 {
            let d = f.one_way(UsEast, UsWest, 0);
            assert!(d >= base, "jitter only adds delay");
            let extra = d.as_millis_f64() - base.as_millis_f64();
            assert!(extra <= 200.0, "jitter bounded by the configured cap");
            max_extra = max_extra.max(extra);
        }
        assert!(max_extra > 50.0, "jitter actually fires: max {max_extra}ms");
        f.set_region_jitter_ms(UsWest, None);
        assert_eq!(f.one_way(UsEast, UsWest, 0), base, "heal restores base");
    }

    #[test]
    fn clear_all_dynamics_resets_everything() {
        let f = fabric();
        f.inject_node_delay(UsEast, SimDuration::from_millis(50));
        f.set_partitioned(UsWest, true);
        f.partition(UsEast, EuWest);
        f.set_egress_cap_mbps(EuWest, Some(10.0));
        f.set_region_jitter_ms(AsiaEast, Some(500.0));
        f.clear_all_dynamics();
        assert_eq!(
            f.one_way(UsEast, AsiaEast, 0),
            SimDuration::from_millis(85),
            "jitter cleared with the rest of the dynamics"
        );
        assert_eq!(f.one_way(UsEast, UsWest, 0), SimDuration::from_millis(35));
        assert!(f.is_reachable(UsEast, UsWest));
        assert!(f.is_reachable(UsEast, EuWest));
        assert_eq!(f.effective_bw_mbps(EuWest, UsEast), 300.0);
    }

    #[test]
    fn jittered_latency_stays_near_base() {
        let f = Fabric::multicloud(7); // jitter on
        let mut sum = 0.0;
        for _ in 0..200 {
            sum += f.one_way(UsEast, EuWest, 0).as_millis_f64();
        }
        let mean = sum / 200.0;
        assert!((mean - 40.0).abs() < 3.0, "mean one-way {mean}ms");
    }
}

#[cfg(test)]
mod nic_tests {
    use super::*;
    use Region::*;

    #[test]
    fn nic_queue_serializes_capped_site_transfers() {
        let f = Fabric::multicloud(11).without_jitter();
        f.set_egress_cap_mbps(AzureUsEast, Some(80.0));
        let now = SimInstant::EPOCH;
        // 1 MiB at 80 Mbps ≈ 105 ms of serialization per transfer.
        let first = f.one_way_at(AzureUsEast, UsEast, 1 << 20, now);
        let second = f.one_way_at(AzureUsEast, UsEast, 1 << 20, now);
        assert!(
            second.as_millis_f64() > first.as_millis_f64() + 90.0,
            "second transfer must queue: {first} then {second}"
        );
        // Uncapped sites never queue.
        let a = f.one_way_at(UsEast, UsWest, 1 << 20, now);
        let b = f.one_way_at(UsEast, UsWest, 1 << 20, now);
        assert_eq!(a, b);
    }

    #[test]
    fn nic_queue_drains_over_time() {
        let f = Fabric::multicloud(12).without_jitter();
        f.set_egress_cap_mbps(AzureUsEast, Some(80.0));
        let t0 = SimInstant::EPOCH;
        let first = f.one_way_at(AzureUsEast, UsEast, 1 << 20, t0);
        // Much later, the NIC is idle again: same latency as a fresh send.
        let later = t0 + SimDuration::from_secs(10);
        let fresh = f.one_way_at(AzureUsEast, UsEast, 1 << 20, later);
        assert!((fresh.as_millis_f64() - first.as_millis_f64()).abs() < 1.0);
    }
}
