//! Network-layer errors.

use crate::mesh::NodeId;
use std::fmt;

/// Errors surfaced by the transport. Higher layers translate these into
/// failover decisions (§4.4: "if the closest instance is down, try the
/// second closest", replica repair, etc.).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination is not registered on the mesh (node never started or was
    /// stopped).
    UnknownNode(NodeId),
    /// Destination site is partitioned away or the node crashed mid-call.
    Unreachable(NodeId),
    /// RPC did not complete within the caller's modeled timeout.
    Timeout(NodeId),
    /// The remote handler dropped the reply slot without answering.
    NoReply(NodeId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::Unreachable(n) => write!(f, "node {n} unreachable"),
            NetError::Timeout(n) => write!(f, "rpc to {n} timed out"),
            NetError::NoReply(n) => write!(f, "node {n} dropped the request"),
        }
    }
}

impl std::error::Error for NetError {}
