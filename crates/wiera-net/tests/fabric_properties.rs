//! Property tests on the network model's invariants.

use proptest::prelude::*;
use wiera_net::{Fabric, Region};
use wiera_sim::{SimDuration, SimInstant};

fn regions() -> impl Strategy<Value = Region> {
    prop::sample::select(Region::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Latency is monotone in message size on every link.
    #[test]
    fn prop_latency_monotone_in_bytes(a in regions(), b in regions(), bytes in 0u64..10_000_000) {
        let f = Fabric::multicloud(1).without_jitter();
        let small = f.one_way(a, b, bytes);
        let bigger = f.one_way(a, b, bytes + 1_000_000);
        prop_assert!(bigger >= small);
    }

    /// Injected node delay adds exactly once per one-way hop and clears.
    #[test]
    fn prop_injection_adds_and_clears(a in regions(), b in regions(), extra_ms in 1u64..5_000) {
        prop_assume!(a != b);
        let f = Fabric::multicloud(2).without_jitter();
        let base = f.one_way(a, b, 0);
        f.inject_node_delay(b, SimDuration::from_millis(extra_ms));
        let slowed = f.one_way(a, b, 0);
        prop_assert_eq!(slowed, base + SimDuration::from_millis(extra_ms));
        f.clear_node_delay(b);
        prop_assert_eq!(f.one_way(a, b, 0), base);
    }

    /// Effective RTT is symmetric under injection, and reachability is an
    /// equivalence on healthy fabrics.
    #[test]
    fn prop_rtt_symmetry(a in regions(), b in regions(), extra_ms in 0u64..2_000) {
        let f = Fabric::multicloud(3).without_jitter();
        if extra_ms > 0 {
            f.inject_link_delay(a, b, SimDuration::from_millis(extra_ms));
        }
        prop_assert_eq!(f.effective_rtt(a, b), f.effective_rtt(b, a));
        prop_assert!(f.is_reachable(a, b));
    }

    /// The NIC token bucket never reorders a site's transfers backwards:
    /// issuing at a later `now` never yields an earlier completion.
    #[test]
    fn prop_nic_queue_completion_monotone(cap in 10.0f64..500.0, sizes in prop::collection::vec(1u64..1_000_000, 1..20)) {
        let f = Fabric::multicloud(4).without_jitter();
        f.set_egress_cap_mbps(Region::AzureUsEast, Some(cap));
        let now = SimInstant::EPOCH;
        let mut last_completion = SimDuration::ZERO;
        for s in sizes {
            let d = f.one_way_at(Region::AzureUsEast, Region::UsEast, s, now);
            prop_assert!(
                d >= last_completion.saturating_sub(SimDuration::from_millis(2)),
                "completion went backwards: {last_completion} then {d}"
            );
            last_completion = d;
        }
    }

    /// Partitioning any site never affects reachability between two other
    /// healthy sites.
    #[test]
    fn prop_partition_is_local(victim in regions(), a in regions(), b in regions()) {
        prop_assume!(a != victim && b != victim);
        let f = Fabric::multicloud(5);
        f.set_partitioned(victim, true);
        prop_assert!(f.is_reachable(a, b));
        prop_assert!(!f.is_reachable(a, victim) || a == victim);
    }
}
