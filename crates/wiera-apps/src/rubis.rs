//! RUBiS stand-in (Fig. 12): an auction-site workload over a MySQL-like
//! record store.
//!
//! The paper runs the unmodified RUBiS benchmark (Apache/PHP front end,
//! MySQL back end) with MySQL's data directory on Wiera through FUSE,
//! O_DIRECT on and a minimal 16 MB InnoDB buffer pool — so transaction
//! throughput is bound by the storage stack. This module reproduces that
//! bottom half: auction entities (users, items, bids, comments) stored as
//! fixed-size rows in table files, accessed through a byte-bounded buffer
//! pool over [`WieraFs`], driven by a browse/bid/sell transaction mix by a
//! population of closed-loop clients with ramp-up and ramp-down phases.

use crate::cache::ByteLru;
use crate::fs::WieraFs;
use parking_lot::Mutex;
use std::sync::Arc;
use wiera_sim::{derive_seed, Histogram, SimDuration, SimRng, Summary};

/// Row size: RUBiS entities serialize to a few hundred bytes.
pub const ROW_BYTES: usize = 512;

/// Benchmark parameters (paper: 50,000 items, 50,000 customers, 300
/// clients, 300 s run with 120 s ramp-up and 60 s ramp-down, 16 MB buffer).
#[derive(Debug, Clone)]
pub struct RubisConfig {
    pub items: usize,
    pub users: usize,
    pub clients: usize,
    pub buffer_pool_bytes: usize,
    pub ramp_up: SimDuration,
    pub measure: SimDuration,
    pub ramp_down: SimDuration,
    pub seed: u64,
}

impl Default for RubisConfig {
    fn default() -> Self {
        RubisConfig {
            items: 50_000,
            users: 50_000,
            clients: 300,
            buffer_pool_bytes: 16 << 20,
            ramp_up: SimDuration::from_secs(120),
            measure: SimDuration::from_secs(120),
            ramp_down: SimDuration::from_secs(60),
            seed: 7,
        }
    }
}

impl RubisConfig {
    /// A scaled-down configuration for tests.
    pub fn small() -> Self {
        RubisConfig {
            items: 2_000,
            users: 2_000,
            clients: 8,
            buffer_pool_bytes: 256 << 10,
            ramp_up: SimDuration::from_secs(2),
            measure: SimDuration::from_secs(10),
            ramp_down: SimDuration::from_secs(1),
            seed: 7,
        }
    }
}

/// Results of one run.
#[derive(Debug, Clone)]
pub struct RubisReport {
    /// Completed requests during the measurement window.
    pub requests: u64,
    /// Requests per second (the Fig. 12 metric).
    pub throughput: f64,
    pub latency: Summary,
    pub buffer_pool_hit_rate: f64,
}

/// The RUBiS transaction types we model, with the classic browse-heavy mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tx {
    BrowseItems,
    ViewItem,
    ViewUser,
    PlaceBid,
    AddComment,
    BuyNow,
    RegisterItem,
}

const MIX: [(Tx, f64); 7] = [
    (Tx::BrowseItems, 0.30),
    (Tx::ViewItem, 0.28),
    (Tx::ViewUser, 0.12),
    (Tx::PlaceBid, 0.12),
    (Tx::AddComment, 0.06),
    (Tx::BuyNow, 0.04),
    (Tx::RegisterItem, 0.08),
];

fn pick_tx(rng: &mut SimRng) -> Tx {
    let u = rng.gen_range_f64(0.0, 1.0);
    let mut acc = 0.0;
    for (tx, p) in MIX {
        acc += p;
        if u < acc {
            return tx;
        }
    }
    Tx::BrowseItems
}

/// The MySQL-like storage engine: table files + buffer pool.
struct RecordStore {
    fs: Arc<WieraFs>,
    pool: Mutex<ByteLru<(u8, u64)>>,
    page_bytes: usize,
}

/// Table ids → file paths.
const TABLES: [(u8, &str); 4] = [
    (0, "/rubis/items.ibd"),
    (1, "/rubis/users.ibd"),
    (2, "/rubis/bids.ibd"),
    (3, "/rubis/comments.ibd"),
];

impl RecordStore {
    fn table_path(table: u8) -> &'static str {
        // Callers pass the constant ids from TABLES; an out-of-range id
        // (impossible today) falls back to the first table rather than
        // panicking mid-benchmark.
        TABLES
            .iter()
            .find(|(t, _)| *t == table)
            .map(|(_, p)| *p)
            .unwrap_or(TABLES[0].1)
    }

    fn page_of(&self, row: u64) -> u64 {
        row * ROW_BYTES as u64 / self.page_bytes as u64
    }

    /// Read one row through the buffer pool; returns modeled latency.
    fn read_row(&self, table: u8, row: u64) -> Result<SimDuration, String> {
        let page = self.page_of(row);
        if self.pool.lock().get(&(table, page)).is_some() {
            return Ok(SimDuration::from_micros(20)); // pool hit
        }
        let offset = page * self.page_bytes as u64;
        let (data, lat) = self
            .fs
            .read_at(Self::table_path(table), offset, self.page_bytes)?;
        self.pool.lock().insert((table, page), data);
        Ok(lat)
    }

    /// Write one row: update the page in the pool and write through to the
    /// file (InnoDB with a tiny redo budget behaves write-through here).
    fn write_row(&self, table: u8, row: u64, payload: &[u8]) -> Result<SimDuration, String> {
        let offset = row * ROW_BYTES as u64;
        let lat = self.fs.write_at(Self::table_path(table), offset, payload)?;
        // Invalidate the cached page rather than patching it: next read
        // refetches a coherent page.
        let page = self.page_of(row);
        self.pool.lock().invalidate(&(table, page));
        Ok(lat)
    }

    fn hit_rate(&self) -> f64 {
        self.pool.lock().hit_rate()
    }
}

/// A loaded RUBiS database ready to serve transactions.
pub struct Rubis {
    store: RecordStore,
    config: RubisConfig,
}

impl Rubis {
    /// Populate the database (items and users tables, preallocated bid and
    /// comment files). Returns the modeled population time.
    pub fn populate(fs: Arc<WieraFs>, config: RubisConfig) -> Result<(Self, SimDuration), String> {
        let page_bytes = fs.config.block_size;
        let mut total = SimDuration::ZERO;
        total += fs.create_filled("/rubis/items.ibd", (config.items * ROW_BYTES) as u64, 1)?;
        total += fs.create_filled("/rubis/users.ibd", (config.users * ROW_BYTES) as u64, 2)?;
        // Bids and comments grow; preallocate modest extents.
        total += fs.create_filled("/rubis/bids.ibd", (config.items * ROW_BYTES) as u64, 0)?;
        total += fs.create_filled("/rubis/comments.ibd", (config.users * ROW_BYTES) as u64, 0)?;
        let store = RecordStore {
            fs,
            pool: Mutex::new(ByteLru::new(config.buffer_pool_bytes)),
            page_bytes,
        };
        Ok((Rubis { store, config }, total))
    }

    /// Execute one transaction; returns its modeled latency.
    fn transaction(&self, rng: &mut SimRng, bid_seq: &mut u64) -> Result<SimDuration, String> {
        let items = self.config.items as u64;
        let users = self.config.users as u64;
        let s = &self.store;
        let mut row = [0u8; ROW_BYTES];
        rng.fill(&mut row);
        let mut lat = SimDuration::from_micros(300); // app-server CPU time
        match pick_tx(rng) {
            Tx::BrowseItems => {
                // A search page touches a run of item rows.
                let start = rng.gen_range_usize(0, items as usize) as u64;
                for i in 0..10 {
                    lat += s.read_row(0, (start + i) % items)?;
                }
            }
            Tx::ViewItem => {
                let item = rng.gen_range_usize(0, items as usize) as u64;
                lat += s.read_row(0, item)?;
                // Its bid history.
                for i in 0..5 {
                    lat += s.read_row(2, (item + i) % items)?;
                }
                lat += s.read_row(1, item % users)?; // seller profile
            }
            Tx::ViewUser => {
                let user = rng.gen_range_usize(0, users as usize) as u64;
                lat += s.read_row(1, user)?;
                for i in 0..3 {
                    lat += s.read_row(3, (user + i) % users)?;
                }
            }
            Tx::PlaceBid => {
                let item = rng.gen_range_usize(0, items as usize) as u64;
                lat += s.read_row(0, item)?;
                *bid_seq += 1;
                lat += s.write_row(2, *bid_seq % items, &row)?;
                lat += s.write_row(0, item, &row)?; // bump current price
            }
            Tx::AddComment => {
                let user = rng.gen_range_usize(0, users as usize) as u64;
                lat += s.read_row(1, user)?;
                lat += s.write_row(3, user, &row)?;
            }
            Tx::BuyNow => {
                let item = rng.gen_range_usize(0, items as usize) as u64;
                lat += s.read_row(0, item)?;
                lat += s.write_row(0, item, &row)?;
            }
            Tx::RegisterItem => {
                let item = rng.gen_range_usize(0, items as usize) as u64;
                lat += s.write_row(0, item, &row)?;
            }
        }
        Ok(lat)
    }

    /// Clock-paced run: phases are delimited on the shared modeled clock,
    /// for storage stacks that sleep their modeled latencies (live Wiera
    /// deployments / paced tier stores). Shared throttles then see true
    /// aggregate demand — required for the Fig. 12 comparison.
    pub fn run_paced(&self, clock: &wiera_sim::SharedClock) -> RubisReport {
        let cfg = &self.config;
        let start = clock.now();
        let measure_from = start + cfg.ramp_up;
        let measure_to = measure_from + cfg.measure;
        let end = measure_to + cfg.ramp_down;
        let results: Vec<(u64, Histogram)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.clients)
                .map(|c| {
                    let clock = clock.clone();
                    scope.spawn(move || {
                        let mut rng = SimRng::new(derive_seed(cfg.seed, &format!("rubis:{c}")));
                        let mut bid_seq = c as u64 * 1_000_000;
                        let mut counted = 0u64;
                        let mut hist = Histogram::new();
                        loop {
                            let t = clock.now();
                            if t >= end {
                                break;
                            }
                            match self.transaction(&mut rng, &mut bid_seq) {
                                Ok(lat) => {
                                    if t >= measure_from && t < measure_to {
                                        counted += 1;
                                        hist.record(lat);
                                    }
                                }
                                Err(_) => clock.sleep(wiera_sim::SimDuration::from_millis(1)),
                            }
                        }
                        (counted, hist)
                    })
                })
                .collect();
            handles.into_iter().filter_map(|h| h.join().ok()).collect()
        });
        let mut requests = 0;
        let mut hist = Histogram::new();
        for (c, h) in results {
            requests += c;
            hist.merge(&h);
        }
        RubisReport {
            requests,
            throughput: requests as f64 / cfg.measure.as_secs_f64(),
            latency: hist.summary(),
            buffer_pool_hit_rate: self.store.hit_rate(),
        }
    }

    /// Run the benchmark: `clients` closed-loop threads through ramp-up,
    /// measurement, and ramp-down phases (only the middle window counts,
    /// matching RUBiS's methodology).
    pub fn run(&self) -> RubisReport {
        let cfg = &self.config;
        let results: Vec<(u64, Histogram)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.clients)
                .map(|c| {
                    scope.spawn(move || {
                        let mut rng = SimRng::new(derive_seed(cfg.seed, &format!("rubis:{c}")));
                        let mut bid_seq = c as u64 * 1_000_000;
                        let mut elapsed = SimDuration::ZERO;
                        let total = cfg.ramp_up + cfg.measure + cfg.ramp_down;
                        let mut counted = 0u64;
                        let mut hist = Histogram::new();
                        while elapsed < total {
                            match self.transaction(&mut rng, &mut bid_seq) {
                                Ok(lat) => {
                                    let in_window = elapsed >= cfg.ramp_up
                                        && elapsed < cfg.ramp_up + cfg.measure;
                                    if in_window {
                                        counted += 1;
                                        hist.record(lat);
                                    }
                                    elapsed += lat;
                                }
                                Err(_) => elapsed += SimDuration::from_millis(1),
                            }
                        }
                        (counted, hist)
                    })
                })
                .collect();
            handles.into_iter().filter_map(|h| h.join().ok()).collect()
        });
        let mut requests = 0;
        let mut hist = Histogram::new();
        for (c, h) in results {
            requests += c;
            hist.merge(&h);
        }
        RubisReport {
            requests,
            throughput: requests as f64 / cfg.measure.as_secs_f64(),
            latency: hist.summary(),
            buffer_pool_hit_rate: self.store.hit_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FsConfig;
    use crate::testutil::MapStore;

    fn rubis_on(get_ms: u64, put_ms: u64, cfg: RubisConfig) -> Rubis {
        let store = MapStore::shared(
            SimDuration::from_millis(get_ms),
            SimDuration::from_millis(put_ms),
        );
        let fs = WieraFs::new(store, FsConfig::direct(16 * 1024));
        Rubis::populate(fs, cfg).unwrap().0
    }

    #[test]
    fn run_produces_throughput() {
        let r = rubis_on(2, 2, RubisConfig::small());
        let report = r.run();
        assert!(report.requests > 50, "requests {}", report.requests);
        assert!(report.throughput > 0.0);
        assert!(report.latency.count > 0);
    }

    #[test]
    fn faster_storage_means_higher_throughput() {
        let fast = rubis_on(1, 1, RubisConfig::small()).run();
        let slow = rubis_on(8, 8, RubisConfig::small()).run();
        assert!(
            fast.throughput > slow.throughput * 2.0,
            "fast {} vs slow {}",
            fast.throughput,
            slow.throughput
        );
    }

    #[test]
    fn buffer_pool_absorbs_hot_reads() {
        // A dataset that fits in the pool → high hit rate after warm-up.
        let mut cfg = RubisConfig::small();
        cfg.items = 100;
        cfg.users = 100;
        cfg.buffer_pool_bytes = 8 << 20;
        let r = rubis_on(2, 2, cfg);
        let report = r.run();
        assert!(
            report.buffer_pool_hit_rate > 0.8,
            "hit rate {}",
            report.buffer_pool_hit_rate
        );
    }

    #[test]
    fn tiny_pool_hits_less_than_big_pool() {
        // Intra-page row locality keeps even a one-page pool from a 0% hit
        // rate; the comparison against an ample pool is the meaningful one.
        let mut tiny_cfg = RubisConfig::small();
        tiny_cfg.buffer_pool_bytes = 16 << 10; // one page
        let tiny = rubis_on(2, 2, tiny_cfg).run();
        let mut big_cfg = RubisConfig::small();
        big_cfg.items = 100;
        big_cfg.users = 100;
        big_cfg.buffer_pool_bytes = 8 << 20;
        let big = rubis_on(2, 2, big_cfg).run();
        assert!(
            tiny.buffer_pool_hit_rate + 0.1 < big.buffer_pool_hit_rate,
            "tiny {} vs big {}",
            tiny.buffer_pool_hit_rate,
            big.buffer_pool_hit_rate
        );
        assert!(tiny.throughput < big.throughput);
    }

    #[test]
    fn near_deterministic_given_seed() {
        // Client RNG streams are seed-derived, but the shared buffer pool
        // makes hit/miss (hence counts) interleaving-sensitive; allow a
        // small tolerance.
        let a = rubis_on(2, 3, RubisConfig::small()).run();
        let b = rubis_on(2, 3, RubisConfig::small()).run();
        let diff = (a.requests as f64 - b.requests as f64).abs();
        assert!(
            diff / (a.requests as f64) < 0.02,
            "{} vs {}",
            a.requests,
            b.requests
        );
    }
}
