//! SysBench-fileio stand-in (Fig. 11).
//!
//! Random block I/O against a [`WieraFs`] file: a pool of closed-loop
//! threads issuing block-aligned reads and writes (O_DIRECT, like the
//! paper's configuration) for a fixed amount of *modeled* time, reporting
//! IOPS. Each thread tracks its own modeled clock from the latencies the
//! stack returns, so results are reproducible and independent of wall-clock
//! noise.

use crate::fs::WieraFs;
use std::sync::Arc;
use wiera_sim::{derive_seed, Histogram, SimDuration, SimRng, Summary};

/// Benchmark parameters (defaults follow sysbench fileio's conventions).
#[derive(Debug, Clone)]
pub struct SysbenchConfig {
    /// Total file size.
    pub file_bytes: u64,
    /// I/O unit (sysbench default 16 KiB).
    pub block_size: usize,
    /// Concurrent worker threads.
    pub threads: usize,
    /// Fraction of operations that are writes (rndrw is 2 reads : 1 write).
    pub write_frac: f64,
    /// Modeled run duration per thread.
    pub duration: SimDuration,
    pub seed: u64,
}

impl Default for SysbenchConfig {
    fn default() -> Self {
        SysbenchConfig {
            file_bytes: 64 << 20,
            block_size: 16 * 1024,
            threads: 4,
            write_frac: 1.0 / 3.0,
            duration: SimDuration::from_secs(30),
            seed: 1,
        }
    }
}

/// Results of one run.
#[derive(Debug, Clone)]
pub struct SysbenchReport {
    pub reads: u64,
    pub writes: u64,
    pub iops: f64,
    pub read_latency: Summary,
    pub write_latency: Summary,
    pub modeled_secs: f64,
}

pub struct Sysbench;

impl Sysbench {
    pub const TEST_FILE: &'static str = "/sysbench/test_file";

    /// Create the test file (sysbench `prepare`).
    pub fn prepare(fs: &Arc<WieraFs>, cfg: &SysbenchConfig) -> Result<SimDuration, String> {
        fs.create_filled(Self::TEST_FILE, cfg.file_bytes, 0xA5)
    }

    /// Run random I/O (sysbench `run`). The file must have been prepared.
    pub fn run(fs: &Arc<WieraFs>, cfg: &SysbenchConfig) -> Result<SysbenchReport, String> {
        if !fs.exists(Self::TEST_FILE) {
            return Err("test file not prepared".into());
        }
        let blocks = cfg.file_bytes / cfg.block_size as u64;
        if blocks == 0 {
            return Err("file smaller than one block".into());
        }
        let results: Vec<ThreadResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..cfg.threads)
                .map(|t| {
                    let fs = fs.clone();
                    let cfg = cfg.clone();
                    s.spawn(move || Self::worker(&fs, &cfg, t, blocks))
                })
                .collect();
            handles.into_iter().filter_map(|h| h.join().ok()).collect()
        });

        let mut reads = 0;
        let mut writes = 0;
        let mut rhist = Histogram::new();
        let mut whist = Histogram::new();
        for r in results {
            reads += r.reads;
            writes += r.writes;
            rhist.merge(&r.read_hist);
            whist.merge(&r.write_hist);
        }
        let secs = cfg.duration.as_secs_f64();
        Ok(SysbenchReport {
            reads,
            writes,
            iops: (reads + writes) as f64 / secs,
            read_latency: rhist.summary(),
            write_latency: whist.summary(),
            modeled_secs: secs,
        })
    }

    /// Clock-paced variant: workers run until the shared clock reaches the
    /// deadline and IOPS is measured on the clock's modeled axis. Use this
    /// when the storage stack *sleeps* its modeled latencies (live Wiera
    /// deployments, paced tier stores): shared-resource throttles — disk
    /// IOPS caps, NIC caps — then see true aggregate demand.
    pub fn run_paced(
        fs: &Arc<WieraFs>,
        cfg: &SysbenchConfig,
        clock: &wiera_sim::SharedClock,
    ) -> Result<SysbenchReport, String> {
        if !fs.exists(Self::TEST_FILE) {
            return Err("test file not prepared".into());
        }
        let blocks = cfg.file_bytes / cfg.block_size as u64;
        if blocks == 0 {
            return Err("file smaller than one block".into());
        }
        let start = clock.now();
        let deadline = start + cfg.duration;
        let results: Vec<ThreadResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..cfg.threads)
                .map(|t| {
                    let fs = fs.clone();
                    let cfg = cfg.clone();
                    let clock = clock.clone();
                    s.spawn(move || {
                        let mut rng = SimRng::new(derive_seed(cfg.seed, &format!("sysbench:{t}")));
                        let mut out = ThreadResult::default();
                        let mut buf = vec![0u8; cfg.block_size];
                        while clock.now() < deadline {
                            Sysbench::one_op(&fs, &cfg, &mut rng, &mut buf, blocks, &mut out);
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().filter_map(|h| h.join().ok()).collect()
        });
        let modeled = clock.now().elapsed_since(start).as_secs_f64().max(1e-9);
        let mut reads = 0;
        let mut writes = 0;
        let mut rhist = Histogram::new();
        let mut whist = Histogram::new();
        for r in results {
            reads += r.reads;
            writes += r.writes;
            rhist.merge(&r.read_hist);
            whist.merge(&r.write_hist);
        }
        Ok(SysbenchReport {
            reads,
            writes,
            iops: (reads + writes) as f64 / modeled,
            read_latency: rhist.summary(),
            write_latency: whist.summary(),
            modeled_secs: modeled,
        })
    }

    fn one_op(
        fs: &Arc<WieraFs>,
        cfg: &SysbenchConfig,
        rng: &mut SimRng,
        buf: &mut [u8],
        blocks: u64,
        out: &mut ThreadResult,
    ) {
        let block = rng.gen_range_usize(0, blocks as usize) as u64;
        let offset = block * cfg.block_size as u64;
        if rng.gen_bool(cfg.write_frac) {
            rng.fill(buf);
            if let Ok(lat) = fs.write_at(Sysbench::TEST_FILE, offset, buf) {
                out.writes += 1;
                out.write_hist.record(lat);
            }
        } else if let Ok((_, lat)) = fs.read_at(Sysbench::TEST_FILE, offset, cfg.block_size) {
            out.reads += 1;
            out.read_hist.record(lat);
        }
    }

    fn worker(fs: &Arc<WieraFs>, cfg: &SysbenchConfig, index: usize, blocks: u64) -> ThreadResult {
        let mut rng = SimRng::new(derive_seed(cfg.seed, &format!("sysbench:{index}")));
        let mut elapsed = SimDuration::ZERO;
        let mut out = ThreadResult::default();
        let mut buf = vec![0u8; cfg.block_size];
        while elapsed < cfg.duration {
            let block = rng.gen_range_usize(0, blocks as usize) as u64;
            let offset = block * cfg.block_size as u64;
            if rng.gen_bool(cfg.write_frac) {
                rng.fill(&mut buf);
                match fs.write_at(Sysbench::TEST_FILE, offset, &buf) {
                    Ok(lat) => {
                        out.writes += 1;
                        out.write_hist.record(lat);
                        elapsed += lat;
                    }
                    Err(_) => elapsed += SimDuration::from_millis(1),
                }
            } else {
                match fs.read_at(Sysbench::TEST_FILE, offset, cfg.block_size) {
                    Ok((_, lat)) => {
                        out.reads += 1;
                        out.read_hist.record(lat);
                        elapsed += lat;
                    }
                    Err(_) => elapsed += SimDuration::from_millis(1),
                }
            }
        }
        out
    }
}

#[derive(Default)]
struct ThreadResult {
    reads: u64,
    writes: u64,
    read_hist: Histogram,
    write_hist: Histogram,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FsConfig;
    use crate::testutil::MapStore;

    fn direct_fs(get_ms: u64, put_ms: u64) -> Arc<WieraFs> {
        let store = MapStore::shared(
            SimDuration::from_millis(get_ms),
            SimDuration::from_millis(put_ms),
        );
        WieraFs::new(store, FsConfig::direct(16 * 1024))
    }

    fn small_cfg() -> SysbenchConfig {
        SysbenchConfig {
            file_bytes: 1 << 20,
            threads: 2,
            duration: SimDuration::from_secs(5),
            ..Default::default()
        }
    }

    #[test]
    fn run_requires_prepare() {
        let fs = direct_fs(2, 2);
        assert!(Sysbench::run(&fs, &small_cfg()).is_err());
    }

    #[test]
    fn iops_matches_modeled_latency() {
        // Every op costs 2 ms → each thread does ~500 ops/s → 2 threads
        // ≈ 1000 IOPS.
        let fs = direct_fs(2, 2);
        let cfg = small_cfg();
        Sysbench::prepare(&fs, &cfg).unwrap();
        let report = Sysbench::run(&fs, &cfg).unwrap();
        assert!((report.iops - 1000.0).abs() < 100.0, "iops {}", report.iops);
        assert!(report.reads > 0 && report.writes > 0);
        let wf = report.writes as f64 / (report.reads + report.writes) as f64;
        assert!((wf - 1.0 / 3.0).abs() < 0.05, "write fraction {wf}");
    }

    #[test]
    fn slower_store_lowers_iops() {
        let fast = direct_fs(1, 1);
        let slow = direct_fs(10, 10);
        let cfg = small_cfg();
        Sysbench::prepare(&fast, &cfg).unwrap();
        Sysbench::prepare(&slow, &cfg).unwrap();
        let f = Sysbench::run(&fast, &cfg).unwrap();
        let s = Sysbench::run(&slow, &cfg).unwrap();
        assert!(f.iops > s.iops * 5.0, "fast {} vs slow {}", f.iops, s.iops);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small_cfg();
        let mk = || {
            let fs = direct_fs(2, 3);
            Sysbench::prepare(&fs, &cfg).unwrap();
            Sysbench::run(&fs, &cfg).unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.writes, b.writes);
    }
}
