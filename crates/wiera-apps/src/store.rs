//! [`KvStore`] adapters over raw simulated tiers — the "no Wiera"
//! baselines of §5.4.
//!
//! [`KvStore`]: wiera_workload::KvStore

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use wiera_sim::{SharedClock, SimDuration};
use wiera_tiers::{SimTier, TierError};
use wiera_workload::{KvError, KvStore, OpSample};

fn tier_err(e: TierError) -> KvError {
    match e {
        TierError::NotFound(_) => KvError::not_found(e.to_string()),
        other => KvError::other(other.to_string()),
    }
}

/// A KvStore directly over one simulated storage tier — e.g. "Azure's local
/// disk without Wiera" (§5.4.1).
pub struct TierStore {
    tier: Arc<SimTier>,
    versions: Mutex<HashMap<String, u64>>,
    /// When set, each op sleeps its modeled latency on this clock — so
    /// wall-modeled time tracks the workload and the tier's IOPS token
    /// bucket observes the true demand.
    pace: Option<SharedClock>,
}

impl TierStore {
    pub fn new(tier: Arc<SimTier>) -> Arc<Self> {
        Arc::new(TierStore {
            tier,
            versions: Mutex::new(HashMap::new()),
            pace: None,
        })
    }

    pub fn paced(tier: Arc<SimTier>, clock: SharedClock) -> Arc<Self> {
        Arc::new(TierStore {
            tier,
            versions: Mutex::new(HashMap::new()),
            pace: Some(clock),
        })
    }

    fn maybe_sleep(&self, d: SimDuration) {
        if let Some(c) = &self.pace {
            c.sleep(d);
        }
    }
}

impl KvStore for TierStore {
    fn kv_put(&self, key: &str, value: Bytes) -> Result<OpSample, KvError> {
        let latency = self.tier.put(key, value).map_err(tier_err)?;
        self.maybe_sleep(latency);
        let mut v = self.versions.lock();
        let e = v.entry(key.to_string()).or_insert(0);
        *e += 1;
        Ok(OpSample {
            latency,
            version: *e,
        })
    }

    fn kv_get(&self, key: &str) -> Result<OpSample, KvError> {
        let (_, latency) = self.tier.get(key).map_err(tier_err)?;
        self.maybe_sleep(latency);
        let version = self.versions.lock().get(key).copied().unwrap_or(0);
        Ok(OpSample { latency, version })
    }

    fn kv_get_value(&self, key: &str) -> Result<(Bytes, OpSample), KvError> {
        let (data, latency) = self.tier.get(key).map_err(tier_err)?;
        self.maybe_sleep(latency);
        let version = self.versions.lock().get(key).copied().unwrap_or(0);
        Ok((data, OpSample { latency, version }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_sim::ManualClock;
    use wiera_tiers::{TierKind, TierSpec};

    #[test]
    fn roundtrip_and_versions() {
        let tier = SimTier::new(
            TierSpec::of(TierKind::EbsSsd),
            1 << 20,
            ManualClock::new(),
            1,
        );
        let s = TierStore::new(tier);
        let p1 = s.kv_put("k", Bytes::from_static(b"a")).unwrap();
        let p2 = s.kv_put("k", Bytes::from_static(b"b")).unwrap();
        assert_eq!(p1.version, 1);
        assert_eq!(p2.version, 2);
        let (data, g) = s.kv_get_value("k").unwrap();
        assert_eq!(data.as_ref(), b"b");
        assert_eq!(g.version, 2);
        assert!(s.kv_get("missing").is_err());
    }
}
