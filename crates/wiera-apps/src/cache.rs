//! A byte-bounded LRU used by both the FS page cache and the RUBiS
//! (MySQL-like) buffer pool.

use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// LRU keyed by `K`, bounded by total cached bytes.
pub struct ByteLru<K: Eq + Hash + Clone> {
    map: HashMap<K, Bytes>,
    order: VecDeque<K>,
    bytes: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone> ByteLru<K> {
    pub fn new(capacity: usize) -> Self {
        ByteLru {
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    pub fn get(&mut self, key: &K) -> Option<Bytes> {
        match self.map.get(key) {
            Some(v) => {
                self.hits += 1;
                // Move to the back (most recent). O(n) but caches are small
                // relative to the op counts we run.
                if let Some(pos) = self.order.iter().position(|k| k == key) {
                    if let Some(k) = self.order.remove(pos) {
                        self.order.push_back(k);
                    }
                }
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    pub fn insert(&mut self, key: K, value: Bytes) {
        if self.capacity == 0 {
            return;
        }
        if let Some(old) = self.map.insert(key.clone(), value.clone()) {
            self.bytes -= old.len();
            if let Some(pos) = self.order.iter().position(|k| *k == key) {
                self.order.remove(pos);
            }
        }
        self.order.push_back(key);
        self.bytes += value.len();
        while self.bytes > self.capacity {
            let Some(victim) = self.order.pop_front() else {
                break;
            };
            if let Some(evicted) = self.map.remove(&victim) {
                self.bytes -= evicted.len();
            }
        }
    }

    pub fn invalidate(&mut self, key: &K) {
        if let Some(old) = self.map.remove(key) {
            self.bytes -= old.len();
            if let Some(pos) = self.order.iter().position(|k| k == key) {
                self.order.remove(pos);
            }
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }

    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: usize) -> Bytes {
        Bytes::from(vec![0u8; n])
    }

    #[test]
    fn basic_get_insert() {
        let mut c = ByteLru::new(100);
        assert!(c.get(&1).is_none());
        c.insert(1, b(10));
        assert_eq!(c.get(&1).unwrap().len(), 10);
        assert_eq!(c.bytes(), 10);
    }

    #[test]
    fn evicts_lru_at_capacity() {
        let mut c = ByteLru::new(30);
        c.insert(1, b(10));
        c.insert(2, b(10));
        c.insert(3, b(10));
        c.get(&1); // 1 becomes most-recent; 2 is LRU
        c.insert(4, b(10));
        assert!(c.get(&2).is_none(), "LRU victim evicted");
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
        assert!(c.get(&4).is_some());
    }

    #[test]
    fn reinsert_updates_bytes() {
        let mut c = ByteLru::new(100);
        c.insert(1, b(40));
        c.insert(1, b(10));
        assert_eq!(c.bytes(), 10);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = ByteLru::new(100);
        c.insert(1, b(10));
        c.invalidate(&1);
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = ByteLru::new(0);
        c.insert(1, b(10));
        assert!(c.get(&1).is_none());
    }

    #[test]
    fn hit_rate_tracks() {
        let mut c = ByteLru::new(100);
        c.insert(1, b(1));
        c.get(&1);
        c.get(&2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }
}
