#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! Application substrates for §5.4's "unmodified applications" experiments.
//!
//! The paper runs SysBench and RUBiS against Wiera through a FUSE-based
//! POSIX shim, "so that all application requests are forwarded to Wiera
//! through FUSE. Thus, applications that require a POSIX interface can run
//! on top of Wiera without any modification." This crate rebuilds that
//! stack:
//!
//! * [`fs`] — the FUSE substitute: a block-mapped file layer (`WieraFs`)
//!   over any [`KvStore`], with an optional page cache and an O_DIRECT mode
//!   matching the paper's cache-defeating configuration.
//! * [`sysbench`] — a SysBench-fileio-like random-I/O benchmark reporting
//!   IOPS (Fig. 11).
//! * [`rubis`] — a RUBiS-like auction workload (users, items, bids,
//!   comments; browse/bid/sell transaction mix) running on a MySQL-like
//!   record store with a 16 MB buffer pool over the file layer, reporting
//!   requests/second (Fig. 12).
//!
//! [`KvStore`]: wiera_workload::KvStore

pub mod cache;
pub mod fs;
pub mod rubis;
pub mod store;
pub mod sysbench;
pub mod testutil;

pub use fs::{FsConfig, WieraFs};
pub use rubis::{Rubis, RubisConfig, RubisReport};
pub use store::TierStore;
pub use sysbench::{Sysbench, SysbenchConfig, SysbenchReport};
