//! Shared test double: an in-memory [`KvStore`] with fixed modeled
//! latencies and op counters. Used by the fs/sysbench/rubis unit tests and
//! available to downstream benches for calibration runs.

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wiera_sim::SimDuration;
use wiera_workload::{KvError, KvStore, OpSample};

/// Map-backed store with constant modeled get/put latencies.
pub struct MapStore {
    data: Mutex<HashMap<String, (Bytes, u64)>>,
    get_latency: SimDuration,
    put_latency: SimDuration,
    gets: AtomicU64,
    puts: AtomicU64,
}

impl MapStore {
    pub fn shared(get_latency: SimDuration, put_latency: SimDuration) -> Arc<Self> {
        Arc::new(MapStore {
            data: Mutex::new(HashMap::new()),
            get_latency,
            put_latency,
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
        })
    }

    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }
}

impl KvStore for MapStore {
    fn kv_put(&self, key: &str, value: Bytes) -> Result<OpSample, KvError> {
        self.puts.fetch_add(1, Ordering::Relaxed);
        let mut m = self.data.lock();
        let e = m.entry(key.to_string()).or_insert((Bytes::new(), 0));
        e.1 += 1;
        let version = e.1;
        e.0 = value;
        Ok(OpSample {
            latency: self.put_latency,
            version,
        })
    }

    fn kv_get(&self, key: &str) -> Result<OpSample, KvError> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let m = self.data.lock();
        m.get(key)
            .map(|(_, v)| OpSample {
                latency: self.get_latency,
                version: *v,
            })
            .ok_or_else(|| KvError::not_found(format!("object '{key}' not found")))
    }

    fn kv_get_value(&self, key: &str) -> Result<(Bytes, OpSample), KvError> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let m = self.data.lock();
        m.get(key)
            .map(|(b, v)| {
                (
                    b.clone(),
                    OpSample {
                        latency: self.get_latency,
                        version: *v,
                    },
                )
            })
            .ok_or_else(|| KvError::not_found(format!("object '{key}' not found")))
    }
}
