//! The FUSE substitute: POSIX-style files over a PUT/GET store.
//!
//! Files are chunked into fixed-size blocks, each stored as one object
//! (`fs:<path>#<block>`); a tiny metadata object tracks length. An optional
//! page cache absorbs repeated reads; opening with O_DIRECT bypasses it,
//! exactly as the paper configures SysBench and MySQL "to avoid double
//! cache effects".

use crate::cache::ByteLru;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use wiera_sim::SimDuration;
use wiera_workload::KvStore;

/// File-layer configuration.
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// Block size; SysBench's default file-io block is 16 KiB.
    pub block_size: usize,
    /// Bypass the page cache (the O_DIRECT flag).
    pub direct_io: bool,
    /// Page-cache capacity in bytes (ignored when `direct_io`).
    pub cache_bytes: usize,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            block_size: 16 * 1024,
            direct_io: false,
            cache_bytes: 64 << 20,
        }
    }
}

impl FsConfig {
    pub fn direct(block_size: usize) -> Self {
        FsConfig {
            block_size,
            direct_io: true,
            cache_bytes: 0,
        }
    }
}

/// A file system instance over a KV store.
pub struct WieraFs {
    store: Arc<dyn KvStore>,
    pub config: FsConfig,
    lengths: Mutex<HashMap<String, u64>>,
    cache: Mutex<ByteLru<(String, u64)>>,
}

/// Latency of a page-cache hit.
const CACHE_HIT: SimDuration = SimDuration::from_micros(80);

impl WieraFs {
    pub fn new(store: Arc<dyn KvStore>, config: FsConfig) -> Arc<Self> {
        let cache_cap = if config.direct_io {
            0
        } else {
            config.cache_bytes
        };
        Arc::new(WieraFs {
            store,
            config,
            lengths: Mutex::new(HashMap::new()),
            cache: Mutex::new(ByteLru::new(cache_cap)),
        })
    }

    fn block_key(path: &str, block: u64) -> String {
        format!("fs:{path}#{block}")
    }

    pub fn file_len(&self, path: &str) -> u64 {
        self.lengths.lock().get(path).copied().unwrap_or(0)
    }

    pub fn exists(&self, path: &str) -> bool {
        self.lengths.lock().contains_key(path)
    }

    /// Create (or truncate) a file of `len` bytes filled with `fill`,
    /// writing every block. Returns total modeled time.
    pub fn create_filled(&self, path: &str, len: u64, fill: u8) -> Result<SimDuration, String> {
        let bs = self.config.block_size as u64;
        let blocks = len.div_ceil(bs);
        let mut total = SimDuration::ZERO;
        for b in 0..blocks {
            let this = if (b + 1) * bs <= len {
                bs
            } else {
                len - b * bs
            } as usize;
            let data = Bytes::from(vec![fill; this]);
            let s = self.store.kv_put(&Self::block_key(path, b), data)?;
            total += s.latency;
        }
        self.lengths.lock().insert(path.to_string(), len);
        Ok(total)
    }

    pub fn remove(&self, path: &str) {
        self.lengths.lock().remove(path);
        // Blocks are left for the store's GC; a real FS would unlink them.
    }

    /// Read `len` bytes at `offset`. Returns data and modeled latency.
    pub fn read_at(
        &self,
        path: &str,
        offset: u64,
        len: usize,
    ) -> Result<(Bytes, SimDuration), String> {
        let file_len = self.file_len(path);
        if offset >= file_len {
            return Ok((Bytes::new(), SimDuration::ZERO));
        }
        let len = len.min((file_len - offset) as usize);
        let bs = self.config.block_size as u64;
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;
        let mut out = Vec::with_capacity(len);
        let mut total = SimDuration::ZERO;
        for b in first..=last {
            let (block, lat) = self.read_block(path, b)?;
            total += lat;
            let bstart = b * bs;
            let from = offset.max(bstart) - bstart;
            let to = ((offset + len as u64).min(bstart + block.len() as u64)) - bstart;
            out.extend_from_slice(&block[from as usize..to as usize]);
        }
        Ok((Bytes::from(out), total))
    }

    fn read_block(&self, path: &str, b: u64) -> Result<(Bytes, SimDuration), String> {
        let key = (path.to_string(), b);
        if !self.config.direct_io {
            if let Some(hit) = self.cache.lock().get(&key) {
                return Ok((hit, CACHE_HIT));
            }
        }
        let (data, lat) = self.fetch_block(path, b)?;
        if !self.config.direct_io {
            self.cache.lock().insert(key, data.clone());
        }
        Ok((data, lat))
    }

    fn fetch_block(&self, path: &str, b: u64) -> Result<(Bytes, SimDuration), String> {
        // Dedicated value-returning fetch via the KvStore extension.
        self.store
            .kv_get_value(&Self::block_key(path, b))
            .map(|(data, s)| (data, s.latency))
            .map_err(String::from)
    }

    /// Write `data` at `offset`. Partial blocks are read-modify-written.
    /// Returns modeled latency.
    pub fn write_at(&self, path: &str, offset: u64, data: &[u8]) -> Result<SimDuration, String> {
        if data.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        let bs = self.config.block_size as u64;
        let first = offset / bs;
        let last = (offset + data.len() as u64 - 1) / bs;
        let mut total = SimDuration::ZERO;
        for b in first..=last {
            let bstart = b * bs;
            let from = offset.max(bstart);
            let to = (offset + data.len() as u64).min(bstart + bs);
            let slice = &data[(from - offset) as usize..(to - offset) as usize];

            let block = if slice.len() as u64 == bs {
                Bytes::copy_from_slice(slice)
            } else {
                // Read-modify-write of a partial block.
                let (existing, lat) = match self.fetch_block(path, b) {
                    Ok(ok) => ok,
                    Err(_) => (Bytes::new(), SimDuration::ZERO),
                };
                total += lat;
                let mut buf = vec![0u8; ((to - bstart) as usize).max(existing.len())];
                buf[..existing.len()].copy_from_slice(&existing);
                buf[(from - bstart) as usize..(to - bstart) as usize].copy_from_slice(slice);
                Bytes::from(buf)
            };
            let key = (path.to_string(), b);
            let s = self
                .store
                .kv_put(&Self::block_key(path, b), block.clone())?;
            total += s.latency;
            if !self.config.direct_io {
                // Write-through: keep the cache coherent.
                let mut cache = self.cache.lock();
                cache.invalidate(&key);
                cache.insert(key, block);
            }
        }
        let mut lengths = self.lengths.lock();
        let e = lengths.entry(path.to_string()).or_insert(0);
        *e = (*e).max(offset + data.len() as u64);
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::MapStore;

    fn fs(direct: bool) -> (Arc<WieraFs>, Arc<MapStore>) {
        let store = MapStore::shared(SimDuration::from_millis(2), SimDuration::from_millis(3));
        let cfg = FsConfig {
            block_size: 1024,
            direct_io: direct,
            cache_bytes: 16 * 1024,
        };
        (WieraFs::new(store.clone(), cfg), store)
    }

    #[test]
    fn create_read_roundtrip() {
        let (fs, _) = fs(true);
        fs.create_filled("/data", 2500, 7).unwrap();
        assert_eq!(fs.file_len("/data"), 2500);
        let (data, lat) = fs.read_at("/data", 0, 2500).unwrap();
        assert_eq!(data.len(), 2500);
        assert!(data.iter().all(|&b| b == 7));
        assert!(lat > SimDuration::ZERO);
    }

    #[test]
    fn read_past_eof_clamps() {
        let (fs, _) = fs(true);
        fs.create_filled("/f", 100, 1).unwrap();
        let (data, _) = fs.read_at("/f", 50, 500).unwrap();
        assert_eq!(data.len(), 50);
        let (empty, lat) = fs.read_at("/f", 200, 10).unwrap();
        assert!(empty.is_empty());
        assert_eq!(lat, SimDuration::ZERO);
    }

    #[test]
    fn write_spanning_blocks() {
        let (fs, _) = fs(true);
        fs.create_filled("/f", 4096, 0).unwrap();
        let payload: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        fs.write_at("/f", 500, &payload).unwrap();
        let (data, _) = fs.read_at("/f", 500, 2000).unwrap();
        assert_eq!(data.as_ref(), &payload[..]);
        // Bytes around the write are untouched.
        let (before, _) = fs.read_at("/f", 0, 500).unwrap();
        assert!(before.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_extends_file() {
        let (fs, _) = fs(true);
        fs.write_at("/new", 0, &[1, 2, 3]).unwrap();
        assert_eq!(fs.file_len("/new"), 3);
        fs.write_at("/new", 1000, &[9]).unwrap();
        assert_eq!(fs.file_len("/new"), 1001);
    }

    #[test]
    fn page_cache_accelerates_repeat_reads() {
        let (fs, _) = fs(false);
        fs.create_filled("/hot", 1024, 5).unwrap();
        let (_, cold) = fs.read_at("/hot", 0, 1024).unwrap();
        let (_, warm) = fs.read_at("/hot", 0, 1024).unwrap();
        assert!(
            warm.as_millis_f64() < cold.as_millis_f64() / 5.0,
            "cold {cold}, warm {warm}"
        );
    }

    #[test]
    fn direct_io_never_caches() {
        let (fs, store) = fs(true);
        fs.create_filled("/d", 1024, 5).unwrap();
        fs.read_at("/d", 0, 1024).unwrap();
        let gets_before = store.gets();
        fs.read_at("/d", 0, 1024).unwrap();
        assert!(
            store.gets() > gets_before,
            "O_DIRECT must hit the store every time"
        );
    }

    #[test]
    fn cache_stays_coherent_after_write() {
        let (fs, _) = fs(false);
        fs.create_filled("/c", 1024, 1).unwrap();
        fs.read_at("/c", 0, 1024).unwrap(); // warm the cache
        fs.write_at("/c", 0, &[42; 1024]).unwrap();
        let (data, _) = fs.read_at("/c", 0, 1024).unwrap();
        assert!(data.iter().all(|&b| b == 42), "stale cache after write");
    }

    #[test]
    fn cache_evicts_at_capacity() {
        let (fs, store) = fs(false); // cache 16 KiB = 16 blocks of 1 KiB
        fs.create_filled("/big", 32 * 1024, 3).unwrap();
        // Read all 32 blocks: the first ones must be evicted.
        for b in 0..32u64 {
            fs.read_at("/big", b * 1024, 1024).unwrap();
        }
        let before = store.gets();
        fs.read_at("/big", 0, 1024).unwrap(); // block 0 was evicted
        assert!(store.gets() > before);
    }
}
