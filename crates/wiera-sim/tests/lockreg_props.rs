//! Property tests for the lock-order cycle detector.
//!
//! Random acquisition schedules are replayed through
//! [`LockRegistry::replay_acquire`] / [`replay_release`]:
//!
//! * schedules whose every chain respects one global class order must never
//!   be flagged (no false positives), and
//! * schedules with a planted ABBA pair must always be flagged (no false
//!   negatives), regardless of how much ordered noise surrounds the plant.

use proptest::prelude::*;
use wiera_sim::LockRegistry;

/// Fixed class table — `replay_acquire` wants `&'static str` names.
const CLASSES: [&str; 6] = [
    "prop.c0", "prop.c1", "prop.c2", "prop.c3", "prop.c4", "prop.c5",
];
const SITES: [&str; 4] = ["sched:a", "sched:b", "sched:c", "sched:d"];

/// Replay one well-nested chain: acquire the classes in the given index
/// order, then release in reverse.
fn replay_chain(reg: &LockRegistry, chain: &[usize], site: usize) {
    for &c in chain {
        reg.replay_acquire(CLASSES[c], 0, SITES[site % SITES.len()]);
    }
    for &c in chain.iter().rev() {
        reg.replay_release(CLASSES[c], 0);
    }
}

/// Turn a raw random pick into a strictly increasing (order-respecting)
/// chain of distinct class indices.
fn ordered_chain(raw: &[usize]) -> Vec<usize> {
    let mut chain: Vec<usize> = raw.to_vec();
    chain.sort_unstable();
    chain.dedup();
    chain
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn totally_ordered_schedules_are_never_flagged(
        chains in prop::collection::vec(
            prop::collection::vec(0usize..CLASSES.len(), 1..5),
            1..12,
        ),
        site: usize,
    ) {
        let reg = LockRegistry::new();
        for raw in &chains {
            replay_chain(&reg, &ordered_chain(raw), site);
        }
        let cycles = reg.cycles();
        prop_assert!(
            cycles.is_empty(),
            "ordered schedule produced cycles: {cycles:?}"
        );
        prop_assert!(reg.snapshot().imbalances.is_empty());
    }

    #[test]
    fn planted_abba_is_always_flagged(
        chains in prop::collection::vec(
            prop::collection::vec(0usize..CLASSES.len(), 1..5),
            0..12,
        ),
        a in 0usize..CLASSES.len(),
        b in 0usize..CLASSES.len(),
        site: usize,
    ) {
        prop_assume!(a != b);
        let (a, b) = (a.min(b), a.max(b));
        let reg = LockRegistry::new();
        // Ordered noise around the plant.
        for raw in &chains {
            replay_chain(&reg, &ordered_chain(raw), site);
        }
        // The plant: a→b in one chain, b→a in another.
        replay_chain(&reg, &[a, b], site);
        replay_chain(&reg, &[b, a], site + 1);
        let cycles = reg.cycles();
        let hit = cycles.iter().any(|c| {
            c.classes.iter().any(|n| n == CLASSES[a])
                && c.classes.iter().any(|n| n == CLASSES[b])
        });
        prop_assert!(
            hit,
            "planted ABBA on ({}, {}) not flagged; cycles: {cycles:?}",
            CLASSES[a],
            CLASSES[b]
        );
    }
}
