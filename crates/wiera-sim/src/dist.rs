//! Latency distributions.
//!
//! Network and storage-tier models draw per-operation latencies from these.
//! The shapes are chosen to match what the paper's live measurements show:
//! storage-service latencies are right-skewed (log-normal), WAN RTTs are
//! tight around the speed-of-light floor (normal with small sigma).

use crate::rng::SimRng;
use crate::time::SimDuration;
use rand_distr::{Distribution, LogNormal, Normal};
use serde::{Deserialize, Serialize};

/// A distribution over operation latencies, in milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LatencyDist {
    /// Always exactly `ms`.
    Constant { ms: f64 },
    /// Uniform in `[lo_ms, hi_ms)`.
    Uniform { lo_ms: f64, hi_ms: f64 },
    /// Normal(mean, std), truncated below at `floor_ms`.
    Normal {
        mean_ms: f64,
        std_ms: f64,
        floor_ms: f64,
    },
    /// LogNormal parameterized by its *median* and a shape sigma
    /// (sigma of the underlying normal), truncated below at `floor_ms`.
    LogNormal {
        median_ms: f64,
        sigma: f64,
        floor_ms: f64,
    },
}

impl LatencyDist {
    pub fn constant(ms: f64) -> Self {
        LatencyDist::Constant { ms }
    }

    /// Normal with std = 5% of mean and floor = 50% of mean — the default
    /// jitter model for WAN RTTs.
    pub fn rtt(mean_ms: f64) -> Self {
        LatencyDist::Normal {
            mean_ms,
            std_ms: mean_ms * 0.05,
            floor_ms: mean_ms * 0.5,
        }
    }

    /// LogNormal with the given median and a mild right skew — the default
    /// model for cloud storage service latencies.
    pub fn storage(median_ms: f64) -> Self {
        LatencyDist::LogNormal {
            median_ms,
            sigma: 0.25,
            floor_ms: median_ms * 0.4,
        }
    }

    /// Draw one latency.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let ms = match *self {
            LatencyDist::Constant { ms } => ms,
            LatencyDist::Uniform { lo_ms, hi_ms } => rng.gen_range_f64(lo_ms, hi_ms),
            LatencyDist::Normal {
                mean_ms,
                std_ms,
                floor_ms,
            } => {
                // Non-finite parameters (a corrupt config) degrade to the
                // mean rather than killing the data path.
                match Normal::new(mean_ms, std_ms.max(1e-9)) {
                    Ok(n) => n.sample(rng.inner()).max(floor_ms),
                    Err(_) => mean_ms.max(floor_ms),
                }
            }
            LatencyDist::LogNormal {
                median_ms,
                sigma,
                floor_ms,
            } => {
                let mu = median_ms.max(1e-9).ln();
                match LogNormal::new(mu, sigma.max(1e-9)) {
                    Ok(ln) => ln.sample(rng.inner()).max(floor_ms),
                    Err(_) => median_ms.max(floor_ms),
                }
            }
        };
        SimDuration::from_millis_f64(ms)
    }

    /// The central tendency of the distribution (used for capacity planning
    /// and documentation, not sampling).
    pub fn typical_ms(&self) -> f64 {
        match *self {
            LatencyDist::Constant { ms } => ms,
            LatencyDist::Uniform { lo_ms, hi_ms } => (lo_ms + hi_ms) / 2.0,
            LatencyDist::Normal { mean_ms, .. } => mean_ms,
            LatencyDist::LogNormal { median_ms, .. } => median_ms,
        }
    }

    /// Scale the distribution's location by `factor` (used when injecting
    /// slowdowns into a tier or link).
    pub fn scaled(&self, factor: f64) -> LatencyDist {
        match *self {
            LatencyDist::Constant { ms } => LatencyDist::Constant { ms: ms * factor },
            LatencyDist::Uniform { lo_ms, hi_ms } => LatencyDist::Uniform {
                lo_ms: lo_ms * factor,
                hi_ms: hi_ms * factor,
            },
            LatencyDist::Normal {
                mean_ms,
                std_ms,
                floor_ms,
            } => LatencyDist::Normal {
                mean_ms: mean_ms * factor,
                std_ms: std_ms * factor,
                floor_ms: floor_ms * factor,
            },
            LatencyDist::LogNormal {
                median_ms,
                sigma,
                floor_ms,
            } => LatencyDist::LogNormal {
                median_ms: median_ms * factor,
                sigma,
                floor_ms: floor_ms * factor,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: &LatencyDist, n: usize) -> f64 {
        let mut rng = SimRng::new(7);
        (0..n)
            .map(|_| d.sample(&mut rng).as_millis_f64())
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = LatencyDist::constant(12.5);
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), SimDuration::from_micros(12_500));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let d = LatencyDist::Uniform {
            lo_ms: 3.0,
            hi_ms: 9.0,
        };
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let s = d.sample(&mut rng).as_millis_f64();
            assert!((3.0..9.0).contains(&s), "sample {s} out of range");
        }
    }

    #[test]
    fn normal_respects_floor() {
        let d = LatencyDist::Normal {
            mean_ms: 1.0,
            std_ms: 10.0,
            floor_ms: 0.5,
        };
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng).as_millis_f64() >= 0.5);
        }
    }

    #[test]
    fn rtt_mean_close_to_target() {
        let d = LatencyDist::rtt(80.0);
        let m = mean_of(&d, 5000);
        assert!((m - 80.0).abs() < 2.0, "mean {m}");
    }

    #[test]
    fn lognormal_median_close_to_target() {
        let d = LatencyDist::storage(10.0);
        let mut rng = SimRng::new(4);
        let mut v: Vec<f64> = (0..5001)
            .map(|_| d.sample(&mut rng).as_millis_f64())
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((median - 10.0).abs() < 1.0, "median {median}");
    }

    #[test]
    fn lognormal_is_right_skewed() {
        let d = LatencyDist::storage(10.0);
        let m = mean_of(&d, 5000);
        assert!(m > 10.0, "lognormal mean {m} should exceed median");
    }

    #[test]
    fn scaled_scales_location() {
        let d = LatencyDist::rtt(40.0).scaled(3.0);
        assert!((d.typical_ms() - 120.0).abs() < 1e-9);
        let c = LatencyDist::constant(2.0).scaled(5.0);
        assert_eq!(c.typical_ms(), 10.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = LatencyDist::storage(8.0);
        let mut a = SimRng::new(11);
        let mut b = SimRng::new(11);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
