//! Circuit breaker for browned-out dependencies.
//!
//! Brownouts — a throttling tier, a replica with a melting queue — fail
//! *partially*: calls still succeed sometimes, just slowly or sporadically,
//! which is exactly what naive retry loops hammer hardest. The breaker
//! watches error-rate and latency EWMAs over the calls a client actually
//! makes and walks the classic three-state machine:
//!
//! * **Closed** — traffic flows; every outcome feeds the EWMAs. When the
//!   error rate or the latency EWMA crosses its threshold (after a minimum
//!   sample count, so one cold-start blip can't trip it), the breaker opens.
//! * **Open** — traffic is refused locally without touching the dependency.
//!   After `cooldown` of modeled time the next admission request is promoted
//!   to a probe (half-open).
//! * **Half-open** — at most one probe is in flight at a time. `probes`
//!   consecutive successes close the breaker (EWMAs reset — the dependency
//!   earned a clean slate); any failure reopens it and restarts the cooldown.
//!
//! All timing is on the modeled clock and the machine itself is free of
//! randomness, so a seeded workload drives a bit-identical transition
//! sequence — which is what the chaos campaign's replayability relies on.

use crate::registry::MetricsRegistry;
use crate::time::{SimDuration, SimInstant};
use parking_lot::Mutex;

/// Where the state machine currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// What [`CircuitBreaker::admit`] tells the caller to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// Closed: send the call normally.
    Yes,
    /// Half-open: this call is the probe — send it and report the outcome.
    Probe,
    /// Open (or a probe is already in flight): do not touch the dependency.
    No,
}

/// Thresholds and pacing of one breaker.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Open when the error-rate EWMA exceeds this fraction (0..1).
    pub error_threshold: f64,
    /// Open when the latency EWMA exceeds this, if set.
    pub latency_threshold: Option<SimDuration>,
    /// EWMA smoothing factor per sample (weight of the newest outcome).
    pub alpha: f64,
    /// Outcomes observed before the EWMAs are trusted to trip the breaker.
    pub min_samples: u32,
    /// Modeled time spent open before the first probe is admitted.
    pub cooldown: SimDuration,
    /// Consecutive probe successes required to close again.
    pub probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            error_threshold: 0.5,
            latency_threshold: None,
            alpha: 0.2,
            min_samples: 8,
            cooldown: SimDuration::from_millis(500),
            probes: 2,
        }
    }
}

struct Inner {
    state: BreakerState,
    err_ewma: f64,
    lat_ewma_ms: f64,
    samples: u32,
    opened_at: SimInstant,
    probe_inflight: bool,
    probe_successes: u32,
}

/// One breaker guarding one dependency (a replica, a storage tier).
pub struct CircuitBreaker {
    /// Label in exported metrics (`breaker_transitions{name,to}`).
    name: String,
    cfg: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    pub fn new(name: impl Into<String>, cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            name: name.into(),
            cfg,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                err_ewma: 0.0,
                lat_ewma_ms: 0.0,
                samples: 0,
                opened_at: SimInstant::EPOCH,
                probe_inflight: false,
                probe_successes: 0,
            }),
        }
    }

    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Current error-rate EWMA (diagnostics and tests).
    pub fn error_rate(&self) -> f64 {
        self.inner.lock().err_ewma
    }

    /// May a call go out right now?
    pub fn admit(&self, now: SimInstant) -> Admit {
        let mut g = self.inner.lock();
        match g.state {
            BreakerState::Closed => Admit::Yes,
            BreakerState::Open => {
                if now.elapsed_since(g.opened_at) >= self.cfg.cooldown {
                    self.transition(&mut g, BreakerState::HalfOpen);
                    g.probe_inflight = true;
                    g.probe_successes = 0;
                    Admit::Probe
                } else {
                    Admit::No
                }
            }
            BreakerState::HalfOpen => {
                if g.probe_inflight {
                    Admit::No
                } else {
                    g.probe_inflight = true;
                    Admit::Probe
                }
            }
        }
    }

    /// Report a successful call and its latency.
    pub fn record_success(&self, now: SimInstant, latency: SimDuration) {
        let mut g = self.inner.lock();
        self.observe(&mut g, false, latency.as_millis_f64());
        match g.state {
            BreakerState::Closed => self.maybe_open(&mut g, now),
            BreakerState::HalfOpen => {
                g.probe_inflight = false;
                g.probe_successes += 1;
                if g.probe_successes >= self.cfg.probes {
                    // The dependency earned a clean slate: stale brownout
                    // history must not trip the breaker on the next sample.
                    g.err_ewma = 0.0;
                    g.lat_ewma_ms = 0.0;
                    g.samples = 0;
                    self.transition(&mut g, BreakerState::Closed);
                }
            }
            // A straggler reply from before the breaker opened: the EWMA
            // update above is all it contributes.
            BreakerState::Open => {}
        }
    }

    /// Report a failed (or shed/timed-out) call.
    pub fn record_failure(&self, now: SimInstant) {
        let mut g = self.inner.lock();
        // A failure carries no latency sample; hold the latency EWMA flat.
        let lat = g.lat_ewma_ms;
        self.observe(&mut g, true, lat);
        match g.state {
            BreakerState::Closed => self.maybe_open(&mut g, now),
            BreakerState::HalfOpen => {
                g.probe_inflight = false;
                g.opened_at = now;
                self.transition(&mut g, BreakerState::Open);
            }
            BreakerState::Open => {}
        }
    }

    fn observe(&self, g: &mut Inner, failed: bool, lat_ms: f64) {
        let a = self.cfg.alpha;
        let err = if failed { 1.0 } else { 0.0 };
        if g.samples == 0 {
            g.err_ewma = err;
            g.lat_ewma_ms = lat_ms;
        } else {
            g.err_ewma = (1.0 - a) * g.err_ewma + a * err;
            g.lat_ewma_ms = (1.0 - a) * g.lat_ewma_ms + a * lat_ms;
        }
        g.samples = g.samples.saturating_add(1);
    }

    fn maybe_open(&self, g: &mut Inner, now: SimInstant) {
        if g.samples < self.cfg.min_samples {
            return;
        }
        let slow = self
            .cfg
            .latency_threshold
            .is_some_and(|t| g.lat_ewma_ms > t.as_millis_f64());
        if g.err_ewma > self.cfg.error_threshold || slow {
            g.opened_at = now;
            self.transition(g, BreakerState::Open);
        }
    }

    fn transition(&self, g: &mut Inner, to: BreakerState) {
        g.state = to;
        let to_s = to.to_string();
        MetricsRegistry::global().inc(
            "breaker_transitions",
            &[("name", self.name.as_str()), ("to", to_s.as_str())],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn t(ms: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_millis(ms)
    }

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            min_samples: 4,
            cooldown: SimDuration::from_millis(100),
            probes: 2,
            ..BreakerConfig::default()
        }
    }

    #[test]
    fn full_cycle_closed_open_halfopen_closed() {
        let b = CircuitBreaker::new("dep", cfg());
        assert_eq!(b.state(), BreakerState::Closed);
        for i in 0..6 {
            if b.state() == BreakerState::Closed {
                assert_eq!(b.admit(t(i)), Admit::Yes);
            }
            b.record_failure(t(i));
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Inside the cooldown: refused without touching the dependency.
        assert_eq!(b.admit(t(50)), Admit::No);
        // Cooldown over: exactly one probe goes out.
        assert_eq!(b.admit(t(200)), Admit::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(t(201)), Admit::No, "one probe in flight at a time");
        b.record_success(t(210), SimDuration::from_millis(5));
        assert_eq!(b.admit(t(220)), Admit::Probe);
        b.record_success(t(230), SimDuration::from_millis(5));
        assert_eq!(b.state(), BreakerState::Closed);
        // Clean slate: the old failure history is gone.
        assert!(b.error_rate() < 1e-9);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let b = CircuitBreaker::new("dep", cfg());
        for i in 0..6 {
            b.record_failure(t(i));
        }
        assert_eq!(b.admit(t(150)), Admit::Probe);
        b.record_failure(t(160));
        assert_eq!(b.state(), BreakerState::Open);
        // The cooldown restarted at the probe failure, not the first open.
        assert_eq!(b.admit(t(200)), Admit::No);
        assert_eq!(b.admit(t(300)), Admit::Probe);
    }

    #[test]
    fn latency_ewma_alone_can_open() {
        let b = CircuitBreaker::new(
            "slow",
            BreakerConfig {
                latency_threshold: Some(SimDuration::from_millis(50)),
                min_samples: 4,
                ..cfg()
            },
        );
        for i in 0..8 {
            b.record_success(t(i), SimDuration::from_millis(400));
        }
        assert_eq!(b.state(), BreakerState::Open, "slow successes must trip it");
    }

    #[test]
    fn min_samples_guards_cold_start() {
        let b = CircuitBreaker::new("cold", cfg());
        b.record_failure(t(0));
        b.record_failure(t(1));
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "two samples are below min_samples"
        );
    }

    #[test]
    fn healthy_traffic_never_trips() {
        let b = CircuitBreaker::new("ok", cfg());
        for i in 0..1000 {
            assert_eq!(b.admit(t(i)), Admit::Yes);
            b.record_success(t(i), SimDuration::from_millis(3));
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    /// The machine has no internal randomness: the same seeded outcome
    /// sequence produces the same transition trace, run after run.
    #[test]
    fn seeded_outcome_sequence_is_deterministic() {
        let drive = |seed: u64| -> Vec<(u64, BreakerState)> {
            let b = CircuitBreaker::new("det", cfg());
            let mut rng = SimRng::new(seed).child("breaker");
            let mut trace = Vec::new();
            let mut last = b.state();
            for step in 0..400u64 {
                let now = t(step * 10);
                match b.admit(now) {
                    Admit::Yes | Admit::Probe => {
                        // A browned-out phase in the middle of the run.
                        let brownout = (100..200).contains(&step);
                        let fail_p = if brownout { 0.9 } else { 0.05 };
                        if rng.gen_range_f64(0.0, 1.0) < fail_p {
                            b.record_failure(now);
                        } else {
                            b.record_success(now, SimDuration::from_millis(4));
                        }
                    }
                    Admit::No => {}
                }
                let s = b.state();
                if s != last {
                    trace.push((step, s));
                    last = s;
                }
            }
            trace
        };
        let a = drive(42);
        let b = drive(42);
        assert_eq!(a, b, "same seed, same transitions");
        assert!(
            a.iter().any(|(_, s)| *s == BreakerState::Open),
            "the brownout phase must open the breaker: {a:?}"
        );
        assert_eq!(
            a.last().map(|(_, s)| *s),
            Some(BreakerState::Closed),
            "the healed phase must close it again: {a:?}"
        );
    }
}
