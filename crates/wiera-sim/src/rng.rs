//! Deterministic randomness.
//!
//! Every experiment takes a single root seed; components derive their own
//! streams with [`derive_seed`] so adding a component never perturbs the
//! stream of another (a classic reproducibility pitfall in simulators).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 step — used to derive independent seeds from (base, tag) pairs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive an independent child seed from a root seed and a label.
///
/// The label is hashed byte-wise through SplitMix64 so textual tags
/// ("net:us-east", "tier:s3") give well-separated streams.
pub fn derive_seed(base: u64, tag: &str) -> u64 {
    let mut s = splitmix64(base);
    for &b in tag.as_bytes() {
        s = splitmix64(s ^ b as u64);
    }
    s
}

/// A seeded RNG used across the workspace.
///
/// Thin wrapper over `StdRng` that remembers its seed (handy for error
/// reports) and offers the couple of helpers the simulators need.
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    pub fn new(seed: u64) -> Self {
        SimRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive a child RNG for a named component.
    pub fn child(&self, tag: &str) -> SimRng {
        SimRng::new(derive_seed(self.seed, tag))
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Fill a byte buffer (used to synthesize object payloads).
    pub fn fill(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }

    pub fn inner(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range_usize(0, 1000), b.gen_range_usize(0, 1000));
        }
    }

    #[test]
    fn derived_seeds_differ_by_tag() {
        let s1 = derive_seed(7, "net:us-east");
        let s2 = derive_seed(7, "net:us-west");
        let s3 = derive_seed(8, "net:us-east");
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn child_rngs_are_independent_of_sibling_creation() {
        let root = SimRng::new(99);
        let mut a1 = root.child("a");
        let _b = root.child("b"); // creating b must not perturb a's stream
        let mut a2 = SimRng::new(99).child("a");
        for _ in 0..50 {
            assert_eq!(
                a1.gen_range_usize(0, 1 << 20),
                a2.gen_range_usize(0, 1 << 20)
            );
        }
    }

    #[test]
    fn degenerate_ranges_return_lo() {
        let mut r = SimRng::new(1);
        assert_eq!(r.gen_range_usize(5, 5), 5);
        assert_eq!(r.gen_range_f64(2.0, 1.0), 2.0);
    }

    #[test]
    fn gen_bool_clamps_probability() {
        let mut r = SimRng::new(1);
        assert!(r.gen_bool(2.0));
        assert!(!r.gen_bool(-1.0));
    }

    #[test]
    fn fill_is_deterministic() {
        let mut a = SimRng::new(5);
        let mut b = SimRng::new(5);
        let mut ba = [0u8; 64];
        let mut bb = [0u8; 64];
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_eq!(ba, bb);
    }
}
