#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! Simulation substrate for the Wiera reproduction.
//!
//! The paper evaluates a live system whose interesting latencies are measured
//! in wall-clock milliseconds-to-minutes on real clouds. This crate provides
//! the time, randomness and measurement machinery that lets the rest of the
//! workspace run those experiments quickly and reproducibly:
//!
//! * [`time`] — `SimDuration` / `SimInstant`, an explicit *modeled time* axis
//!   kept distinct from wall time so a 600-second experiment can run in
//!   seconds of real time.
//! * [`clock`] — the [`Clock`] trait with a wall-time-backed [`ScaledClock`]
//!   (real threads, compressed time) and a fully deterministic
//!   [`ManualClock`] for unit tests.
//! * [`rng`] — seed derivation and a small deterministic RNG façade so every
//!   experiment is reproducible from a single `u64` seed.
//! * [`dist`] — latency distributions (constant / uniform / normal /
//!   log-normal) used by the network and storage-tier models.
//! * [`metrics`] — histograms with percentile summaries, counters and
//!   time-series recorders used by every benchmark harness.
//! * [`registry`] — the process-wide [`MetricsRegistry`] of named, labeled
//!   counters/gauges/histograms every subsystem records into; snapshots
//!   export deterministically as JSON for CI gating.
//! * [`trace`] — bounded ring buffer of structured [`trace::TraceEvent`]s
//!   stamped on the modeled-time axis, exportable as JSONL.
//! * [`lockreg`] — [`TrackedMutex`] / [`TrackedRwLock`] wrappers feeding a
//!   process-wide lock-order graph; Tarjan-SCC cycle detection surfaces
//!   potential (ABBA-style) deadlocks for `wiera-check`.
//! * [`breaker`] — closed/open/half-open circuit breaker on error-rate and
//!   latency EWMAs, used by the client failover loop and the tier engine to
//!   probe browned-out dependencies instead of hammering them.

pub mod breaker;
pub mod clock;
pub mod dist;
pub mod lockreg;
pub mod metrics;
pub mod registry;
pub mod rng;
pub mod time;
pub mod trace;

pub use breaker::{Admit, BreakerConfig, BreakerState, CircuitBreaker};
pub use clock::{Clock, FrozenClock, ManualClock, ScaledClock, SharedClock};
pub use dist::LatencyDist;
pub use lockreg::{LockOrderSnapshot, LockRegistry, TrackedMutex, TrackedRwLock};
pub use metrics::{Counter, Histogram, LatencyRecorder, Summary, TimeSeries};
pub use registry::{MetricsRegistry, RegistrySnapshot};
pub use rng::{derive_seed, SimRng};
pub use time::{SimDuration, SimInstant};
pub use trace::{Span, TraceEvent, Tracer};
