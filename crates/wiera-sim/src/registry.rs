//! Workspace-wide metrics registry: named, labeled counters, gauges and
//! latency histograms with lock-cheap sharded recording and deterministic
//! snapshot export.
//!
//! Every subsystem (network mesh, storage tiers, coordination service,
//! replicas, instances) records into one [`MetricsRegistry`] — usually the
//! process-wide [`MetricsRegistry::global()`] — and benchmark binaries
//! export a [`RegistrySnapshot`] to `results/metrics_<name>.json` at exit.
//! CI's bench-smoke job asserts invariants over those exported counters.
//!
//! Design notes:
//!
//! * **Handles are cheap.** [`MetricsRegistry::counter`] /
//!   [`MetricsRegistry::gauge`] / [`MetricsRegistry::histogram`] return
//!   `Arc` handles resolved through a read-locked map; hot paths may also
//!   cache the handle. Counters and gauges are single atomics; histograms
//!   shard their buckets by thread so concurrent recording rarely contends
//!   on one lock.
//! * **Snapshots are deterministic.** Metrics are keyed by
//!   `(name, sorted labels)` in `BTreeMap`s, so two runs with the same
//!   events produce byte-identical JSON (the serde shim keeps object keys
//!   sorted too).

use crate::metrics::{Histogram, Summary};
use crate::time::SimDuration;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of histogram shards. Power of two; thread ids hash onto shards.
const SHARDS: usize = 8;

/// A metric identity: name plus sorted `key=value` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Render as `name{k=v,...}` (or bare `name` when unlabeled).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}{{{}}}", self.name, inner.join(","))
    }
}

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct CounterHandle {
    value: AtomicU64,
}

impl CounterHandle {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (queue depths, open sessions, bytes resident).
#[derive(Debug, Default)]
pub struct GaugeHandle {
    value: AtomicI64,
}

impl GaugeHandle {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Latency histogram with per-thread shard striping: recording locks only
/// the caller's shard, so concurrent recorders on different threads do not
/// serialize against each other.
#[derive(Debug)]
pub struct HistogramHandle {
    shards: [Mutex<Histogram>; SHARDS],
}

impl Default for HistogramHandle {
    fn default() -> Self {
        HistogramHandle {
            shards: std::array::from_fn(|_| Mutex::new(Histogram::new())),
        }
    }
}

fn shard_index() -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    (h.finish() as usize) % SHARDS
}

impl HistogramHandle {
    pub fn record(&self, sample: SimDuration) {
        self.shards[shard_index()].lock().record(sample);
    }

    /// Merge all shards into one histogram (snapshot path only).
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new();
        for shard in &self.shards {
            out.merge(&shard.lock());
        }
        out
    }
}

/// Exported form of one registry scrape. Keys are `name{k=v,...}` strings;
/// all maps are ordered, so serialization is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, Summary>,
}

impl RegistrySnapshot {
    /// Sum of every counter whose bare name (label part stripped) matches.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.as_str() == name || k.starts_with(&format!("{name}{{")))
            .map(|(_, v)| v)
            .sum()
    }

    /// Total sample count across every histogram matching the bare name.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.histograms
            .iter()
            .filter(|(k, _)| k.as_str() == name || k.starts_with(&format!("{name}{{")))
            .map(|(_, s)| s.count)
            .sum()
    }
}

/// The registry proper. Cloneable handles, deterministic snapshots.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<MetricKey, Arc<CounterHandle>>>,
    gauges: RwLock<BTreeMap<MetricKey, Arc<GaugeHandle>>>,
    histograms: RwLock<BTreeMap<MetricKey, Arc<HistogramHandle>>>,
}

fn get_or_insert<H: Default>(map: &RwLock<BTreeMap<MetricKey, Arc<H>>>, key: MetricKey) -> Arc<H> {
    if let Some(h) = map.read().get(&key) {
        return Arc::clone(h);
    }
    Arc::clone(map.write().entry(key).or_default())
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry every subsystem records into by default.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<CounterHandle> {
        get_or_insert(&self.counters, MetricKey::new(name, labels))
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<GaugeHandle> {
        get_or_insert(&self.gauges, MetricKey::new(name, labels))
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<HistogramHandle> {
        get_or_insert(&self.histograms, MetricKey::new(name, labels))
    }

    /// Convenience: bump a labeled counter by one.
    pub fn inc(&self, name: &str, labels: &[(&str, &str)]) {
        self.counter(name, labels).inc();
    }

    /// Convenience: record one latency sample.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], sample: SimDuration) {
        self.histogram(name, labels).record(sample);
    }

    /// Drop every registered metric. Benchmark binaries call this before a
    /// run so exported snapshots cover exactly that run.
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
    }

    /// Scrape everything into an ordered, serializable snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = self
            .counters
            .read()
            .iter()
            .map(|(k, h)| (k.render(), h.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .iter()
            .map(|(k, h)| (k.render(), h.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .iter()
            .map(|(k, h)| (k.render(), h.merged().summary()))
            .collect();
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_handle_different_labels_distinct() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("rpc_total", &[("from", "UsEast"), ("to", "EuWest")]);
        // Label order must not matter for identity.
        let b = reg.counter("rpc_total", &[("to", "EuWest"), ("from", "UsEast")]);
        let c = reg.counter("rpc_total", &[("from", "EuWest"), ("to", "UsEast")]);
        a.inc();
        b.add(2);
        c.inc();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        let snap = reg.snapshot();
        assert_eq!(snap.counters["rpc_total{from=UsEast,to=EuWest}"], 3);
        assert_eq!(snap.counters["rpc_total{from=EuWest,to=UsEast}"], 1);
        assert_eq!(snap.counter_sum("rpc_total"), 4);
    }

    #[test]
    fn sharded_histogram_is_correct_under_concurrency() {
        let reg = Arc::new(MetricsRegistry::new());
        let threads = 8;
        let per_thread = 1_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let h = reg.histogram("op_latency", &[("tier", "ssd")]);
                    for i in 0..per_thread {
                        h.record(SimDuration::from_micros(t * per_thread + i + 1));
                        reg.inc("ops_total", &[("tier", "ssd")]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("ops_total"), threads * per_thread);
        assert_eq!(snap.histogram_count("op_latency"), threads * per_thread);
        let summary = &snap.histograms["op_latency{tier=ssd}"];
        assert!(summary.max_ms >= summary.p99_ms && summary.p99_ms >= summary.p50_ms);
    }

    #[test]
    fn snapshot_ordering_is_deterministic() {
        let reg = MetricsRegistry::new();
        reg.inc("zeta", &[]);
        reg.inc("alpha", &[("r", "b")]);
        reg.inc("alpha", &[("r", "a")]);
        reg.gauge("depth", &[]).set(-3);
        reg.observe("lat", &[], SimDuration::from_micros(5));
        let a = serde_json::to_string(&reg.snapshot()).unwrap();
        let b = serde_json::to_string(&reg.snapshot()).unwrap();
        assert_eq!(a, b);
        let snap = reg.snapshot();
        let keys: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(keys, ["alpha{r=a}", "alpha{r=b}", "zeta"]);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = MetricsRegistry::new();
        reg.inc("c", &[("x", "1")]);
        reg.gauge("g", &[]).set(7);
        reg.observe("h", &[], SimDuration::from_millis(3));
        let snap = reg.snapshot();
        let text = serde_json::to_string_pretty(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.histograms.len(), snap.histograms.len());
    }

    #[test]
    fn reset_clears_everything() {
        let reg = MetricsRegistry::new();
        reg.inc("c", &[]);
        reg.reset();
        assert!(reg.snapshot().counters.is_empty());
    }
}
