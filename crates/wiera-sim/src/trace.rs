//! Structured, sim-clock-aware event tracing.
//!
//! A [`Tracer`] holds a bounded ring buffer of [`TraceEvent`]s stamped with
//! *modeled* time (microseconds on the [`crate::SimInstant`] axis), so a
//! trace of a compressed 600-second experiment reads in experiment time,
//! not wall time. Spans measure an operation's modeled duration and record
//! one event when closed.
//!
//! Events export as JSONL — one JSON object per line — which streams well
//! and diffs well, and round-trips through the serde shim.

use crate::time::SimInstant;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::OnceLock;

/// One traced event on the modeled-time axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Modeled timestamp, µs since the simulation epoch.
    pub t_us: u64,
    /// Subsystem that recorded the event (`net`, `tiers`, `coord`, ...).
    pub subsystem: String,
    /// Operation or event name (`rpc`, `put`, `lock_acquire`, ...).
    pub op: String,
    /// Region the event happened in, if meaningful.
    pub region: Option<String>,
    /// Node / instance identifier, if meaningful.
    pub node: Option<String>,
    /// Modeled duration in µs for span-shaped events; `None` for points.
    pub dur_us: Option<u64>,
    /// Free-form detail (error kind, queue depth, object key, ...).
    pub detail: Option<String>,
}

/// Bounded ring buffer of trace events. When full, the oldest events are
/// dropped (and counted), so tracing never grows without bound.
pub struct Tracer {
    inner: Mutex<Ring>,
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl Tracer {
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(1024)),
                capacity: capacity.max(1),
                dropped: 0,
                enabled: true,
            }),
        }
    }

    /// The process-wide tracer (64k events ≈ a few MB at peak).
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(|| Tracer::with_capacity(65_536))
    }

    /// Disable/enable recording (benchmarks that only want counters can
    /// turn tracing off wholesale).
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.lock().enabled = enabled;
    }

    pub fn record(&self, event: TraceEvent) {
        let mut ring = self.inner.lock();
        if !ring.enabled {
            return;
        }
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Record a point event with just timestamps and identity labels.
    pub fn point(&self, now: SimInstant, subsystem: &str, op: &str, detail: Option<String>) {
        self.record(TraceEvent {
            t_us: now.as_micros(),
            subsystem: subsystem.to_string(),
            op: op.to_string(),
            region: None,
            node: None,
            dur_us: None,
            detail,
        });
    }

    /// Open a span starting now; closing it records one event.
    pub fn span(&self, start: SimInstant, subsystem: &str, op: &str) -> Span<'_> {
        Span {
            tracer: self,
            start,
            subsystem: subsystem.to_string(),
            op: op.to_string(),
            region: None,
            node: None,
            detail: None,
        }
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Drop all buffered events and reset the drop counter.
    pub fn clear(&self) {
        let mut ring = self.inner.lock();
        ring.events.clear();
        ring.dropped = 0;
    }

    /// Export as JSONL: one compact JSON object per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.inner.lock().events.iter() {
            // An unserializable event is dropped rather than killing the
            // export (serialization of these plain structs cannot fail
            // today; this guards future event shapes).
            if let Ok(line) = serde_json::to_string(event) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Parse a JSONL export back into events (inverse of [`Self::to_jsonl`]).
    pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| serde_json::from_str(l).map_err(|e| e.to_string()))
            .collect()
    }
}

/// An in-flight traced operation. Build it up with the labeling methods,
/// then close it with [`Span::finish`] at the operation's modeled end time.
pub struct Span<'a> {
    tracer: &'a Tracer,
    start: SimInstant,
    subsystem: String,
    op: String,
    region: Option<String>,
    node: Option<String>,
    detail: Option<String>,
}

impl Span<'_> {
    pub fn region(mut self, region: impl Into<String>) -> Self {
        self.region = Some(region.into());
        self
    }

    pub fn node(mut self, node: impl Into<String>) -> Self {
        self.node = Some(node.into());
        self
    }

    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }

    /// Close the span at `end`, recording one event whose duration is the
    /// modeled elapsed time (saturating at zero if clocks ran backwards).
    pub fn finish(self, end: SimInstant) {
        let dur = end.elapsed_since(self.start);
        self.tracer.record(TraceEvent {
            t_us: self.start.as_micros(),
            subsystem: self.subsystem,
            op: self.op,
            region: self.region,
            node: self.node,
            dur_us: Some(dur.as_micros()),
            detail: self.detail,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(us: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_micros(us)
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let tracer = Tracer::with_capacity(3);
        for i in 0..5 {
            tracer.point(at(i), "test", "tick", None);
        }
        assert_eq!(tracer.len(), 3);
        assert_eq!(tracer.dropped(), 2);
        let times: Vec<u64> = tracer.events().iter().map(|e| e.t_us).collect();
        assert_eq!(times, [2, 3, 4]);
    }

    #[test]
    fn span_records_modeled_duration() {
        let tracer = Tracer::with_capacity(16);
        tracer
            .span(at(100), "net", "rpc")
            .region("UsEast")
            .node("replica-1")
            .detail("Put")
            .finish(at(350));
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].t_us, 100);
        assert_eq!(events[0].dur_us, Some(250));
        assert_eq!(events[0].region.as_deref(), Some("UsEast"));
    }

    #[test]
    fn jsonl_roundtrip() {
        let tracer = Tracer::with_capacity(16);
        tracer.point(at(1), "coord", "session_expired", Some("s-42".into()));
        tracer
            .span(at(2), "tiers", "put")
            .region("EuWest")
            .finish(at(9));
        let text = tracer.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = Tracer::parse_jsonl(&text).unwrap();
        assert_eq!(back, tracer.events());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::with_capacity(4);
        tracer.set_enabled(false);
        tracer.point(at(5), "x", "y", None);
        assert!(tracer.is_empty());
    }
}
