//! Lock-order tracking and potential-deadlock detection.
//!
//! The runtime takes ~70 `Mutex`/`RwLock` acquisitions across wiera-coord,
//! the replica protocols and the Tiera instance engine. A deadlock needs two
//! locks taken in opposite orders by two threads — but only *potentially*
//! concurrently: the classic ABBA hazard is a property of the lock-order
//! graph, not of any particular interleaving. This module provides
//! TSan-style lock-order analysis:
//!
//! * [`TrackedMutex`] / [`TrackedRwLock`] — thin wrappers over the
//!   `parking_lot` types. Each lock belongs to a named *class* (e.g.
//!   `"coord.state"`, `"replica.queue"`); every acquisition records its
//!   source location via `#[track_caller]`.
//! * A per-thread held-lock stack: when a thread acquires lock `B` while
//!   holding lock `A`, the class-level edge `A → B` (with both acquisition
//!   sites) is recorded into a [`LockRegistry`].
//! * [`LockRegistry::cycles`] runs Tarjan's SCC algorithm over the class
//!   graph and reports every strongly connected component of size ≥ 2 as a
//!   potential deadlock — even if the schedule never actually interleaved
//!   the two orders.
//!
//! Same-class nesting (two *distinct instances* of one class held at once)
//! is reported separately: the class-level graph cannot order instances
//! within a class, so it is a hazard warning rather than a proven cycle.
//!
//! The registry is process-global by default ([`LockRegistry::global`]);
//! tests and replay harnesses can create isolated registries with
//! [`LockRegistry::new`] and drive them directly through
//! [`LockRegistry::replay_acquire`] / [`LockRegistry::replay_release`]
//! without constructing real locks (used by the proptest schedules and the
//! `wiera-check` adversarial corpus).
//!
//! Cost model: pushing/popping the thread-local held stack is a few
//! nanoseconds per acquisition; the global registry mutex is only touched
//! when a *nested* acquisition sees a class pair this thread has not
//! recorded before (a per-thread cache makes repeat edges free).

use parking_lot as pl;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Acquisition mode, recorded per held-stack entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Shared (read) acquisition.
    Shared,
    /// Exclusive (write / mutex) acquisition.
    Exclusive,
}

/// Where an acquisition happened: a real `#[track_caller]` location or a
/// replay-provided name.
#[derive(Clone, Copy, Debug)]
enum Site {
    Loc(&'static Location<'static>),
    Named(&'static str),
}

impl Site {
    fn render(&self) -> String {
        match self {
            Site::Loc(l) => format!("{}:{}", l.file(), l.line()),
            Site::Named(n) => (*n).to_string(),
        }
    }

    /// Shared acquisitions are annotated so cycle reports show which side of
    /// an edge was only ever a read lock.
    fn render_mode(&self, mode: Mode) -> String {
        match mode {
            Mode::Shared => format!("{} (shared)", self.render()),
            Mode::Exclusive => self.render(),
        }
    }
}

struct HeldEntry {
    /// Unique id of the owning registry (never dereferenced).
    reg: u64,
    lock_id: u64,
    class: u32,
    mode: Mode,
    site: Site,
}

thread_local! {
    static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
    /// Per-thread cache of (registry, epoch, from_class, to_class) edges
    /// already pushed to the global graph, so steady-state nesting never
    /// touches the registry mutex.
    static SEEN: RefCell<HashSet<(u64, u64, u32, u32)>> = RefCell::new(HashSet::new());
}

static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_lock_id() -> u64 {
    NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed)
}

/// One recorded class-level ordering edge `from → to`.
#[derive(Clone, Debug)]
pub struct EdgeSnapshot {
    pub from: String,
    pub to: String,
    /// Acquisition site of the held (`from`) lock, first time observed.
    pub held_site: String,
    /// Acquisition site of the acquired (`to`) lock, first time observed.
    pub acquire_site: String,
    /// Number of distinct first-observations (per thread) of this edge.
    pub count: u64,
}

/// A strongly connected component of the lock-order graph: a potential
/// deadlock, reported whether or not the opposing orders ever interleaved.
#[derive(Clone, Debug)]
pub struct CycleReport {
    /// Member classes, sorted by name.
    pub classes: Vec<String>,
    /// The recorded edges among the member classes.
    pub edges: Vec<EdgeSnapshot>,
}

/// Two distinct instances of one lock class held simultaneously by a thread.
#[derive(Clone, Debug)]
pub struct SameClassReport {
    pub class: String,
    pub held_site: String,
    pub acquire_site: String,
    pub count: u64,
}

/// A replayed release with no matching acquisition on the calling thread.
#[derive(Clone, Debug)]
pub struct ImbalanceReport {
    pub class: String,
    pub detail: String,
}

/// Full picture of everything a registry has observed.
#[derive(Clone, Debug, Default)]
pub struct LockOrderSnapshot {
    pub classes: Vec<String>,
    pub edges: Vec<EdgeSnapshot>,
    pub same_class: Vec<SameClassReport>,
    pub imbalances: Vec<ImbalanceReport>,
}

#[derive(Clone)]
struct EdgeInfo {
    held_site: String,
    acquire_site: String,
    count: u64,
}

#[derive(Default)]
struct RegistryState {
    class_names: Vec<String>,
    class_ids: HashMap<String, u32>,
    /// Ordering edges between distinct classes.
    edges: BTreeMap<(u32, u32), EdgeInfo>,
    /// Same-class (distinct-instance) nestings, keyed by class.
    same_class: BTreeMap<u32, EdgeInfo>,
    imbalances: Vec<ImbalanceReport>,
}

/// Process-wide (or scoped) sink for lock-order observations.
pub struct LockRegistry {
    state: pl::Mutex<RegistryState>,
    /// Bumped by [`reset`](Self::reset) to invalidate per-thread edge caches.
    epoch: AtomicU64,
    /// Process-unique id: cache keys and held-stack entries must not key on
    /// the registry's address, which the allocator can reuse after a drop.
    uid: u64,
}

impl Default for LockRegistry {
    fn default() -> Self {
        static NEXT_UID: AtomicU64 = AtomicU64::new(1);
        LockRegistry {
            state: pl::Mutex::new(RegistryState::default()),
            epoch: AtomicU64::new(0),
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for LockRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockRegistry").finish_non_exhaustive()
    }
}

impl LockRegistry {
    /// The process-wide registry all [`TrackedMutex::new`] /
    /// [`TrackedRwLock::new`] locks report into.
    pub fn global() -> &'static Arc<LockRegistry> {
        static GLOBAL: OnceLock<Arc<LockRegistry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(LockRegistry::default()))
    }

    /// A fresh, isolated registry (tests / replay harnesses).
    pub fn new() -> Arc<LockRegistry> {
        Arc::new(LockRegistry::default())
    }

    /// Clear all recorded edges and findings. Intended for tests that share
    /// the global registry; not safe to interleave with concurrent lock
    /// traffic you intend to keep.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.edges.clear();
        st.same_class.clear();
        st.imbalances.clear();
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    fn identity(&self) -> u64 {
        self.uid
    }

    fn intern(&self, class: &str) -> u32 {
        let mut st = self.state.lock();
        if let Some(&id) = st.class_ids.get(class) {
            return id;
        }
        let id = st.class_names.len() as u32;
        st.class_names.push(class.to_string());
        st.class_ids.insert(class.to_string(), id);
        id
    }

    /// Record the ordering consequences of acquiring (`class`, `lock_id`)
    /// in `mode` while holding whatever the current thread holds. Called
    /// *before* blocking on the underlying lock.
    fn note_acquire_edges(&self, class: u32, lock_id: u64, mode: Mode, site: Site) {
        let reg = self.identity();
        let epoch = self.epoch.load(Ordering::Relaxed);
        HELD.with(|h| {
            let held = h.borrow();
            for e in held.iter() {
                if e.reg != reg || e.lock_id == lock_id {
                    continue;
                }
                let cached = SEEN.with(|s| !s.borrow_mut().insert((reg, epoch, e.class, class)));
                if cached {
                    continue;
                }
                let mut st = self.state.lock();
                let fresh = || EdgeInfo {
                    held_site: e.site.render_mode(e.mode),
                    acquire_site: site.render_mode(mode),
                    count: 0,
                };
                let info = if e.class == class {
                    st.same_class.entry(class).or_insert_with(fresh)
                } else {
                    st.edges.entry((e.class, class)).or_insert_with(fresh)
                };
                info.count += 1;
            }
        });
    }

    fn push_held(&self, class: u32, lock_id: u64, mode: Mode, site: Site) {
        let reg = self.identity();
        HELD.with(|h| {
            h.borrow_mut().push(HeldEntry {
                reg,
                lock_id,
                class,
                mode,
                site,
            })
        });
    }

    /// Pop the topmost held entry for `lock_id`; returns false if absent.
    fn pop_held(&self, lock_id: u64) -> bool {
        let reg = self.identity();
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held
                .iter()
                .rposition(|e| e.reg == reg && e.lock_id == lock_id)
            {
                held.remove(pos);
                true
            } else {
                false
            }
        })
    }

    /// Replay API: record an acquisition of `instance` of `class` at `site`
    /// on the calling thread, without any real lock. Used to feed synthetic
    /// schedules (proptest, adversarial corpus) through the same detector.
    pub fn replay_acquire(&self, class: &'static str, instance: u64, site: &'static str) {
        let cid = self.intern(class);
        // High bit marks replayed ids so they never collide with real locks.
        let lock_id = (1 << 63) | ((cid as u64) << 32) | (instance & 0xffff_ffff);
        self.note_acquire_edges(cid, lock_id, Mode::Exclusive, Site::Named(site));
        self.push_held(cid, lock_id, Mode::Exclusive, Site::Named(site));
    }

    /// Replay API: release a previously replayed acquisition. A release with
    /// no matching acquisition on this thread is recorded as an imbalance.
    pub fn replay_release(&self, class: &'static str, instance: u64) {
        let cid = self.intern(class);
        let lock_id = (1 << 63) | ((cid as u64) << 32) | (instance & 0xffff_ffff);
        if !self.pop_held(lock_id) {
            let mut st = self.state.lock();
            st.imbalances.push(ImbalanceReport {
                class: class.to_string(),
                detail: format!("release of {class}#{instance} with no matching acquire"),
            });
        }
    }

    /// Everything observed so far, with names resolved.
    pub fn snapshot(&self) -> LockOrderSnapshot {
        let st = self.state.lock();
        let name = |id: u32| st.class_names[id as usize].clone();
        LockOrderSnapshot {
            classes: st.class_names.clone(),
            edges: st
                .edges
                .iter()
                .map(|(&(a, b), info)| EdgeSnapshot {
                    from: name(a),
                    to: name(b),
                    held_site: info.held_site.clone(),
                    acquire_site: info.acquire_site.clone(),
                    count: info.count,
                })
                .collect(),
            same_class: st
                .same_class
                .iter()
                .map(|(&c, info)| SameClassReport {
                    class: name(c),
                    held_site: info.held_site.clone(),
                    acquire_site: info.acquire_site.clone(),
                    count: info.count,
                })
                .collect(),
            imbalances: st.imbalances.clone(),
        }
    }

    /// Tarjan-SCC over the class-level ordering graph. Every strongly
    /// connected component with ≥ 2 classes is a potential deadlock: some
    /// pair of threads can each hold one lock while waiting for the other,
    /// even if the recorded schedules never interleaved that way.
    pub fn cycles(&self) -> Vec<CycleReport> {
        let st = self.state.lock();
        let n = st.class_names.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in st.edges.keys() {
            adj[a as usize].push(b as usize);
        }

        // Iterative Tarjan (explicit stack) so deep chains cannot overflow.
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();

        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            // (node, next child position)
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;

            while let Some(&mut (v, ref mut child)) = call.last_mut() {
                if *child < adj[v].len() {
                    let w = adj[v][*child];
                    *child += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if comp.len() >= 2 {
                            sccs.push(comp);
                        }
                    }
                }
            }
        }

        let name = |id: usize| st.class_names[id].clone();
        let mut reports: Vec<CycleReport> = sccs
            .into_iter()
            .map(|mut comp| {
                comp.sort();
                let members: HashSet<usize> = comp.iter().copied().collect();
                let mut classes: Vec<String> = comp.iter().map(|&c| name(c)).collect();
                classes.sort();
                let mut edges: Vec<EdgeSnapshot> = st
                    .edges
                    .iter()
                    .filter(|(&(a, b), _)| {
                        members.contains(&(a as usize)) && members.contains(&(b as usize))
                    })
                    .map(|(&(a, b), info)| EdgeSnapshot {
                        from: name(a as usize),
                        to: name(b as usize),
                        held_site: info.held_site.clone(),
                        acquire_site: info.acquire_site.clone(),
                        count: info.count,
                    })
                    .collect();
                edges.sort_by(|x, y| (&x.from, &x.to).cmp(&(&y.from, &y.to)));
                CycleReport { classes, edges }
            })
            .collect();
        reports.sort_by(|a, b| a.classes.cmp(&b.classes));
        reports
    }
}

/// Mutex wrapper that reports acquisitions to a [`LockRegistry`].
pub struct TrackedMutex<T: ?Sized> {
    registry: Arc<LockRegistry>,
    class: u32,
    id: u64,
    inner: pl::Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// New mutex of `class`, reporting to the global registry.
    pub fn new(class: &str, value: T) -> Self {
        Self::new_in(LockRegistry::global(), class, value)
    }

    /// New mutex of `class`, reporting to `registry`.
    pub fn new_in(registry: &Arc<LockRegistry>, class: &str, value: T) -> Self {
        TrackedMutex {
            registry: Arc::clone(registry),
            class: registry.intern(class),
            id: fresh_lock_id(),
            inner: pl::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedMutex<T> {
    #[track_caller]
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        let site = Site::Loc(Location::caller());
        self.registry
            .note_acquire_edges(self.class, self.id, Mode::Exclusive, site);
        let inner = self.inner.lock();
        self.registry
            .push_held(self.class, self.id, Mode::Exclusive, site);
        TrackedMutexGuard { inner, lock: self }
    }

    /// Non-blocking acquire. No ordering edge is recorded (a `try_lock`
    /// cannot complete a wait cycle), but a successful guard does join the
    /// held stack so later blocking acquisitions order against it.
    #[track_caller]
    pub fn try_lock(&self) -> Option<TrackedMutexGuard<'_, T>> {
        let site = Site::Loc(Location::caller());
        let inner = self.inner.try_lock()?;
        self.registry
            .push_held(self.class, self.id, Mode::Exclusive, site);
        Some(TrackedMutexGuard { inner, lock: self })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedMutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`TrackedMutex::lock`].
pub struct TrackedMutexGuard<'a, T: ?Sized> {
    inner: pl::MutexGuard<'a, T>,
    lock: &'a TrackedMutex<T>,
}

impl<'a, T: ?Sized> TrackedMutexGuard<'a, T> {
    /// Access the underlying `parking_lot` guard, e.g. for
    /// `Condvar::wait(&mut guard.inner_mut())`. The held-stack entry stays
    /// in place across a wait; the thread is blocked for the duration, so
    /// no spurious edges can be recorded from it.
    pub fn inner_mut(&mut self) -> &mut pl::MutexGuard<'a, T> {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.registry.pop_held(self.lock.id);
    }
}

impl<T: ?Sized> Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader-writer lock wrapper that reports acquisitions to a
/// [`LockRegistry`]. Shared and exclusive acquisitions record the same
/// class-level ordering edges: a read-side cycle can still deadlock once a
/// writer queues between the readers, so the analysis stays conservative.
pub struct TrackedRwLock<T: ?Sized> {
    registry: Arc<LockRegistry>,
    class: u32,
    id: u64,
    inner: pl::RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    pub fn new(class: &str, value: T) -> Self {
        Self::new_in(LockRegistry::global(), class, value)
    }

    pub fn new_in(registry: &Arc<LockRegistry>, class: &str, value: T) -> Self {
        TrackedRwLock {
            registry: Arc::clone(registry),
            class: registry.intern(class),
            id: fresh_lock_id(),
            inner: pl::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> TrackedRwLock<T> {
    #[track_caller]
    pub fn read(&self) -> TrackedReadGuard<'_, T> {
        let site = Site::Loc(Location::caller());
        self.registry
            .note_acquire_edges(self.class, self.id, Mode::Shared, site);
        let inner = self.inner.read();
        self.registry
            .push_held(self.class, self.id, Mode::Shared, site);
        TrackedReadGuard { inner, lock: self }
    }

    #[track_caller]
    pub fn write(&self) -> TrackedWriteGuard<'_, T> {
        let site = Site::Loc(Location::caller());
        self.registry
            .note_acquire_edges(self.class, self.id, Mode::Exclusive, site);
        let inner = self.inner.write();
        self.registry
            .push_held(self.class, self.id, Mode::Exclusive, site);
        TrackedWriteGuard { inner, lock: self }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedRwLock").finish_non_exhaustive()
    }
}

/// RAII guard for [`TrackedRwLock::read`].
pub struct TrackedReadGuard<'a, T: ?Sized> {
    inner: pl::RwLockReadGuard<'a, T>,
    lock: &'a TrackedRwLock<T>,
}

impl<T: ?Sized> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.registry.pop_held(self.lock.id);
    }
}

impl<T: ?Sized> Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard for [`TrackedRwLock::write`].
pub struct TrackedWriteGuard<'a, T: ?Sized> {
    inner: pl::RwLockWriteGuard<'a, T>,
    lock: &'a TrackedRwLock<T>,
}

impl<T: ?Sized> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.registry.pop_held(self.lock.id);
    }
}

impl<T: ?Sized> Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_nesting_records_edge_but_no_cycle() {
        let reg = LockRegistry::new();
        let a = TrackedMutex::new_in(&reg, "test.a", 0u32);
        let b = TrackedMutex::new_in(&reg, "test.b", 0u32);
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.edges.len(), 1);
        assert_eq!(snap.edges[0].from, "test.a");
        assert_eq!(snap.edges[0].to, "test.b");
        assert!(snap.edges[0].held_site.contains("lockreg.rs"));
        assert!(reg.cycles().is_empty());
    }

    #[test]
    fn abba_is_flagged_even_without_interleaving() {
        let reg = LockRegistry::new();
        let a = Arc::new(TrackedMutex::new_in(&reg, "test.a", ()));
        let b = Arc::new(TrackedMutex::new_in(&reg, "test.b", ()));
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        // Opposite order on a second thread, strictly after the first pair
        // was released — no real interleaving ever happens.
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let r2 = Arc::clone(&reg);
        std::thread::spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock();
            drop(r2);
        })
        .join()
        .expect("abba thread");
        let cycles = reg.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].classes, vec!["test.a", "test.b"]);
        assert_eq!(cycles[0].edges.len(), 2);
    }

    #[test]
    fn same_class_nesting_reported_separately() {
        let reg = LockRegistry::new();
        let a = TrackedMutex::new_in(&reg, "test.peer", ());
        let b = TrackedMutex::new_in(&reg, "test.peer", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let snap = reg.snapshot();
        assert!(snap.edges.is_empty());
        assert_eq!(snap.same_class.len(), 1);
        assert_eq!(snap.same_class[0].class, "test.peer");
        assert!(reg.cycles().is_empty());
    }

    #[test]
    fn rwlock_read_then_mutex_orders() {
        let reg = LockRegistry::new();
        let r = TrackedRwLock::new_in(&reg, "test.rw", 1u8);
        let m = TrackedMutex::new_in(&reg, "test.m", 2u8);
        {
            let _gr = r.read();
            let _gm = m.lock();
        }
        {
            let _gm = m.lock();
            let _gr = r.write();
        }
        let cycles = reg.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].classes, vec!["test.m", "test.rw"]);
    }

    #[test]
    fn replay_api_matches_real_locks_and_detects_imbalance() {
        let reg = LockRegistry::new();
        reg.replay_acquire("r.a", 1, "sched:1");
        reg.replay_acquire("r.b", 1, "sched:2");
        reg.replay_release("r.b", 1);
        reg.replay_release("r.a", 1);
        reg.replay_acquire("r.b", 1, "sched:3");
        reg.replay_acquire("r.a", 1, "sched:4");
        reg.replay_release("r.a", 1);
        reg.replay_release("r.b", 1);
        reg.replay_release("r.b", 7); // never acquired
        let cycles = reg.cycles();
        assert_eq!(cycles.len(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.imbalances.len(), 1);
        assert!(snap.imbalances[0].detail.contains("no matching acquire"));
    }

    #[test]
    fn reset_clears_edges_despite_thread_cache() {
        let reg = LockRegistry::new();
        let a = TrackedMutex::new_in(&reg, "test.a", ());
        let b = TrackedMutex::new_in(&reg, "test.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        reg.reset();
        assert!(reg.snapshot().edges.is_empty());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        // The epoch bump makes the same thread re-record after reset.
        assert_eq!(reg.snapshot().edges.len(), 1);
    }

    #[test]
    fn try_lock_joins_held_stack_without_edge() {
        let reg = LockRegistry::new();
        let a = TrackedMutex::new_in(&reg, "test.a", ());
        let b = TrackedMutex::new_in(&reg, "test.b", ());
        {
            let _ga = a.lock();
            let _gb = b.try_lock().expect("uncontended");
        }
        // a -> b edge comes only from the blocking lock() path; try_lock(b)
        // itself records nothing, so only lock-after-try produces edges.
        let snap = reg.snapshot();
        assert!(snap.edges.is_empty());
        {
            let _gb = b.try_lock().expect("uncontended");
            let _ga = a.lock();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.edges.len(), 1);
        assert_eq!(snap.edges[0].from, "test.b");
        assert_eq!(snap.edges[0].to, "test.a");
    }
}
