//! Measurement primitives used by every benchmark harness.
//!
//! * [`Histogram`] — log-bucketed latency histogram with percentile queries
//!   (HdrHistogram-style, 1 µs to ~1.2 hours range).
//! * [`LatencyRecorder`] — thread-safe histogram handle shared between
//!   workload driver threads.
//! * [`Counter`] — atomic event counter.
//! * [`TimeSeries`] — (instant, value) recorder for timeline figures (Fig. 7).

use crate::time::{SimDuration, SimInstant};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const BUCKETS_PER_OCTAVE: usize = 16;
const OCTAVES: usize = 32; // 1us .. 2^32 us (~71.6 min)
const NUM_BUCKETS: usize = BUCKETS_PER_OCTAVE * OCTAVES;

/// Log-bucketed histogram over `SimDuration`s.
///
/// Relative error is bounded by one bucket width (~6% per sample), which is
/// far below the run-to-run variance of the systems being modeled.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u128,
    max_us: u64,
    min_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
            min_us: u64::MAX,
        }
    }

    fn bucket_index(us: u64) -> usize {
        if us < 1 {
            return 0;
        }
        let octave = 63 - us.leading_zeros() as usize; // floor(log2(us))
        let base = 1u64 << octave;
        // Position within the octave, split into BUCKETS_PER_OCTAVE slots.
        let frac = ((us - base) as u128 * BUCKETS_PER_OCTAVE as u128 / base as u128) as usize;
        (octave * BUCKETS_PER_OCTAVE + frac).min(NUM_BUCKETS - 1)
    }

    fn bucket_value(idx: usize) -> u64 {
        let octave = idx / BUCKETS_PER_OCTAVE;
        let frac = idx % BUCKETS_PER_OCTAVE;
        let base = 1u64 << octave;
        // Midpoint of the bucket.
        base + (base as u128 * (2 * frac as u128 + 1) / (2 * BUCKETS_PER_OCTAVE as u128)) as u64
    }

    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros();
        self.buckets[Self::bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us += us as u128;
        self.max_us = self.max_us.max(us);
        self.min_us = self.min_us.min(us);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros((self.sum_us / self.count as u128) as u64)
    }

    pub fn max(&self) -> SimDuration {
        SimDuration::from_micros(self.max_us)
    }

    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(self.min_us)
        }
    }

    /// Quantile in `[0, 1]`; returns the midpoint of the containing bucket.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return SimDuration::from_micros(Self::bucket_value(i).min(self.max_us));
            }
        }
        self.max()
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
        self.min_us = self.min_us.min(other.min_us);
    }

    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean_ms: self.mean().as_millis_f64(),
            p50_ms: self.quantile(0.50).as_millis_f64(),
            p95_ms: self.quantile(0.95).as_millis_f64(),
            p99_ms: self.quantile(0.99).as_millis_f64(),
            min_ms: self.min().as_millis_f64(),
            max_ms: self.max().as_millis_f64(),
        }
    }
}

/// Scalar summary of a histogram, serializable for experiment reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: u64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub min_ms: f64,
    pub max_ms: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.2}ms p50={:.2}ms p95={:.2}ms p99={:.2}ms max={:.2}ms",
            self.count, self.mean_ms, self.p50_ms, self.p95_ms, self.p99_ms, self.max_ms
        )
    }
}

/// Thread-safe histogram shared across workload driver threads.
#[derive(Clone, Default)]
pub struct LatencyRecorder {
    inner: Arc<Mutex<Histogram>>,
}

impl LatencyRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&self, d: SimDuration) {
        self.inner.lock().record(d);
    }

    pub fn snapshot(&self) -> Histogram {
        self.inner.lock().clone()
    }

    pub fn summary(&self) -> Summary {
        self.inner.lock().summary()
    }

    pub fn reset(&self) {
        *self.inner.lock() = Histogram::new();
    }
}

/// Atomic event counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A labeled point series on the modeled-time axis, e.g. "put latency over
/// time" for the Fig. 7 timeline. Thread-safe; points need not be appended
/// in time order (they are sorted on export).
#[derive(Clone, Default)]
pub struct TimeSeries {
    points: Arc<Mutex<Vec<(SimInstant, f64)>>>,
}

impl TimeSeries {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&self, at: SimInstant, value: f64) {
        self.points.lock().push((at, value));
    }

    pub fn len(&self) -> usize {
        self.points.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.lock().is_empty()
    }

    /// Sorted copy of the points.
    pub fn sorted(&self) -> Vec<(SimInstant, f64)> {
        let mut v = self.points.lock().clone();
        v.sort_by_key(|(t, _)| *t);
        v
    }

    /// Mean of values with `t` in `[from, to)`.
    pub fn mean_in(&self, from: SimInstant, to: SimInstant) -> Option<f64> {
        let pts = self.points.lock();
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in pts.iter() {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
    }

    #[test]
    fn single_value_summary() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_millis(10));
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), SimDuration::from_millis(10));
        assert_eq!(h.max(), SimDuration::from_millis(10));
        let p50 = h.quantile(0.5).as_millis_f64();
        assert!(
            (p50 - 10.0).abs() / 10.0 < 0.07,
            "p50 {p50} within bucket error"
        );
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i * 37));
        }
        let qs: Vec<_> = [0.1, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {:?}", qs);
        }
    }

    #[test]
    fn quantile_accuracy_bounded() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let p50 = h.quantile(0.5).as_micros() as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.07, "p50 {p50}");
        let p99 = h.quantile(0.99).as_micros() as f64;
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.07, "p99 {p99}");
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimDuration::from_millis(100));
        assert_eq!(a.min(), SimDuration::from_millis(1));
    }

    #[test]
    fn recorder_is_shared_across_clones() {
        let r = LatencyRecorder::new();
        let r2 = r.clone();
        r.record(SimDuration::from_millis(5));
        r2.record(SimDuration::from_millis(7));
        assert_eq!(r.snapshot().count(), 2);
        r.reset();
        assert_eq!(r2.snapshot().count(), 0);
    }

    #[test]
    fn recorder_concurrent_records() {
        let r = LatencyRecorder::new();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for j in 0..1000 {
                        r.record(SimDuration::from_micros(i * 1000 + j));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.snapshot().count(), 8000);
    }

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.inc(), 1);
        assert_eq!(c.add(4), 5);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn timeseries_sorted_and_window_mean() {
        let ts = TimeSeries::new();
        let t = SimInstant::EPOCH;
        ts.push(t + SimDuration::from_secs(2), 20.0);
        ts.push(t + SimDuration::from_secs(1), 10.0);
        ts.push(t + SimDuration::from_secs(3), 30.0);
        let s = ts.sorted();
        assert_eq!(s.len(), 3);
        assert!(s.windows(2).all(|w| w[0].0 <= w[1].0));
        let m = ts
            .mean_in(t + SimDuration::from_secs(1), t + SimDuration::from_secs(3))
            .unwrap();
        assert_eq!(m, 15.0);
        assert!(ts
            .mean_in(
                t + SimDuration::from_secs(10),
                t + SimDuration::from_secs(20)
            )
            .is_none());
    }

    #[test]
    fn bucket_roundtrip_error_bounded() {
        for us in [1u64, 3, 17, 999, 12_345, 1_000_000, 123_456_789] {
            let idx = Histogram::bucket_index(us);
            let mid = Histogram::bucket_value(idx);
            let err = (mid as f64 - us as f64).abs() / us as f64;
            assert!(err < 0.07, "us={us} mid={mid} err={err}");
        }
    }
}
