//! Modeled-time primitives.
//!
//! All latencies reported by the reproduction are *modeled* durations: the
//! network fabric and storage-tier models return `SimDuration`s which are
//! accumulated along each request's critical path. Keeping modeled time as a
//! distinct type (microsecond-resolution `u64`s) prevents it from being
//! accidentally mixed with `std::time` wall-clock values.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of modeled time with microsecond resolution.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }
    /// Build from fractional milliseconds (e.g. a sampled latency).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000.0).round() as u64)
    }
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1_000_000.0).round() as u64)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Convert to a wall-clock duration under a time-compression factor.
    /// `scale == 50.0` means modeled time passes 50x faster than wall time.
    pub fn to_wall(self, scale: f64) -> std::time::Duration {
        std::time::Duration::from_secs_f64(self.as_secs_f64() / scale.max(1e-9))
    }

    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: Self) -> Self {
        SimDuration(self.0 + rhs.0)
    }
}
impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}
impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: Self) -> Self {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}
impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}
impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> Self {
        SimDuration(self.0 * rhs)
    }
}
impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> Self {
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}
impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> Self {
        SimDuration(self.0 / rhs.max(1))
    }
}
impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 60_000_000 {
            write!(f, "{:.1}min", us as f64 / 60_000_000.0)
        } else if us >= 1_000_000 {
            write!(f, "{:.2}s", us as f64 / 1_000_000.0)
        } else if us >= 1_000 {
            write!(f, "{:.2}ms", us as f64 / 1_000.0)
        } else {
            write!(f, "{us}us")
        }
    }
}

/// A point on the modeled-time axis (microseconds since experiment start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

impl SimInstant {
    pub const EPOCH: SimInstant = SimInstant(0);

    pub const fn from_micros(us: u64) -> Self {
        SimInstant(us)
    }
    pub const fn as_micros(self) -> u64 {
        self.0
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    pub fn elapsed_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
    pub fn checked_sub_instant(self, earlier: SimInstant) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_micros())
    }
}
impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_micros();
    }
}
impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_sub(rhs.as_micros()))
    }
}
impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!((a + b).as_micros(), 14_000);
        assert_eq!((a - b).as_micros(), 6_000);
        assert_eq!((b - a), SimDuration::ZERO, "sub saturates");
        assert_eq!((a * 3).as_micros(), 30_000);
        assert_eq!((a / 2).as_micros(), 5_000);
        assert_eq!((a * 1.5).as_micros(), 15_000);
    }

    #[test]
    fn duration_from_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_millis_f64(0.5).as_micros(), 500);
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_micros(), 1_500_000);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_secs(2);
        assert_eq!(t1.elapsed_since(t0), SimDuration::from_secs(2));
        assert_eq!(t1 - t0, SimDuration::from_secs(2));
        assert_eq!(t0 - t1, SimDuration::ZERO, "instant sub saturates");
        assert_eq!(
            t1 - SimDuration::from_secs(1),
            t0 + SimDuration::from_secs(1)
        );
    }

    #[test]
    fn wall_conversion_applies_scale() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.to_wall(10.0), std::time::Duration::from_secs(1));
        assert_eq!(d.to_wall(1.0), std::time::Duration::from_secs(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.00ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.00s");
        assert_eq!(SimDuration::from_mins(2).to_string(), "2.0min");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
