//! Clock abstraction over the modeled-time axis.
//!
//! Every component that needs "now" or "sleep" — policy timers, monitor
//! threads, heartbeats, workload drivers — takes a [`SharedClock`] so the same
//! code runs against:
//!
//! * [`ScaledClock`]: modeled time derived from wall time compressed by a
//!   constant factor. Real threads and real sleeps, so lock contention and
//!   queueing behave like the live system, but a 10-minute experiment
//!   finishes in seconds.
//! * [`ManualClock`]: time only moves when a test calls
//!   [`ManualClock::advance`]; `sleep` blocks until the clock reaches the
//!   deadline. Fully deterministic for unit tests.

use crate::time::{SimDuration, SimInstant};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Source of modeled time. See the module docs for the two implementations.
pub trait Clock: Send + Sync {
    /// Current point on the modeled-time axis.
    fn now(&self) -> SimInstant;
    /// Block the calling thread until `d` of modeled time has passed.
    fn sleep(&self, d: SimDuration);
    /// The time-compression factor (modeled seconds per wall second).
    fn scale(&self) -> f64 {
        1.0
    }
}

/// A reference-counted clock handle, cloned into every component.
pub type SharedClock = Arc<dyn Clock>;

/// Wall-clock-backed clock with time compression.
pub struct ScaledClock {
    origin: std::time::Instant,
    scale: f64,
}

impl ScaledClock {
    /// `scale` = how many modeled seconds pass per wall-clock second.
    /// A scale of 100 runs the Fig. 7 experiment (several modeled minutes)
    /// in a couple of wall seconds.
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0, "time scale must be positive");
        ScaledClock {
            origin: std::time::Instant::now(),
            scale,
        }
    }

    /// Real-time clock (scale 1.0).
    pub fn realtime() -> Self {
        Self::new(1.0)
    }

    pub fn shared(scale: f64) -> SharedClock {
        Arc::new(Self::new(scale))
    }
}

impl Clock for ScaledClock {
    fn now(&self) -> SimInstant {
        SimInstant::from_micros((self.origin.elapsed().as_secs_f64() * self.scale * 1e6) as u64)
    }

    fn sleep(&self, d: SimDuration) {
        if !d.is_zero() {
            std::thread::sleep(d.to_wall(self.scale));
        }
    }

    fn scale(&self) -> f64 {
        self.scale
    }
}

/// A clock that never advances: `now()` is constant and `sleep` returns
/// (almost) immediately.
///
/// Used by closed-loop throughput benchmarks where each worker accounts
/// modeled time itself from the latencies the stack returns: token-bucket
/// throttles (disk IOPS caps, NIC caps) then build their backlog purely in
/// modeled time, so aggregate throughput converges to the modeled cap
/// regardless of wall-clock scheduling. `sleep` yields a tiny wall pause so
/// background threads (flushers, monitors) don't busy-spin.
pub struct FrozenClock {
    at: SimInstant,
}

impl FrozenClock {
    pub fn shared() -> SharedClock {
        Arc::new(FrozenClock {
            at: SimInstant::EPOCH,
        })
    }

    pub fn shared_at(at: SimInstant) -> SharedClock {
        Arc::new(FrozenClock { at })
    }
}

impl Clock for FrozenClock {
    fn now(&self) -> SimInstant {
        self.at
    }

    fn sleep(&self, d: SimDuration) {
        if !d.is_zero() {
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
    }
}

/// Deterministic clock for tests: time moves only via [`ManualClock::advance`].
pub struct ManualClock {
    state: Mutex<u64>,
    cond: Condvar,
}

impl ManualClock {
    pub fn new() -> Arc<Self> {
        Arc::new(ManualClock {
            state: Mutex::new(0),
            cond: Condvar::new(),
        })
    }

    /// Move time forward, waking any sleeper whose deadline has been reached.
    pub fn advance(&self, d: SimDuration) {
        let mut t = self.state.lock();
        *t += d.as_micros();
        self.cond.notify_all();
    }

    /// Set the absolute modeled time (must not move backwards).
    pub fn set(&self, at: SimInstant) {
        let mut t = self.state.lock();
        assert!(at.as_micros() >= *t, "manual clock cannot move backwards");
        *t = at.as_micros();
        self.cond.notify_all();
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimInstant {
        SimInstant::from_micros(*self.state.lock())
    }

    fn sleep(&self, d: SimDuration) {
        let deadline = {
            let t = self.state.lock();
            *t + d.as_micros()
        };
        let mut t = self.state.lock();
        while *t < deadline {
            self.cond.wait(&mut t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn scaled_clock_advances() {
        let c = ScaledClock::new(1000.0);
        let t0 = c.now();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let t1 = c.now();
        assert!(t1 > t0);
        // 5ms wall at 1000x is ~5 modeled seconds.
        let elapsed = t1.elapsed_since(t0);
        assert!(elapsed >= SimDuration::from_secs(4), "elapsed {elapsed}");
    }

    #[test]
    fn scaled_clock_sleep_compresses() {
        let c = ScaledClock::new(1000.0);
        let w0 = std::time::Instant::now();
        c.sleep(SimDuration::from_secs(1)); // 1ms wall
        assert!(w0.elapsed() < std::time::Duration::from_millis(200));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = ScaledClock::new(0.0);
    }

    #[test]
    fn manual_clock_now_and_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimInstant::EPOCH);
        c.advance(SimDuration::from_secs(3));
        assert_eq!(c.now(), SimInstant::EPOCH + SimDuration::from_secs(3));
    }

    #[test]
    fn manual_clock_sleep_blocks_until_advanced() {
        let c = ManualClock::new();
        let woke = Arc::new(AtomicBool::new(false));
        let (c2, woke2) = (c.clone(), woke.clone());
        let h = std::thread::spawn(move || {
            c2.sleep(SimDuration::from_secs(10));
            woke2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !woke.load(Ordering::SeqCst),
            "sleeper must not wake before time advances"
        );
        c.advance(SimDuration::from_secs(10));
        h.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_backwards() {
        let c = ManualClock::new();
        c.advance(SimDuration::from_secs(5));
        c.set(SimInstant::from_micros(1));
    }

    #[test]
    fn zero_sleep_returns_immediately() {
        let c = ManualClock::new();
        c.sleep(SimDuration::ZERO); // must not deadlock
        let s = ScaledClock::new(10.0);
        s.sleep(SimDuration::ZERO);
    }
}

#[cfg(test)]
mod frozen_tests {
    use super::*;

    #[test]
    fn frozen_clock_never_advances_but_sleep_returns() {
        let c = FrozenClock::shared();
        let t0 = c.now();
        c.sleep(SimDuration::from_hours(5));
        assert_eq!(c.now(), t0);
        let c2 = FrozenClock::shared_at(SimInstant::from_micros(99));
        assert_eq!(c2.now(), SimInstant::from_micros(99));
    }
}
