//! Golden-file tests for the checker's scenario reports.
//!
//! Every scenario in [`wiera_check::all_scenarios`] is run and its findings
//! — one [`compact`] line per diagnostic, message only (acquisition sites
//! live in notes precisely so these files don't churn when unrelated code
//! moves) — are compared byte-for-byte against
//! `tests/golden/<scenario>.expected`. Corpus scenarios therefore pin the
//! acceptance criterion *zero findings on the canned corpus*: their
//! expected files are empty. Regenerate after an intentional change with:
//!
//! ```text
//! WIERA_BLESS=1 cargo test -p wiera-check --test golden_checks
//! ```
//!
//! [`compact`]: wiera_policy::diag::Diagnostic::compact

use std::path::{Path, PathBuf};
use wiera_check::scenarios::{all_scenarios, run_scenario, ScenarioKind};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

#[test]
fn scenario_reports_match_golden() {
    let bless = std::env::var_os("WIERA_BLESS").is_some();
    if bless {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
    }
    let mut mismatches = Vec::new();
    for scenario in all_scenarios() {
        let report = run_scenario(scenario.name).expect("scenario resolves");
        let mut got = String::new();
        for d in &report.diags {
            got.push_str(&d.compact());
            got.push('\n');
        }
        if scenario.kind == ScenarioKind::Adversarial {
            assert!(
                report.detected_all(scenario.expect),
                "{}: planted bug not detected: {:?}",
                scenario.name,
                report.diags
            );
        }
        let expected_path = golden_dir().join(format!("{}.expected", scenario.name));
        if bless {
            std::fs::write(&expected_path, &got).expect("write expected");
            continue;
        }
        let want = std::fs::read_to_string(&expected_path).unwrap_or_default();
        if got != want {
            mismatches.push(format!(
                "== {} ==\n--- expected ---\n{want}--- got ---\n{got}",
                scenario.name
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "scenario reports diverged (run with WIERA_BLESS=1 to regenerate):\n{}",
        mismatches.join("\n")
    );
}

/// The acceptance bar, stated directly: every corpus scenario is clean at
/// every severity, independent of what the golden files say.
#[test]
fn corpus_scenarios_are_clean() {
    for scenario in all_scenarios()
        .iter()
        .filter(|s| s.kind == ScenarioKind::Corpus)
    {
        let report = run_scenario(scenario.name).expect("scenario resolves");
        assert!(
            report.diags.is_empty(),
            "{}: expected a clean run, got: {:#?}",
            scenario.name,
            report.diags.iter().map(|d| d.compact()).collect::<Vec<_>>()
        );
    }
}
