//! End-to-end soundness gate: run real corpus scenarios and verify every
//! runtime lock-order edge and history op kind stays inside the statically
//! extracted model. If this fails, the static extraction has a hole and
//! `wiera-model`'s clean verdicts are vacuous for the uncovered behavior.
//!
//! The scenarios mutate process-global tracer/lockreg state, so everything
//! runs in one test (Rust test threads would interleave the globals).

use std::path::Path;
use wiera_check::history::extract_history;
use wiera_check::scenarios::{all_scenarios, run_scenario, ScenarioKind};
use wiera_check::{soundness, workspace_model};
use wiera_sim::lockreg::LockRegistry;
use wiera_sim::Tracer;

#[test]
fn corpus_scenarios_stay_inside_the_extracted_model() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (model, pm) = workspace_model(here).expect("workspace model builds");
    assert!(
        !pm.transitions.is_empty(),
        "protocol extraction found no transitions"
    );

    let corpus: Vec<&'static str> = all_scenarios()
        .iter()
        .filter(|s| s.kind == ScenarioKind::Corpus)
        .map(|s| s.name)
        .collect();
    assert!(!corpus.is_empty());

    let mut total_ops = 0usize;
    let mut total_edges = 0usize;
    for name in corpus {
        // Each scenario resets the globals on entry, so after it returns
        // they hold exactly that scenario's observations.
        run_scenario(name).expect("known scenario");
        let snapshot = LockRegistry::global().snapshot();
        let (history, _) = extract_history(&Tracer::global().events());
        let report = soundness(&model, &pm, &snapshot, &history);
        assert!(report.sound(), "scenario {name}: {}", report.render());
        total_ops += report.history_ops;
        total_edges += report.runtime_lock_edges;
    }
    // The gate must actually have compared something — an accidentally
    // empty runtime universe would make soundness trivially true.
    assert!(total_ops > 0, "no history ops observed across the corpus");
    assert!(total_edges > 0, "no lock edges observed across the corpus");
}
