//! Consistency-history oracle.
//!
//! Replicas record every client-visible operation as a span on the modeled
//! time axis (subsystem `history`, op `put` / `get` / `replicate_apply`,
//! plus `mput` / `mget` — one span per item of a batched operation,
//! detail `key=K ver=N val=<fnv64 hex>`). This module re-extracts those
//! spans from a [`Tracer`] export and checks them against the policy's
//! deduced [`ConsistencyModel`]:
//!
//! * `MultiPrimaries` and `PrimaryBackup { sync: true }` promise
//!   linearizability, which for a versioned register reduces to interval
//!   conditions in the style of Wing & Gong: the version order must embed
//!   the real-time order of writes, no read may return a version older than
//!   the newest write that *completed* before the read began (stale read),
//!   no read may begin returning a value before its write started (future
//!   read), reads must return the bytes their version was written with, and
//!   each node's reads must be monotone in version.
//! * `Eventual` (and async primary-backup) promises only read-your-writes
//!   per node plus convergence: once the history quiesces, every replica
//!   that stored or applied the key must agree on the final
//!   `(version, digest)`.
//!
//! Anything the oracle cannot check — an empty history, a read of a version
//! no recorded write produced, an unparseable record — is surfaced as a
//! WC013 note rather than silently skipped.

use std::collections::BTreeMap;
use wiera_policy::diag::{Code, Diagnostic};
use wiera_policy::ConsistencyModel;
use wiera_sim::TraceEvent;

/// What kind of history record a span is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistoryKind {
    /// A client-visible write: span runs arrival → ack.
    Put,
    /// A client-visible read: span runs arrival → response.
    Get,
    /// A replicated update applied at a backup (not client-visible).
    ReplicateApply,
}

/// One operation on the modeled-time axis.
#[derive(Clone, Debug)]
pub struct HistoryEvent {
    pub kind: HistoryKind,
    pub key: String,
    pub version: u64,
    /// FNV-1a digest of the value bytes — equality proxy for the payload.
    pub digest: u64,
    pub node: String,
    pub start_us: u64,
    pub end_us: u64,
    /// The replica served this read from possibly-stale local state under
    /// overload, with the client's explicit consent (`degraded=1` in the
    /// record). Such reads opt out of freshness: the oracle exempts them
    /// from read-your-writes, and only them — an *unmarked* stale read is
    /// still a finding.
    pub degraded: bool,
}

/// Pull history records out of a raw trace. Records that fail to parse
/// become WC013 notes; all other subsystems are ignored.
pub fn extract_history(events: &[TraceEvent]) -> (Vec<HistoryEvent>, Vec<Diagnostic>) {
    let mut out = Vec::new();
    let mut diags = Vec::new();
    for e in events.iter().filter(|e| e.subsystem == "history") {
        let kind = match e.op.as_str() {
            // Batched operations ("mput"/"mget") record one span per item in
            // the same detail format; to the oracle each item is an ordinary
            // write or read whose interval happens to cover the whole batch.
            "put" | "mput" => HistoryKind::Put,
            "get" | "mget" => HistoryKind::Get,
            "replicate_apply" => HistoryKind::ReplicateApply,
            _ => continue,
        };
        match parse_detail(e) {
            Some((key, version, digest, degraded)) => out.push(HistoryEvent {
                kind,
                key,
                version,
                digest,
                node: e.node.clone().unwrap_or_else(|| "?".into()),
                start_us: e.t_us,
                end_us: e.t_us + e.dur_us.unwrap_or(0),
                degraded,
            }),
            None => diags.push(Diagnostic::note(
                Code::Wc013,
                format!(
                    "unparseable history record (op '{}', detail {:?})",
                    e.op, e.detail
                ),
            )),
        }
    }
    out.sort_by_key(|h| (h.start_us, h.end_us, h.version));
    (out, diags)
}

fn parse_detail(e: &TraceEvent) -> Option<(String, u64, u64, bool)> {
    let detail = e.detail.as_deref()?;
    let mut key = None;
    let mut ver = None;
    let mut val = None;
    let mut degraded = false;
    for part in detail.split_whitespace() {
        if let Some(k) = part.strip_prefix("key=") {
            key = Some(k.to_string());
        } else if let Some(v) = part.strip_prefix("ver=") {
            ver = v.parse::<u64>().ok();
        } else if let Some(d) = part.strip_prefix("val=") {
            val = u64::from_str_radix(d, 16).ok();
        } else if part == "degraded=1" {
            degraded = true;
        }
    }
    Some((key?, ver?, val?, degraded))
}

/// One logical write: duplicate records of the same `(key, version)` —
/// a forwarded put is recorded at both the forwarding backup and the
/// primary — are merged to their outermost interval.
struct Write {
    version: u64,
    digest: u64,
    start_us: u64,
    end_us: u64,
    nodes: Vec<String>,
    /// Two different values recorded under one version (only legal for
    /// concurrent eventual writers): digest comparisons are skipped.
    ambiguous: bool,
}

/// Check a history against the deduced model. `None` (the policy's insert
/// rule matches no known protocol shape) yields a WC013 note.
pub fn check_history(history: &[HistoryEvent], model: Option<ConsistencyModel>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if history.is_empty() {
        diags.push(Diagnostic::note(
            Code::Wc013,
            "no history events recorded; nothing to check",
        ));
        return diags;
    }
    let Some(model) = model else {
        diags.push(Diagnostic::note(
            Code::Wc013,
            "consistency model could not be deduced from the policy; history unchecked",
        ));
        return diags;
    };

    let mut by_key: BTreeMap<&str, Vec<&HistoryEvent>> = BTreeMap::new();
    for h in history {
        by_key.entry(&h.key).or_default().push(h);
    }

    let strict = matches!(
        model,
        ConsistencyModel::MultiPrimaries | ConsistencyModel::PrimaryBackup { sync: true }
    );
    for (key, events) in &by_key {
        let writes = merge_writes(key, events, strict, &mut diags);
        match model {
            ConsistencyModel::MultiPrimaries | ConsistencyModel::PrimaryBackup { sync: true } => {
                check_linearizable(key, events, &writes, &mut diags);
            }
            ConsistencyModel::Eventual | ConsistencyModel::PrimaryBackup { sync: false } => {
                check_read_your_writes(key, events, &mut diags);
                check_convergence(key, events, &writes, &mut diags);
            }
        }
    }
    diags
}

fn merge_writes(
    key: &str,
    events: &[&HistoryEvent],
    strict: bool,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Write> {
    let mut merged: BTreeMap<u64, Write> = BTreeMap::new();
    for e in events.iter().filter(|e| e.kind == HistoryKind::Put) {
        let w = merged.entry(e.version).or_insert_with(|| Write {
            version: e.version,
            digest: e.digest,
            start_us: e.start_us,
            end_us: e.end_us,
            nodes: Vec::new(),
            ambiguous: false,
        });
        if w.digest != e.digest && !w.ambiguous {
            w.ambiguous = true;
            if strict {
                diags.push(Diagnostic::deny(
                    Code::Wc010,
                    format!(
                        "conflicting writes: key '{key}' version {} written with two different values",
                        e.version
                    ),
                ));
            } else {
                diags.push(Diagnostic::note(
                    Code::Wc013,
                    format!(
                        "key '{key}' version {} written concurrently with two values; \
                         digest comparisons skipped for it",
                        e.version
                    ),
                ));
            }
        }
        w.start_us = w.start_us.min(e.start_us);
        w.end_us = w.end_us.max(e.end_us);
        if !w.nodes.contains(&e.node) {
            w.nodes.push(e.node.clone());
        }
    }
    merged.into_values().collect()
}

/// Wing–Gong-style interval conditions for a linearizable versioned
/// register (writes totally ordered by version).
fn check_linearizable(
    key: &str,
    events: &[&HistoryEvent],
    writes: &[Write],
    diags: &mut Vec<Diagnostic>,
) {
    // Version order must embed real-time order: a write that finished
    // strictly before another began must carry the smaller version.
    for a in writes {
        for b in writes {
            if a.end_us < b.start_us && a.version > b.version {
                diags.push(Diagnostic::deny(
                    Code::Wc010,
                    format!(
                        "write order inversion: key '{key}' v{} completed at {}us \
                         before v{} began at {}us",
                        a.version, a.end_us, b.version, b.start_us
                    ),
                ));
            }
        }
    }

    for g in events.iter().filter(|e| e.kind == HistoryKind::Get) {
        let Some(w) = writes.iter().find(|w| w.version == g.version) else {
            diags.push(Diagnostic::note(
                Code::Wc013,
                format!(
                    "read of key '{key}' v{} has no recorded originating write; \
                     cannot check it",
                    g.version
                ),
            ));
            continue;
        };
        if !w.ambiguous && w.digest != g.digest {
            diags.push(Diagnostic::deny(
                Code::Wc010,
                format!(
                    "value corruption: read of key '{key}' v{} at node {} returned \
                     bytes that differ from the write",
                    g.version, g.node
                ),
            ));
        }
        if g.end_us < w.start_us {
            diags.push(Diagnostic::deny(
                Code::Wc010,
                format!(
                    "future read: key '{key}' v{} returned at node {} before its \
                     write began",
                    g.version, g.node
                ),
            ));
        }
        // Stale read: the newest write that completed before this read
        // began is globally visible under linearizability.
        if let Some(visible) = writes
            .iter()
            .filter(|w| w.end_us <= g.start_us)
            .max_by_key(|w| w.version)
        {
            if g.version < visible.version {
                diags.push(Diagnostic::deny(
                    Code::Wc010,
                    format!(
                        "stale read: get of key '{key}' at node {} returned v{} \
                         although v{} had completed before the read began",
                        g.node, g.version, visible.version
                    ),
                ));
            }
        }
    }

    // Per-node monotonic reads.
    let mut per_node: BTreeMap<&str, Vec<&&HistoryEvent>> = BTreeMap::new();
    for g in events.iter().filter(|e| e.kind == HistoryKind::Get) {
        per_node.entry(&g.node).or_default().push(g);
    }
    for (node, gets) in per_node {
        for pair in gets.windows(2) {
            if pair[1].version < pair[0].version {
                diags.push(Diagnostic::deny(
                    Code::Wc010,
                    format!(
                        "non-monotonic reads: node {node} read key '{key}' v{} \
                         then v{}",
                        pair[0].version, pair[1].version
                    ),
                ));
            }
        }
    }
}

/// A node that acknowledged its own write must see it (or newer) on every
/// later read it serves. Reads explicitly marked degraded (served from
/// possibly-stale local state under overload, with client consent) are
/// exempt — the marker is precisely the record of that consent.
fn check_read_your_writes(key: &str, events: &[&HistoryEvent], diags: &mut Vec<Diagnostic>) {
    for p in events.iter().filter(|e| e.kind == HistoryKind::Put) {
        for g in events
            .iter()
            .filter(|e| e.kind == HistoryKind::Get && e.node == p.node && !e.degraded)
        {
            if g.start_us >= p.end_us && g.version < p.version {
                diags.push(Diagnostic::warn(
                    Code::Wc011,
                    format!(
                        "read-your-writes violation: node {} wrote key '{key}' v{} \
                         but a later local read returned v{}",
                        p.node, p.version, g.version
                    ),
                ));
            }
        }
    }
}

/// After quiescence, every replica that stored or applied the key must
/// agree on the final `(version, digest)`.
fn check_convergence(
    key: &str,
    events: &[&HistoryEvent],
    writes: &[Write],
    diags: &mut Vec<Diagnostic>,
) {
    let Some(last) = writes.iter().max_by_key(|w| w.version) else {
        return;
    };
    // Final knowledge per node: the newest version it durably holds —
    // its own puts plus replicated applies (reads are point-in-time
    // evidence, not final state, so they don't count).
    let mut final_by_node: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for e in events
        .iter()
        .filter(|e| matches!(e.kind, HistoryKind::Put | HistoryKind::ReplicateApply))
    {
        let entry = final_by_node.entry(&e.node).or_insert((0, 0));
        if e.version > entry.0 {
            *entry = (e.version, e.digest);
        }
    }
    for (node, (version, digest)) in final_by_node {
        if version != last.version || (!last.ambiguous && digest != last.digest) {
            diags.push(Diagnostic::deny(
                Code::Wc012,
                format!(
                    "replicas diverged: node {node} settled on key '{key}' v{version} \
                     but the last write was v{}",
                    last.version
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        kind: HistoryKind,
        key: &str,
        version: u64,
        digest: u64,
        node: &str,
        span: (u64, u64),
    ) -> HistoryEvent {
        HistoryEvent {
            kind,
            key: key.into(),
            version,
            digest,
            node: node.into(),
            start_us: span.0,
            end_us: span.1,
            degraded: false,
        }
    }

    const PB_SYNC: Option<ConsistencyModel> = Some(ConsistencyModel::PrimaryBackup { sync: true });

    #[test]
    fn clean_linearizable_history_passes() {
        let h = vec![
            ev(HistoryKind::Put, "k", 1, 0xaa, "p", (0, 100)),
            ev(HistoryKind::Put, "k", 2, 0xbb, "p", (200, 300)),
            ev(HistoryKind::Get, "k", 2, 0xbb, "b", (400, 450)),
        ];
        assert!(check_history(&h, PB_SYNC).is_empty());
    }

    #[test]
    fn stale_read_is_flagged() {
        let h = vec![
            ev(HistoryKind::Put, "k", 1, 0xaa, "p", (0, 100)),
            ev(HistoryKind::Put, "k", 2, 0xbb, "p", (200, 300)),
            ev(HistoryKind::Get, "k", 1, 0xaa, "b", (400, 450)),
        ];
        let diags = check_history(&h, PB_SYNC);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Wc010 && d.message.contains("stale read")));
    }

    #[test]
    fn concurrent_read_may_return_either_version() {
        // The read overlaps the second write: both v1 and v2 are legal.
        let h = vec![
            ev(HistoryKind::Put, "k", 1, 0xaa, "p", (0, 100)),
            ev(HistoryKind::Put, "k", 2, 0xbb, "p", (200, 300)),
            ev(HistoryKind::Get, "k", 1, 0xaa, "b", (250, 290)),
        ];
        assert!(check_history(&h, PB_SYNC).is_empty());
    }

    #[test]
    fn write_order_inversion_is_flagged() {
        let h = vec![
            ev(HistoryKind::Put, "k", 2, 0xbb, "p", (0, 100)),
            ev(HistoryKind::Put, "k", 1, 0xaa, "q", (200, 300)),
        ];
        let diags = check_history(&h, Some(ConsistencyModel::MultiPrimaries));
        assert!(diags.iter().any(|d| d.message.contains("order inversion")));
    }

    #[test]
    fn forwarded_put_merges_to_outer_interval() {
        // Same (key, version, digest) recorded at the backup (outer span,
        // includes the forward) and the primary (inner span): one write.
        let h = vec![
            ev(HistoryKind::Put, "k", 1, 0xaa, "backup", (0, 400)),
            ev(HistoryKind::Put, "k", 1, 0xaa, "primary", (100, 250)),
            ev(HistoryKind::Get, "k", 1, 0xaa, "primary", (500, 550)),
        ];
        assert!(check_history(&h, PB_SYNC).is_empty());
    }

    #[test]
    fn eventual_divergence_is_flagged() {
        let h = vec![
            ev(HistoryKind::Put, "k", 1, 0xaa, "a", (0, 10)),
            ev(HistoryKind::Put, "k", 2, 0xbb, "a", (20, 30)),
            ev(HistoryKind::ReplicateApply, "k", 1, 0xaa, "b", (50, 51)),
            // v2 never reached node b.
        ];
        let diags = check_history(&h, Some(ConsistencyModel::Eventual));
        assert!(diags.iter().any(|d| d.code == Code::Wc012));
    }

    #[test]
    fn eventual_ryw_violation_is_flagged() {
        let h = vec![
            ev(HistoryKind::Put, "k", 5, 0xee, "a", (0, 10)),
            ev(HistoryKind::Get, "k", 4, 0xdd, "a", (20, 21)),
            ev(HistoryKind::Put, "k", 4, 0xdd, "b", (0, 10)),
            ev(HistoryKind::ReplicateApply, "k", 5, 0xee, "b", (40, 41)),
        ];
        let diags = check_history(&h, Some(ConsistencyModel::Eventual));
        assert!(diags.iter().any(|d| d.code == Code::Wc011));
    }

    #[test]
    fn degraded_read_is_exempt_from_ryw_but_unmarked_twin_is_not() {
        // Same stale local read twice: marked degraded it is consented-to
        // staleness, unmarked it is a finding.
        let stale = |degraded| {
            let mut g = ev(HistoryKind::Get, "k", 4, 0xdd, "a", (20, 21));
            g.degraded = degraded;
            vec![
                ev(HistoryKind::Put, "k", 5, 0xee, "a", (0, 10)),
                g,
                ev(HistoryKind::Put, "k", 4, 0xdd, "b", (0, 10)),
                ev(HistoryKind::ReplicateApply, "k", 5, 0xee, "b", (40, 41)),
            ]
        };
        let diags = check_history(&stale(true), Some(ConsistencyModel::Eventual));
        assert!(
            !diags.iter().any(|d| d.code == Code::Wc011),
            "a marked degraded read must not count as a RYW violation: {diags:?}"
        );
        let diags = check_history(&stale(false), Some(ConsistencyModel::Eventual));
        assert!(diags.iter().any(|d| d.code == Code::Wc011));
    }

    #[test]
    fn degraded_marker_roundtrips_from_the_wire_detail() {
        let e = TraceEvent {
            t_us: 100,
            subsystem: "history".into(),
            op: "get".into(),
            region: Some("UsEast".into()),
            node: Some("r1".into()),
            dur_us: Some(10),
            detail: Some("key=obj-1 ver=3 val=00000000deadbeef degraded=1".into()),
        };
        let (hist, diags) = extract_history(&[e]);
        assert!(diags.is_empty());
        assert!(hist[0].degraded);
    }

    #[test]
    fn empty_history_is_a_wc013_note() {
        let diags = check_history(&[], PB_SYNC);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::Wc013);
    }

    #[test]
    fn extract_roundtrips_replica_detail_format() {
        let e = TraceEvent {
            t_us: 100,
            subsystem: "history".into(),
            op: "put".into(),
            region: Some("UsEast".into()),
            node: Some("r1".into()),
            dur_us: Some(50),
            detail: Some("key=obj-1 ver=3 val=00000000deadbeef".into()),
        };
        let (hist, diags) = extract_history(&[e]);
        assert!(diags.is_empty());
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].key, "obj-1");
        assert_eq!(hist[0].version, 3);
        assert_eq!(hist[0].digest, 0xdead_beef);
        assert_eq!(hist[0].end_us, 150);
    }
}
