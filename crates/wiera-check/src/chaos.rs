//! Seeded chaos campaign (§4.4): randomized fault scripts against every
//! consistency protocol, gated by the same checkers as the corpus.
//!
//! A campaign stands up one three-region cluster per protocol, runs a
//! seeded workload of client writes interleaved with randomized faults
//! drawn from a per-protocol menu, then drives recovery to quiescence and
//! verifies two things:
//!
//! * **post-heal convergence** — after every fault is healed, queues
//!   drained and anti-entropy run, all replicas must be digest-equal
//!   (same per-key latest version + content fingerprint);
//! * **zero findings** — the consistency-history oracle and the lock-order
//!   detector, replayed over everything the campaign recorded, must come
//!   back clean.
//!
//! The fault menus are protocol-aware on purpose: a fault is only
//! scheduled where the protocol *claims* to mask it. Sync primary-backup
//! gets its primary crashed (the failure detector must elect a backup and
//! epoch fencing must hold); eventual gets partitions (queued distribution
//! must retry through the heal); multi-primaries gets coordination-session
//! expiry (the lock service must promote past the dead session). Faults a
//! protocol does *not* mask (e.g. partitioning a sync primary-backup
//! deployment, which necessarily serves stale reads at the cut backup; or
//! crashing an *async* primary-backup primary, which loses writes acked
//! before the propagation queue flushed) are deliberately absent — the
//! campaign checks recovery machinery, not the CAP theorem.
//!
//! Everything is derived from one `u64` seed, so a failing campaign is
//! replayable: `wiera-check --chaos <seed>`.

use bytes::Bytes;
use std::sync::Arc;
use wiera::client::{RetryPolicy, WieraClient};
use wiera::deployment::DeploymentConfig;
use wiera::replica::ReplicaNode;
use wiera::testkit::{bodies, Cluster};
use wiera_coord::{CoordClient, CoordConfig};
use wiera_net::{NodeId, Region};
use wiera_policy::diag::{sort_diagnostics, worst_is_deny, Code, Diagnostic};
use wiera_sim::lockreg::LockRegistry;
use wiera_sim::{MetricsRegistry, SimRng, TraceEvent, Tracer};

use crate::history::{check_history, extract_history};
use crate::lockdiag::registry_diagnostics;
use crate::scenarios;

/// One protocol's campaign outcome.
pub struct ChaosReport {
    pub protocol: &'static str,
    pub seed: u64,
    /// The fault script actually executed, in order (replay documentation).
    pub script: Vec<String>,
    pub ops_attempted: usize,
    /// Operations that failed even after client retries. Nonzero is normal
    /// — writes issued inside a detection window have nowhere to land —
    /// but every failure must be an *error the client saw*, never a lost ack.
    pub ops_failed: usize,
    /// All replicas digest-equal after heal + drain + anti-entropy.
    pub converged: bool,
    pub diags: Vec<Diagnostic>,
}

impl ChaosReport {
    pub fn passed(&self, deny_warnings: bool) -> bool {
        self.converged && !worst_is_deny(&self.diags, deny_warnings)
    }
}

/// The faults a campaign can schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    /// Crash whichever replica currently claims the primary role; the
    /// detector must elect a backup, the crashed node restarts later.
    CrashPrimary,
    /// Crash a non-primary replica; restarts later.
    CrashBackup,
    /// Cut one region pair, heal after the burst.
    PartitionAndHeal,
    /// A side coordination session holding a lock goes silent; expiry must
    /// promote the queued waiter while the workload keeps running.
    CoordSessionExpiry,
    /// Degrade one replica's durable tier by 4x, restore after the burst.
    SlowTier,
    /// Brownout: one replica's durable tier slows 50x — not down, just
    /// nearly unusable. The failover/degradation machinery must keep ops
    /// flowing; heal restores full speed.
    SlowTierBrownout,
    /// Inject per-message latency jitter at one region's edge, remove
    /// after the burst. Retries and timeouts must absorb it without
    /// consistency damage.
    LatencyJitter,
}

struct Protocol {
    name: &'static str,
    body: &'static str,
    /// (region name, primary) triples passed to the policy.
    layout: &'static [(&'static str, bool)],
    /// Faults this protocol claims to mask.
    menu: &'static [Fault],
    /// Run the lease-based failure detector (needed wherever a primary
    /// can crash).
    detector: bool,
}

/// The campaign roster: the paper's three protocols, with primary-backup
/// in both propagation modes. Primaries sit in US-West so the coordination
/// service (US-East, like the paper) stays reachable from the backups
/// while the primary is down.
const PROTOCOLS: &[Protocol] = &[
    Protocol {
        name: "eventual",
        body: bodies::EVENTUAL,
        layout: &[("US-East", false), ("US-West", false), ("EU-West", false)],
        menu: &[
            Fault::CrashBackup,
            Fault::PartitionAndHeal,
            Fault::SlowTier,
            Fault::SlowTierBrownout,
            Fault::LatencyJitter,
        ],
        detector: false,
    },
    Protocol {
        name: "pb-sync",
        body: bodies::PRIMARY_BACKUP_SYNC,
        layout: &[("US-East", false), ("US-West", true), ("EU-West", false)],
        menu: &[
            Fault::CrashPrimary,
            Fault::CrashBackup,
            Fault::SlowTier,
            Fault::SlowTierBrownout,
            Fault::LatencyJitter,
        ],
        detector: true,
    },
    Protocol {
        name: "pb-async",
        body: bodies::PRIMARY_BACKUP_ASYNC,
        layout: &[("US-East", false), ("US-West", true), ("EU-West", false)],
        // No CrashPrimary: async propagation acks before the queue flushes,
        // so a primary crash loses acked writes by design — the oracle
        // would (correctly) deny. Backup crashes are maskable: the acked
        // copy survives on the primary and rejoin pulls it back.
        menu: &[
            Fault::CrashBackup,
            Fault::SlowTier,
            Fault::SlowTierBrownout,
            Fault::LatencyJitter,
        ],
        detector: true,
    },
    Protocol {
        name: "multi-primaries",
        body: bodies::MULTI_PRIMARIES,
        layout: &[("US-East", true), ("US-West", false), ("EU-West", false)],
        menu: &[Fault::CoordSessionExpiry, Fault::SlowTier, Fault::LatencyJitter],
        detector: false,
    },
];

const REGIONS: [Region; 3] = [Region::UsEast, Region::UsWest, Region::EuWest];
const SCALE: f64 = 2000.0;
const KEYS: usize = 6;
const BURSTS: usize = 3;
const PUTS_PER_BURST: usize = 4;

/// Run the full campaign: every protocol, faults drawn from its menu in a
/// seed-determined order. Serialized (shares the global tracer, lock
/// registry and metrics with everything else in the process).
pub fn run_campaign(seed: u64) -> Vec<ChaosReport> {
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    PROTOCOLS.iter().map(|p| run_protocol(p, seed)).collect()
}

fn wall(ms: u64) {
    std::thread::sleep(std::time::Duration::from_millis(ms));
}

fn wait_for(mut cond: impl FnMut() -> bool, wall_ms: u64) -> bool {
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(wall_ms);
    while !cond() {
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    true
}

/// Content view of a replica: sorted (key, version, digest). `modified` is
/// excluded — the primary's local stamp differs from the replicated stamp
/// by the modeled write latency.
fn content(r: &ReplicaNode) -> Vec<(String, u64, u64)> {
    let mut d: Vec<(String, u64, u64)> = r
        .digest_table()
        .into_iter()
        .map(|e| (e.key, e.version, e.digest))
        .collect();
    d.sort();
    d
}

fn current_primary(replicas: &[Arc<ReplicaNode>]) -> Option<Arc<ReplicaNode>> {
    replicas
        .iter()
        .find(|r| !r.is_stopped() && r.primary() == Some(r.node.clone()))
        .cloned()
}

fn err_diag(context: &str, e: impl std::fmt::Display) -> Diagnostic {
    Diagnostic::note(
        Code::Wc013,
        format!("chaos campaign step failed ({context}: {e}); campaign incomplete"),
    )
}

fn run_protocol(p: &Protocol, seed: u64) -> ChaosReport {
    Tracer::global().clear();
    LockRegistry::global().reset();
    let mut rng = SimRng::new(seed).child(p.name);
    let mut script = Vec::new();
    let mut extra_diags = Vec::new();
    let mut ops_attempted = 0usize;
    let mut ops_failed = 0usize;

    let cluster = Cluster::launch(&REGIONS, SCALE, seed);
    let id = format!("chaos-{}", p.name);
    if let Err(e) = cluster.register_policy_over(&id, p.layout, p.body) {
        return ChaosReport {
            protocol: p.name,
            seed,
            script,
            ops_attempted,
            ops_failed,
            converged: false,
            diags: vec![err_diag("register policy", e)],
        };
    }
    let mut cfg = DeploymentConfig {
        flush_ms: 400.0,
        ..Default::default()
    };
    if p.detector {
        cfg = cfg.with_failure_detection(1_500.0, 4_000.0);
    }
    let dep = match cluster.controller.start_instances(&id, &id, cfg) {
        Ok(d) => d,
        Err(e) => {
            return ChaosReport {
                protocol: p.name,
                seed,
                script,
                ops_attempted,
                ops_failed,
                converged: false,
                diags: vec![err_diag("start instances", e)],
            };
        }
    };
    let replicas = cluster.deployment_replicas(&id);
    let model = scenarios::deduced_model_for(p.layout, p.body);

    // One client per region, sharing the campaign seed so retry jitter is
    // replayable too.
    let clients: Vec<Arc<WieraClient>> = REGIONS
        .iter()
        .map(|&region| {
            WieraClient::builder(
                cluster.data_mesh.clone(),
                region,
                format!("chaos-app-{region}"),
            )
            .replicas(dep.replicas())
            .policy(RetryPolicy {
                seed: rng.child("client").seed(),
                max_attempts: 6,
                ..Default::default()
            })
            .build()
        })
        .collect();

    // The seed-determined fault schedule: one fault per burst, drawn from
    // the protocol's menu without immediate repeats.
    let mut faults = Vec::new();
    let mut prev: Option<Fault> = None;
    while faults.len() < BURSTS.min(p.menu.len().max(2)) {
        let f = p.menu[rng.gen_range_usize(0, p.menu.len())];
        if p.menu.len() > 1 && prev == Some(f) {
            continue;
        }
        prev = Some(f);
        faults.push(f);
    }

    let mut crashed: Vec<Arc<ReplicaNode>> = Vec::new();
    for (burst, &fault) in faults.iter().enumerate() {
        // Inject.
        let mut heal: Box<dyn FnMut()> = match fault {
            Fault::CrashPrimary => {
                if let Some(primary) = current_primary(&replicas) {
                    script.push(format!("burst {burst}: crash-primary {}", primary.node));
                    primary.crash();
                    MetricsRegistry::global().inc("chaos_faults", &[("kind", "crash-primary")]);
                    crashed.push(primary);
                    // Give the detector a chance; don't insist (a backup
                    // may still be mid-election when the burst runs —
                    // those writes fail and are counted).
                    let reps = replicas.clone();
                    wait_for(|| current_primary(&reps).is_some(), 20_000);
                } else {
                    script.push(format!("burst {burst}: crash-primary skipped (none live)"));
                }
                Box::new(|| {})
            }
            Fault::CrashBackup => {
                let live_backup = replicas
                    .iter()
                    .find(|r| !r.is_stopped() && r.primary() != Some(r.node.clone()))
                    .cloned();
                if let Some(b) = live_backup {
                    script.push(format!("burst {burst}: crash-backup {}", b.node));
                    b.crash();
                    MetricsRegistry::global().inc("chaos_faults", &[("kind", "crash-backup")]);
                    crashed.push(b);
                } else {
                    script.push(format!("burst {burst}: crash-backup skipped (none live)"));
                }
                Box::new(|| {})
            }
            Fault::PartitionAndHeal => {
                let i = rng.gen_range_usize(0, REGIONS.len());
                let j = (i + 1 + rng.gen_range_usize(0, REGIONS.len() - 1)) % REGIONS.len();
                let (a, b) = (REGIONS[i], REGIONS[j]);
                script.push(format!("burst {burst}: partition {a}<->{b}"));
                cluster.fabric.partition(a, b);
                MetricsRegistry::global().inc("chaos_faults", &[("kind", "partition")]);
                let fabric = cluster.fabric.clone();
                Box::new(move || fabric.heal_partition(a, b))
            }
            Fault::CoordSessionExpiry => {
                script.push(format!("burst {burst}: coord-session-expiry"));
                MetricsRegistry::global().inc("chaos_faults", &[("kind", "session-expiry")]);
                match inject_session_expiry(&cluster, burst) {
                    Ok(()) => {}
                    Err(e) => extra_diags.push(err_diag("session expiry", e)),
                }
                Box::new(|| {})
            }
            Fault::SlowTier => {
                let idx = rng.gen_range_usize(0, replicas.len());
                let r = replicas[idx].clone();
                script.push(format!("burst {burst}: slow-tier on {}", r.node));
                MetricsRegistry::global().inc("chaos_faults", &[("kind", "slow-tier")]);
                if let Some(t) = r.instance().tier("tier2").and_then(|t| t.as_local()) {
                    t.set_degraded(4.0);
                }
                Box::new(move || {
                    if let Some(t) = r.instance().tier("tier2").and_then(|t| t.as_local()) {
                        t.set_degraded(1.0);
                    }
                })
            }
            Fault::SlowTierBrownout => {
                let idx = rng.gen_range_usize(0, replicas.len());
                let r = replicas[idx].clone();
                script.push(format!("burst {burst}: tier-brownout on {}", r.node));
                MetricsRegistry::global().inc("chaos_faults", &[("kind", "tier-brownout")]);
                if let Some(t) = r.instance().tier("tier2").and_then(|t| t.as_local()) {
                    t.set_degraded(50.0);
                }
                Box::new(move || {
                    if let Some(t) = r.instance().tier("tier2").and_then(|t| t.as_local()) {
                        t.set_degraded(1.0);
                    }
                })
            }
            Fault::LatencyJitter => {
                let region = REGIONS[rng.gen_range_usize(0, REGIONS.len())];
                let ms = 50.0 + rng.gen_range_f64(0.0, 200.0);
                script.push(format!("burst {burst}: latency-jitter {region} {ms:.0}ms"));
                MetricsRegistry::global().inc("chaos_faults", &[("kind", "latency-jitter")]);
                cluster.fabric.set_region_jitter_ms(region, Some(ms));
                let fabric = cluster.fabric.clone();
                Box::new(move || fabric.set_region_jitter_ms(region, None))
            }
        };

        // Workload burst under the fault.
        for _ in 0..PUTS_PER_BURST {
            let key = format!("c{}", rng.gen_range_usize(0, KEYS));
            let client = &clients[rng.gen_range_usize(0, clients.len())];
            let fill = rng.gen_range_usize(1, 255) as u8;
            ops_attempted += 1;
            if client.put(&key, Bytes::from(vec![fill; 64])).is_err() {
                ops_failed += 1;
            }
            wall(5);
        }
        wall(20);
        heal();
        wall(20);
    }

    // ---- recovery to quiescence -------------------------------------------
    // Restart every crashed node (rejoin at the current epoch, anti-entropy
    // catch-up), then drain queues and run one more anti-entropy pass per
    // replica so post-heal state is fully exchanged.
    for r in &crashed {
        if let Err(e) = r.restart() {
            extra_diags.push(err_diag(&format!("restart {}", r.node), e));
        }
    }
    wall(60); // a few flush intervals for queued distribution to drain
    for r in &replicas {
        let msg = wiera::msg::DataMsg::FlushQueue;
        let from = NodeId::new(Region::UsEast, "chaos-driver");
        let bytes = msg.wire_bytes();
        let _ = cluster.data_mesh.rpc(
            &from,
            &r.node,
            msg,
            bytes,
            wiera_sim::SimDuration::from_secs(120),
        );
    }
    for r in &replicas {
        r.anti_entropy();
    }
    wall(20);

    let tables: Vec<Vec<(String, u64, u64)>> = replicas.iter().map(|r| content(r)).collect();
    let converged = tables.windows(2).all(|w| w[0] == w[1]);
    if !converged {
        script.push("post-heal digest mismatch".into());
    }

    // Post-convergence reads from every region (gives the oracle read
    // events to check against the writes).
    if converged {
        for client in &clients {
            for i in 0..KEYS {
                let key = format!("c{i}");
                ops_attempted += 1;
                match client.get(&key) {
                    Ok(_) => {}
                    Err(e) if e.is_not_found() => {} // key never written this run
                    Err(_) => ops_failed += 1,
                }
            }
        }
    }

    dep.stop_all();
    cluster.shutdown();
    wall(20);

    let events: Vec<TraceEvent> = Tracer::global().events();
    let (history, mut diags) = extract_history(&events);
    diags.extend(check_history(&history, model));
    diags.extend(registry_diagnostics(LockRegistry::global()));
    diags.extend(extra_diags);
    sort_diagnostics(&mut diags);
    ChaosReport {
        protocol: p.name,
        seed,
        script,
        ops_attempted,
        ops_failed,
        converged,
        diags,
    }
}

/// A side session takes a coordination lock and goes silent; the service
/// must expire it and promote the waiter without disturbing the workload.
fn inject_session_expiry(cluster: &Cluster, burst: usize) -> Result<(), String> {
    let cfg = CoordConfig::default();
    let hung = CoordClient::connect(
        cluster.coord_mesh.clone(),
        NodeId::new(Region::UsWest, format!("chaos-hung-{burst}")),
        cluster.coord.node.clone(),
        &cfg,
    )
    .map_err(|e| format!("hung connect: {e}"))?;
    let waiter = CoordClient::connect(
        cluster.coord_mesh.clone(),
        NodeId::new(Region::UsEast, format!("chaos-waiter-{burst}")),
        cluster.coord.node.clone(),
        &cfg,
    )
    .map_err(|e| format!("waiter connect: {e}"))?;
    let path = format!("/chaos/expiry-{burst}");
    let (g, _) = hung.lock(&path).map_err(|e| format!("hung lock: {e}"))?;
    hung.pause_heartbeats();
    std::mem::forget(g);
    let (g2, _) = waiter
        .lock(&path)
        .map_err(|e| format!("waiter lock: {e}"))?;
    drop(g2);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One fixed-seed campaign must pass outright: convergence on every
    /// protocol and zero gating findings even with warnings denied.
    #[test]
    fn fixed_seed_campaign_is_clean_and_converges() {
        let reports = run_campaign(20_160_601); // HPDC '16
        assert_eq!(reports.len(), PROTOCOLS.len());
        for r in &reports {
            assert!(
                r.passed(true),
                "protocol {} seed {} failed: converged={} script={:?} diags={:?}",
                r.protocol,
                r.seed,
                r.converged,
                r.script,
                r.diags
            );
            assert!(r.ops_attempted > 0);
        }
    }

    /// The schedule is a pure function of the seed: two runs with the same
    /// seed must execute the same fault script. Crash victims are the one
    /// exception — a crash fault hits whichever node holds (or doesn't
    /// hold) the primary role *at injection time*, and after an earlier
    /// election that role assignment is timing-dependent — so the victim
    /// name is normalized away while every RNG-drawn part (fault kinds and
    /// order, partition pairs, jitter magnitudes, target indices) must
    /// replay exactly.
    #[test]
    fn fault_script_is_replayable_from_seed() {
        let a = run_campaign(42);
        let b = run_campaign(42);
        let normalize = |line: &str| -> String {
            for prefix in ["crash-primary ", "crash-backup "] {
                if let Some(at) = line.find(prefix) {
                    if !line.ends_with("(none live)") {
                        return format!("{}{}<victim>", &line[..at], prefix);
                    }
                }
            }
            line.to_string()
        };
        let scripts = |rs: &[ChaosReport]| -> Vec<Vec<String>> {
            rs.iter()
                .map(|r| r.script.iter().map(|l| normalize(l)).collect())
                .collect()
        };
        assert_eq!(scripts(&a), scripts(&b));
    }
}
