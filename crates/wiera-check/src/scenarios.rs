//! Canned scenario corpus + adversarial self-tests.
//!
//! Each *corpus* scenario stands up a real multi-region cluster (the same
//! harness the system tests use), runs a workload under one of the paper's
//! three consistency protocols — including outage and session-expiry fault
//! injection — and hands the recorded history plus the global lock-order
//! graph to the checkers. The corpus must come back clean: any finding here
//! is a real (or conservatively-possible) defect in the runtime.
//!
//! The *adversarial* scenarios are the converse: each plants a known bug —
//! an ABBA lock-order cycle acquired by two non-overlapping threads, a
//! stale read slipped into a sync primary-backup history — and declares the
//! WC code the checker must produce. `wiera-check --adversarial` fails if
//! any plant goes undetected, which keeps the oracle itself honest.
//!
//! Scenarios share process-global state (the [`Tracer`], the
//! [`LockRegistry`], wall-clock timing), so [`run_scenario`] serializes
//! them behind one mutex.

use bytes::Bytes;
use std::sync::Arc;
use wiera::controller::ControllerConfig;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::{bodies, Cluster};
use wiera_coord::{CoordClient, CoordConfig};
use wiera_net::{NodeId, Region};
use wiera_policy::compile::deduce_consistency;
use wiera_policy::diag::{sort_diagnostics, Code, Diagnostic};
use wiera_policy::ConsistencyModel;
use wiera_sim::lockreg::{LockRegistry, TrackedMutex};
use wiera_sim::{SimDuration, TraceEvent, Tracer};

use crate::history::{check_history, extract_history};
use crate::lockdiag::registry_diagnostics;

/// Whether a scenario is expected to be clean or to trip the checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Part of the canned corpus: zero findings expected.
    Corpus,
    /// Contains a planted bug: the listed codes MUST be reported.
    Adversarial,
}

/// A runnable check scenario.
pub struct Scenario {
    pub name: &'static str,
    pub kind: ScenarioKind,
    pub describe: &'static str,
    /// Codes that must appear in the report (adversarial only).
    pub expect: &'static [Code],
    run: fn() -> Vec<Diagnostic>,
}

/// The outcome of one scenario run.
pub struct ScenarioReport {
    pub name: &'static str,
    pub kind: ScenarioKind,
    pub diags: Vec<Diagnostic>,
}

impl ScenarioReport {
    /// For adversarial scenarios: were all planted bugs detected?
    pub fn detected_all(&self, expect: &[Code]) -> bool {
        expect
            .iter()
            .all(|c| self.diags.iter().any(|d| d.code == *c))
    }
}

/// Every scenario, corpus first — the order the CLI runs them in.
pub fn all_scenarios() -> &'static [Scenario] {
    &[
        Scenario {
            name: "eventual-two-regions",
            kind: ScenarioKind::Corpus,
            describe: "eventual consistency over two regions: local writes, \
                       queued distribution, convergence after quiescence",
            expect: &[],
            run: run_eventual_two_regions,
        },
        Scenario {
            name: "primary-backup-sync",
            kind: ScenarioKind::Corpus,
            describe: "sync primary-backup: forwarded writes from the backup \
                       region, linearizability of the recorded history",
            expect: &[],
            run: run_primary_backup_sync,
        },
        Scenario {
            name: "multi-primaries-locked",
            kind: ScenarioKind::Corpus,
            describe: "multi-primaries: writes from both regions under the \
                       global coordination lock, linearizability",
            expect: &[],
            run: run_multi_primaries,
        },
        Scenario {
            name: "batched-bulk-ops",
            kind: ScenarioKind::Corpus,
            describe: "sync primary-backup driven through the client batch \
                       API: forwarded MultiPut from the backup region, \
                       partial-failure MultiGet, linearizability of the \
                       per-item mput/mget spans",
            expect: &[],
            run: run_batched_bulk_ops,
        },
        Scenario {
            name: "batched-eventual-coalesced",
            kind: ScenarioKind::Corpus,
            describe: "eventual consistency with batched writes: one \
                       coalesced ReplicateBatch per peer per flush, \
                       convergence after quiescence",
            expect: &[],
            run: run_batched_eventual,
        },
        Scenario {
            name: "pb-outage",
            kind: ScenarioKind::Corpus,
            describe: "sync primary-backup with a backup-region partition \
                       injected and healed mid-run",
            expect: &[],
            run: run_pb_outage,
        },
        Scenario {
            name: "session-expiry",
            kind: ScenarioKind::Corpus,
            describe: "multi-primaries workload while a hung coordination \
                       session expires and its lock is re-granted",
            expect: &[],
            run: run_session_expiry,
        },
        Scenario {
            name: "fleet-sharded-routing",
            kind: ScenarioKind::Corpus,
            describe: "two-group consistent-hash fleet under sync \
                       primary-backup: shard-routed single-key and batch \
                       traffic from both regions, linearizability per key",
            expect: &[],
            run: run_fleet_sharded_routing,
        },
        Scenario {
            name: "fleet-shard-move",
            kind: ScenarioKind::Corpus,
            describe: "shard move under concurrent writers with a \
                       target-group backup crashed mid-handoff: every acked \
                       write survives, the target group is digest-equal \
                       after heal, and the history stays clean",
            expect: &[],
            run: run_fleet_shard_move,
        },
        Scenario {
            name: "overload-degraded-read",
            kind: ScenarioKind::Corpus,
            describe: "eventual deployment with admission control: a forced \
                       backlog sheds plain clients to the healthy region, a \
                       consenting client gets an explicitly-marked degraded \
                       local read, and the history stays clean after heal",
            expect: &[],
            run: run_overload_degraded_read,
        },
        Scenario {
            name: "adv-abba-deadlock",
            kind: ScenarioKind::Adversarial,
            describe: "planted ABBA: two threads take two tracked locks in \
                       opposing orders without ever interleaving",
            expect: &[Code::Wc001],
            run: run_adv_abba,
        },
        Scenario {
            name: "adv-stale-read-pb-sync",
            kind: ScenarioKind::Adversarial,
            describe: "planted stale read in a sync primary-backup history",
            expect: &[Code::Wc010],
            run: run_adv_stale_read,
        },
    ]
}

/// Run one scenario by name. Serialized: scenarios share the global tracer,
/// the global lock registry and wall-clock timing.
pub fn run_scenario(name: &str) -> Option<ScenarioReport> {
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let scenario = all_scenarios().iter().find(|s| s.name == name)?;
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let mut diags = (scenario.run)();
    sort_diagnostics(&mut diags);
    Some(ScenarioReport {
        name: scenario.name,
        kind: scenario.kind,
        diags,
    })
}

// ---- shared plumbing -------------------------------------------------------

/// Wall-clock pause that lets in-flight mesh deliveries and queued
/// replication drain. On the modeled axis this is a *long* quiescent gap
/// (wall ms × time-scale), which is what separates the write and read
/// phases for the interval checks.
fn quiesce(wall_ms: u64) {
    std::thread::sleep(std::time::Duration::from_millis(wall_ms));
}

/// Policy source in the shape of `Cluster::register_policy_over`, kept
/// here too so the scenario can *compile* it and deduce the model the
/// oracle checks against (the integration the tentpole asks for).
fn policy_src(id: &str, regions: &[(&str, bool)], body: &str) -> String {
    let mut src = format!("Wiera {}() {{\n", id.replace('-', "_"));
    for (i, (region, primary)) in regions.iter().enumerate() {
        let primary_attr = if *primary { ", primary:True" } else { "" };
        src.push_str(&format!(
            "  Region{n} = {{name:LowLatencyInstance, region:{region}{primary_attr},\n    \
             tier1 = {{name:LocalMemory, size=5G}},\n    \
             tier2 = {{name:LocalDisk, size=5G}} }}\n",
            n = i + 1,
        ));
    }
    src.push_str(body);
    src.push_str("\n}\n");
    src
}

fn deduced_model(src: &str) -> Option<ConsistencyModel> {
    let spec = wiera_policy::parse(src).ok()?;
    let compiled = wiera_policy::compile::compile(&spec).ok()?;
    deduce_consistency(&compiled.rules)
}

/// The model a (layout, body) pair deduces to — shared with the chaos
/// campaign so its oracle checks against the same deduction the corpus
/// scenarios use.
pub(crate) fn deduced_model_for(layout: &[(&str, bool)], body: &str) -> Option<ConsistencyModel> {
    deduced_model(&policy_src("deduce", layout, body))
}

struct Bench {
    cluster: Cluster,
    dep: Arc<wiera::deployment::WieraDeployment>,
    model: Option<ConsistencyModel>,
}

/// Stand up a cluster, register + start the policy, and reset the global
/// tracer and lock registry so the report covers exactly this scenario.
fn bench(
    id: &str,
    regions: &[Region],
    layout: &[(&str, bool)],
    body: &str,
    time_scale: f64,
) -> Result<Bench, String> {
    bench_with(id, regions, layout, body, time_scale, DeploymentConfig::default())
}

/// [`bench`] with a caller-supplied deployment config (overload knobs,
/// flush cadence, …).
fn bench_with(
    id: &str,
    regions: &[Region],
    layout: &[(&str, bool)],
    body: &str,
    time_scale: f64,
    dep_config: DeploymentConfig,
) -> Result<Bench, String> {
    Tracer::global().clear();
    LockRegistry::global().reset();
    // Session expiry is judged in sim time but heartbeat threads run on the
    // wall clock: at scale 2000 the default 10-sim-second timeout is 5 wall
    // milliseconds, so one scheduler stall on a loaded host (CI compiling
    // test binaries in parallel) expires a healthy session mid-scenario.
    // Widen the timeout to a ~100ms wall tolerance, capped under the
    // client's 300-sim-second lock wait so the session-expiry scenario's
    // queued waiter still gets promoted; genuinely hung sessions still
    // expire, just later.
    let mut coord_config = CoordConfig::default();
    let wall_floor = SimDuration::from_secs_f64((0.1 * time_scale).min(250.0));
    if coord_config.session_timeout < wall_floor {
        coord_config.session_timeout = wall_floor;
    }
    let cluster = Cluster::launch_full(
        regions,
        time_scale,
        7,
        ControllerConfig::default(),
        coord_config,
    );
    let src = policy_src(id, layout, body);
    cluster.controller.register_policy(id, &src)?;
    let dep = cluster.controller.start_instances(id, id, dep_config)?;
    let model = deduced_model(&src);
    Ok(Bench {
        cluster,
        dep,
        model,
    })
}

/// Shut the cluster down, then run both checkers over what was recorded.
fn collect(b: Bench, extra: Vec<Diagnostic>) -> Vec<Diagnostic> {
    // Stop traffic sources before reading the trace so the history is
    // complete and the lock graph stops growing.
    b.dep.stop_all();
    b.cluster.shutdown();
    quiesce(20);

    let events: Vec<TraceEvent> = Tracer::global().events();
    let (history, mut diags) = extract_history(&events);
    diags.extend(check_history(&history, b.model));
    // Scenario workloads always record puts and gets; an empty history here
    // means the instrumentation broke, so the WC013 note stands.
    diags.extend(registry_diagnostics(LockRegistry::global()));
    diags.extend(extra);
    diags
}

fn err_diag(context: &str, e: impl std::fmt::Display) -> Vec<Diagnostic> {
    vec![Diagnostic::note(
        Code::Wc013,
        format!("scenario could not run to completion ({context}: {e}); history unchecked"),
    )]
}

fn app(region: Region, name: &str) -> NodeId {
    NodeId::new(region, name)
}

// ---- corpus ----------------------------------------------------------------

fn run_eventual_two_regions() -> Vec<Diagnostic> {
    let b = match bench(
        "chk-eventual",
        &[Region::UsEast, Region::EuWest],
        &[("US-East", true), ("EU-West", false)],
        bodies::EVENTUAL,
        2000.0,
    ) {
        Ok(b) => b,
        Err(e) => return err_diag("launch", e),
    };
    let east = app(Region::UsEast, "app-e");
    let west = app(Region::EuWest, "app-w");
    // Independent keys from each side (concurrent same-key eventual writers
    // collide on locally-assigned versions — legal, but then the history
    // carries no convergence signal worth asserting on).
    for i in 0..3 {
        if let Err(e) = b
            .dep
            .put_from(&east, &format!("e{i}"), Bytes::from(vec![i as u8; 64]))
        {
            return collect(b, err_diag("put east", e));
        }
        if let Err(e) = b.dep.put_from(
            &west,
            &format!("w{i}"),
            Bytes::from(vec![0x80 | i as u8; 64]),
        ) {
            return collect(b, err_diag("put west", e));
        }
    }
    // Overwrite one key twice from its home node: exercises read-your-writes.
    let _ = b.dep.put_from(&east, "e0", Bytes::from(vec![0xEE; 64]));
    quiesce(80); // let the queued updates distribute
    for key in ["e0", "e1", "w0"] {
        if let Err(e) = b.dep.get_from(&east, key) {
            return collect(b, err_diag("get east", e));
        }
        if let Err(e) = b.dep.get_from(&west, key) {
            return collect(b, err_diag("get west", e));
        }
    }
    collect(b, Vec::new())
}

fn run_primary_backup_sync() -> Vec<Diagnostic> {
    let b = match bench(
        "chk-pb-sync",
        &[Region::UsEast, Region::UsWest],
        &[("US-East", true), ("US-West", false)],
        bodies::PRIMARY_BACKUP_SYNC,
        2000.0,
    ) {
        Ok(b) => b,
        Err(e) => return err_diag("launch", e),
    };
    let east = app(Region::UsEast, "app-e");
    let west = app(Region::UsWest, "app-w");
    // Writes from the primary side and the backup side (the latter are
    // forwarded, recording nested put spans that must merge cleanly).
    for (i, writer) in [&east, &west, &east, &west].iter().enumerate() {
        if let Err(e) = b.dep.put_from(writer, "k", Bytes::from(vec![i as u8; 128])) {
            return collect(b, err_diag("put", e));
        }
        quiesce(15);
    }
    quiesce(40);
    for reader in [&east, &west] {
        if let Err(e) = b.dep.get_from(reader, "k") {
            return collect(b, err_diag("get", e));
        }
    }
    collect(b, Vec::new())
}

fn run_multi_primaries() -> Vec<Diagnostic> {
    let b = match bench(
        "chk-mp",
        &[Region::UsEast, Region::EuWest],
        &[("US-East", true), ("EU-West", false)],
        bodies::MULTI_PRIMARIES,
        2000.0,
    ) {
        Ok(b) => b,
        Err(e) => return err_diag("launch", e),
    };
    let east = app(Region::UsEast, "app-e");
    let west = app(Region::EuWest, "app-w");
    for (i, writer) in [&east, &west, &west, &east].iter().enumerate() {
        if let Err(e) = b
            .dep
            .put_from(writer, "m", Bytes::from(vec![0x10 + i as u8; 96]))
        {
            return collect(b, err_diag("put", e));
        }
        quiesce(10);
    }
    quiesce(40);
    for reader in [&east, &west] {
        if let Err(e) = b.dep.get_from(reader, "m") {
            return collect(b, err_diag("get", e));
        }
    }
    collect(b, Vec::new())
}

fn run_batched_bulk_ops() -> Vec<Diagnostic> {
    let b = match bench(
        "chk-batch",
        &[Region::UsEast, Region::UsWest],
        &[("US-East", true), ("US-West", false)],
        bodies::PRIMARY_BACKUP_SYNC,
        2000.0,
    ) {
        Ok(b) => b,
        Err(e) => return err_diag("launch", e),
    };
    let east = wiera::WieraClient::builder(b.cluster.data_mesh.clone(), Region::UsEast, "app-e")
        .replicas(b.dep.replicas())
        .build();
    let west = wiera::WieraClient::builder(b.cluster.data_mesh.clone(), Region::UsWest, "app-w")
        .replicas(b.dep.replicas())
        .build();
    let keys: Vec<String> = (0..3).map(|i| format!("b{i}")).collect();
    // Round 1 from the primary side, round 2 from the backup side (one
    // forwarded MultiPut); both record per-item mput spans the oracle must
    // merge and linearize.
    for (round, client) in [(0u8, &east), (1u8, &west)] {
        let items: Vec<(String, bytes::Bytes)> = keys
            .iter()
            .map(|k| (k.clone(), Bytes::from(vec![0x40 | round; 64])))
            .collect();
        match client.put_batch(&items) {
            Ok(results) => {
                for (key, r) in keys.iter().zip(results) {
                    if let Err(e) = r {
                        return collect(b, err_diag(&format!("batch put {key}"), e));
                    }
                }
            }
            Err(e) => return collect(b, err_diag("batch put", e)),
        }
        quiesce(20);
    }
    quiesce(40);
    // Read the batch back from both sides, with one key that was never
    // written: its per-item NotFound must not disturb the others.
    let mut read_keys = keys.clone();
    read_keys.push("b-missing".into());
    for client in [&east, &west] {
        match client.get_batch(&read_keys) {
            Ok(results) => {
                for (key, r) in read_keys.iter().zip(results) {
                    match r {
                        Ok(_) => {}
                        Err(e) if e.is_not_found() && key == "b-missing" => {}
                        Err(e) => {
                            return collect(b, err_diag(&format!("batch get {key}"), e));
                        }
                    }
                }
            }
            Err(e) => return collect(b, err_diag("batch get", e)),
        }
    }
    collect(b, Vec::new())
}

fn run_batched_eventual() -> Vec<Diagnostic> {
    let b = match bench(
        "chk-batch-ev",
        &[Region::UsEast, Region::EuWest],
        &[("US-East", true), ("EU-West", false)],
        bodies::EVENTUAL,
        2000.0,
    ) {
        Ok(b) => b,
        Err(e) => return err_diag("launch", e),
    };
    let east = wiera::WieraClient::builder(b.cluster.data_mesh.clone(), Region::UsEast, "app-e")
        .replicas(b.dep.replicas())
        .build();
    // Two batches of local writes to distinct keys: each flush interval must
    // drain the whole queue as one coalesced ReplicateBatch per peer, and
    // the LWW applies at the peer must converge.
    for round in 0..2u8 {
        let items: Vec<(String, bytes::Bytes)> = (0..4)
            .map(|i| {
                (
                    format!("ev{i}"),
                    Bytes::from(vec![(round << 4) | i as u8; 48]),
                )
            })
            .collect();
        match east.put_batch(&items) {
            Ok(results) => {
                if let Some(e) = results.into_iter().filter_map(Result::err).next() {
                    return collect(b, err_diag("batch put", e));
                }
            }
            Err(e) => return collect(b, err_diag("batch put", e)),
        }
        quiesce(40); // at least one coalesced flush between rounds
    }
    quiesce(80);
    let read_keys: Vec<String> = (0..4).map(|i| format!("ev{i}")).collect();
    for client_region in [Region::UsEast, Region::EuWest] {
        let reader =
            wiera::WieraClient::builder(b.cluster.data_mesh.clone(), client_region, "app-r")
                .replicas(b.dep.replicas())
                .build();
        match reader.get_batch(&read_keys) {
            Ok(results) => {
                if let Some(e) = results.into_iter().filter_map(Result::err).next() {
                    return collect(b, err_diag("batch get", e));
                }
            }
            Err(e) => return collect(b, err_diag("batch get", e)),
        }
    }
    collect(b, Vec::new())
}

fn run_pb_outage() -> Vec<Diagnostic> {
    let b = match bench(
        "chk-pb-outage",
        &[Region::UsEast, Region::AsiaEast],
        &[("US-East", true), ("Asia-East", false)],
        bodies::PRIMARY_BACKUP_SYNC,
        2000.0,
    ) {
        Ok(b) => b,
        Err(e) => return err_diag("launch", e),
    };
    let east = app(Region::UsEast, "app-e");
    let asia = app(Region::AsiaEast, "app-a");
    if let Err(e) = b.dep.put_from(&east, "o", Bytes::from(vec![1u8; 128])) {
        return collect(b, err_diag("put pre-outage", e));
    }
    quiesce(30);
    // Outage: cut the backup region off, read at the primary meanwhile.
    b.cluster.fabric.set_partitioned(Region::AsiaEast, true);
    quiesce(20);
    if let Err(e) = b.dep.get_from(&east, "o") {
        b.cluster.fabric.clear_all_dynamics();
        return collect(b, err_diag("get during outage", e));
    }
    // Heal, then write again and read everywhere.
    b.cluster.fabric.clear_all_dynamics();
    quiesce(30);
    if let Err(e) = b.dep.put_from(&east, "o", Bytes::from(vec![2u8; 128])) {
        return collect(b, err_diag("put post-heal", e));
    }
    quiesce(40);
    for reader in [&east, &asia] {
        if let Err(e) = b.dep.get_from(reader, "o") {
            return collect(b, err_diag("get post-heal", e));
        }
    }
    collect(b, Vec::new())
}

fn run_session_expiry() -> Vec<Diagnostic> {
    let b = match bench(
        "chk-expiry",
        &[Region::UsEast, Region::UsWest],
        &[("US-East", true), ("US-West", false)],
        bodies::MULTI_PRIMARIES,
        1000.0,
    ) {
        Ok(b) => b,
        Err(e) => return err_diag("launch", e),
    };
    let east = app(Region::UsEast, "app-e");
    let west = app(Region::UsWest, "app-w");
    if let Err(e) = b.dep.put_from(&east, "s", Bytes::from(vec![7u8; 64])) {
        return collect(b, err_diag("put", e));
    }

    // A side session takes an unrelated coordination lock and hangs; its
    // session must expire and the queued waiter must be promoted while the
    // data workload keeps running.
    let cfg = CoordConfig::default();
    let hung = match CoordClient::connect(
        b.cluster.coord_mesh.clone(),
        NodeId::new(Region::UsWest, "chk-hung"),
        b.cluster.coord.node.clone(),
        &cfg,
    ) {
        Ok(c) => c,
        Err(e) => return collect(b, err_diag("coord connect", e)),
    };
    let waiter = match CoordClient::connect(
        b.cluster.coord_mesh.clone(),
        NodeId::new(Region::UsEast, "chk-waiter"),
        b.cluster.coord.node.clone(),
        &cfg,
    ) {
        Ok(c) => c,
        Err(e) => return collect(b, err_diag("coord connect", e)),
    };
    let held = match hung.lock("/chk/expiry") {
        Ok((g, _)) => g,
        Err(e) => return collect(b, err_diag("coord lock", e)),
    };
    hung.pause_heartbeats();
    std::mem::forget(held); // the hung holder never releases
    let promoted = match waiter.lock("/chk/expiry") {
        Ok((g, _)) => g,
        Err(e) => return collect(b, err_diag("waiter lock", e)),
    };
    drop(promoted);

    // The data path must be unaffected by the coord-session churn.
    if let Err(e) = b.dep.put_from(&west, "s", Bytes::from(vec![8u8; 64])) {
        return collect(b, err_diag("put post-expiry", e));
    }
    quiesce(40);
    for reader in [&east, &west] {
        if let Err(e) = b.dep.get_from(reader, "s") {
            return collect(b, err_diag("get", e));
        }
    }
    collect(b, Vec::new())
}

fn run_overload_degraded_read() -> Vec<Diagnostic> {
    let b = match bench_with(
        "chk-overload",
        &[Region::UsEast, Region::EuWest],
        &[("US-East", true), ("EU-West", false)],
        bodies::EVENTUAL,
        2000.0,
        DeploymentConfig {
            overload: Some(wiera::OverloadSpec {
                target_delay_ms: 5.0,
                interval_ms: 0.0,
            }),
            ..Default::default()
        },
    ) {
        Ok(b) => b,
        Err(e) => return err_diag("launch", e),
    };
    let plain = wiera::WieraClient::builder(b.cluster.data_mesh.clone(), Region::UsEast, "app-p")
        .replicas(b.dep.replicas())
        .build();
    let consenting =
        wiera::WieraClient::builder(b.cluster.data_mesh.clone(), Region::UsEast, "app-d")
            .replicas(b.dep.replicas())
            .allow_degraded(true)
            .build();

    // Seed and let queued distribution reach EU.
    if let Err(e) = plain.put("ov", Bytes::from(vec![0x11; 64])) {
        return collect(b, err_diag("seed put", e));
    }
    quiesce(60);

    // Brown out the US-East replica's admission queue (white-box: a huge
    // standing backlog, patience already spent).
    let reps = b.cluster.deployment_replicas("chk-overload");
    let Some(east_rep) = reps
        .iter()
        .find(|r| r.node.region == Region::UsEast)
        .cloned()
    else {
        return collect(b, err_diag("setup", "no US-East replica"));
    };
    east_rep.force_backlog(SimDuration::from_secs(3600));

    let mut extra = Vec::new();
    // A plain client is shed at US-East and must be served by the healthy
    // EU replica — graceful routing, not an error.
    match plain.get("ov") {
        Ok(view) => {
            if view.served_by.region != Region::EuWest {
                extra.push(Diagnostic::deny(
                    Code::Wc013,
                    format!(
                        "shed client was served by {} instead of failing \
                         over to the healthy region",
                        view.served_by
                    ),
                ));
            }
            if view.degraded {
                extra.push(Diagnostic::deny(
                    Code::Wc010,
                    "non-consenting client received a degraded read",
                ));
            }
        }
        Err(e) => return collect(b, err_diag("shed failover get", e)),
    }
    // A consenting client gets a local answer despite the backlog — and
    // the reply must carry the explicit degraded marker.
    match consenting.get("ov") {
        Ok(view) => {
            if view.served_by.region != Region::UsEast {
                extra.push(Diagnostic::deny(
                    Code::Wc013,
                    format!(
                        "degraded-consenting get was served by {} instead \
                         of the overloaded local replica",
                        view.served_by
                    ),
                ));
            } else if !view.degraded {
                extra.push(Diagnostic::deny(
                    Code::Wc010,
                    "read served from an overloaded replica's local state \
                     without the degraded marker",
                ));
            }
        }
        Err(e) => return collect(b, err_diag("degraded get", e)),
    }

    // Heal the backlog; normal service resumes and the history must close
    // clean (the one degraded read is marked, everything else is fresh).
    east_rep.force_backlog(SimDuration::ZERO);
    if let Err(e) = plain.put("ov", Bytes::from(vec![0x22; 64])) {
        return collect(b, err_diag("post-heal put", e));
    }
    quiesce(60);
    for (region, name) in [(Region::UsEast, "app-p"), (Region::EuWest, "app-r")] {
        let reader = wiera::WieraClient::builder(b.cluster.data_mesh.clone(), region, name)
            .replicas(b.dep.replicas())
            .build();
        if let Err(e) = reader.get("ov") {
            return collect(b, err_diag("post-heal get", e));
        }
    }
    collect(b, extra)
}

// ---- fleet sharding --------------------------------------------------------

struct FleetBench {
    cluster: Cluster,
    fleet: Arc<wiera::fleet::WieraFleet>,
    model: Option<ConsistencyModel>,
}

/// Stand up a two-region cluster and a sharded fleet of `groups` sync
/// primary-backup deployments over it, tracer and lock registry reset.
/// PB-sync on purpose: every ack is synchronously replicated, so the
/// post-move digest comparison and the per-key linearizability check are
/// exact (an eventual-mode fleet would race its own queues).
fn fleet_bench(id: &str, groups: u32, time_scale: f64) -> Result<FleetBench, String> {
    Tracer::global().clear();
    LockRegistry::global().reset();
    let layout: &[(&str, bool)] = &[("US-East", true), ("US-West", false)];
    let mut coord_config = CoordConfig::default();
    let wall_floor = SimDuration::from_secs_f64((0.1 * time_scale).min(250.0));
    if coord_config.session_timeout < wall_floor {
        coord_config.session_timeout = wall_floor;
    }
    let cluster = Cluster::launch_full(
        &[Region::UsEast, Region::UsWest],
        time_scale,
        7,
        ControllerConfig::default(),
        coord_config,
    );
    let src = policy_src(id, layout, bodies::PRIMARY_BACKUP_SYNC);
    cluster.controller.register_policy(id, &src)?;
    let fleet = wiera::fleet::WieraFleet::launch(
        cluster.controller.clone(),
        cluster.data_mesh.clone(),
        id,
        wiera::fleet::FleetConfig::new(id)
            .with_groups(groups)
            .with_shards(16, 8),
    )?;
    let model = deduced_model(&src);
    Ok(FleetBench {
        cluster,
        fleet,
        model,
    })
}

fn fleet_collect(b: FleetBench, extra: Vec<Diagnostic>) -> Vec<Diagnostic> {
    b.fleet.stop_all();
    b.cluster.shutdown();
    quiesce(20);
    let events: Vec<TraceEvent> = Tracer::global().events();
    let (history, mut diags) = extract_history(&events);
    diags.extend(check_history(&history, b.model));
    diags.extend(registry_diagnostics(LockRegistry::global()));
    diags.extend(extra);
    diags
}

fn fleet_client(b: &FleetBench, region: Region, name: &str) -> Arc<wiera::WieraClient> {
    wiera::WieraClient::builder(b.cluster.data_mesh.clone(), region, name)
        .fleet(b.fleet.view())
        .max_attempts(40)
        .build()
}

fn run_fleet_sharded_routing() -> Vec<Diagnostic> {
    let b = match fleet_bench("chk-fleet", 2, 2000.0) {
        Ok(b) => b,
        Err(e) => return err_diag("launch", e),
    };
    let east = fleet_client(&b, Region::UsEast, "app-e");
    let west = fleet_client(&b, Region::UsWest, "app-w");
    let keys: Vec<String> = (0..8).map(|i| format!("f{i}")).collect();
    // Interleaved single-key writes from both regions: each key's history
    // lives entirely inside its owning group, and must linearize there.
    for round in 0..2u8 {
        for (i, key) in keys.iter().enumerate() {
            let client = if i % 2 == 0 { &east } else { &west };
            if let Err(e) = client.put(key, Bytes::from(vec![(round << 4) | i as u8; 64])) {
                return fleet_collect(b, err_diag("put", e));
            }
        }
        quiesce(15);
    }
    // One batch per side: split per owning group, fanned out concurrently.
    let items: Vec<(String, Bytes)> = keys
        .iter()
        .map(|k| (k.clone(), Bytes::from(vec![0xF0; 64])))
        .collect();
    match east.put_batch(&items) {
        Ok(results) => {
            if let Some(e) = results.into_iter().filter_map(Result::err).next() {
                return fleet_collect(b, err_diag("batch put", e));
            }
        }
        Err(e) => return fleet_collect(b, err_diag("batch put", e)),
    }
    quiesce(40);
    for client in [&east, &west] {
        match client.get_batch(&keys) {
            Ok(results) => {
                if let Some(e) = results.into_iter().filter_map(Result::err).next() {
                    return fleet_collect(b, err_diag("batch get", e));
                }
            }
            Err(e) => return fleet_collect(b, err_diag("batch get", e)),
        }
    }
    fleet_collect(b, Vec::new())
}

fn run_fleet_shard_move() -> Vec<Diagnostic> {
    let b = match fleet_bench("chk-move", 2, 2000.0) {
        Ok(b) => b,
        Err(e) => return err_diag("launch", e),
    };
    let client = fleet_client(&b, Region::UsEast, "app-m");
    // Keys all in one group-0 shard, so the move window covers them.
    let map = b.fleet.view().map();
    let shard = map.shards_of_group(0)[0];
    let keys: Vec<String> = (0..)
        .map(|i| format!("mv{i}"))
        .filter(|k| map.shard_of(k) == shard)
        .take(5)
        .collect();
    for key in &keys {
        if let Err(e) = client.put(key, Bytes::from(vec![0x01; 64])) {
            return fleet_collect(b, err_diag("seed put", e));
        }
    }

    // Chaos: a target-group backup is down for the whole handoff. The move
    // must still complete (the target primary carries the install) and the
    // restarted backup must converge through rejoin anti-entropy plus a
    // shard-view refresh.
    let target_reps = b.cluster.deployment_replicas("chk-move-g1");
    let Some(backup) = target_reps
        .iter()
        .find(|r| r.primary() != Some(r.node.clone()))
        .cloned()
    else {
        return fleet_collect(b, err_diag("setup", "target group has no backup"));
    };
    backup.crash();

    // Concurrent writers hammer the moving shard; every ack is recorded.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let (acked, move_result) = std::thread::scope(|s| {
        let writer = s.spawn(|| {
            let mut acked: Vec<(String, u64)> = Vec::new();
            let mut round = 0u8;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                for key in &keys {
                    if let Ok(view) = client.put(key, Bytes::from(vec![round; 64])) {
                        acked.push((key.clone(), view.version));
                    }
                }
                round = round.wrapping_add(1);
            }
            acked
        });
        let move_result = b.fleet.move_shard(shard, 1);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        (writer.join().unwrap_or_default(), move_result)
    });
    if let Err(e) = move_result {
        return fleet_collect(b, err_diag("move_shard", e));
    }

    // Heal: restart the crashed backup, let rejoin anti-entropy pull the
    // moved objects, and re-push the current shard map slice.
    let mut extra = Vec::new();
    if let Err(e) = backup.restart() {
        extra.push(Diagnostic::note(
            Code::Wc013,
            format!("backup restart failed ({e}); heal incomplete"),
        ));
    }
    quiesce(60);
    for r in &target_reps {
        r.anti_entropy();
    }
    b.fleet.refresh_shard_views();
    quiesce(40);

    // Every acked write must be readable at an equal-or-newer version
    // through the re-routed client: a WrongShard window is retried, never
    // a lost ack.
    if acked.is_empty() {
        extra.push(Diagnostic::note(
            Code::Wc013,
            "no write was acked during the move; handoff window unchecked",
        ));
    }
    for (key, version) in &acked {
        match client.get(key) {
            Ok(view) if view.version >= *version => {}
            Ok(view) => extra.push(Diagnostic::deny(
                Code::Wc010,
                format!(
                    "acked write lost across shard move: {key} acked at \
                     v{version}, target serves v{}",
                    view.version
                ),
            )),
            Err(e) => extra.push(Diagnostic::deny(
                Code::Wc010,
                format!("acked key {key} unreadable after shard move: {e}"),
            )),
        }
    }

    // Post-heal digest equality across the target group (the moved shard's
    // new home), including the restarted backup.
    let tables: Vec<Vec<(String, u64, u64)>> = target_reps
        .iter()
        .map(|r| {
            let mut t: Vec<(String, u64, u64)> = r
                .digest_table()
                .into_iter()
                .map(|e| (e.key, e.version, e.digest))
                .collect();
            t.sort();
            t
        })
        .collect();
    if !tables.windows(2).all(|w| w[0] == w[1]) {
        extra.push(Diagnostic::deny(
            Code::Wc012,
            "target group digest mismatch after shard move + heal",
        ));
    }
    // And the source group retired the shard: no moved key lingers there.
    for r in b.cluster.deployment_replicas("chk-move-g0") {
        for e in r.digest_table() {
            if keys.contains(&e.key) {
                extra.push(Diagnostic::deny(
                    Code::Wc012,
                    format!("moved key {} not retired from source {}", e.key, r.node),
                ));
            }
        }
    }
    fleet_collect(b, extra)
}

// ---- adversarial -----------------------------------------------------------

fn run_adv_abba() -> Vec<Diagnostic> {
    // Scoped registry: the plant must not leak WC001 into corpus runs.
    let reg = LockRegistry::new();
    let a = Arc::new(TrackedMutex::new_in(&reg, "adv.lock-a", 0u32));
    let b = Arc::new(TrackedMutex::new_in(&reg, "adv.lock-b", 0u32));

    // Thread 1: a → b. Thread 2 (started only after 1 finished, so the
    // orders never interleave): b → a. A dynamic detector would see
    // nothing; the order graph still has the cycle.
    let (a1, b1) = (a.clone(), b.clone());
    let t1 = std::thread::spawn(move || {
        let ga = a1.lock();
        let gb = b1.lock();
        drop(gb);
        drop(ga);
    });
    let _ = t1.join();
    let t2 = std::thread::spawn(move || {
        let gb = b.lock();
        let ga = a.lock();
        drop(ga);
        drop(gb);
    });
    let _ = t2.join();

    registry_diagnostics(&reg)
}

fn run_adv_stale_read() -> Vec<Diagnostic> {
    // A synthetic history in the exact format the replicas record, checked
    // against the model deduced from the real sync primary-backup policy.
    let model = deduced_model(&policy_src(
        "adv-pb",
        &[("US-East", true), ("US-West", false)],
        bodies::PRIMARY_BACKUP_SYNC,
    ));
    let span = |t: u64, dur: u64, op: &str, node: &str, ver: u64, val: u64| TraceEvent {
        t_us: t,
        subsystem: "history".into(),
        op: op.into(),
        region: None,
        node: Some(node.into()),
        dur_us: Some(dur),
        detail: Some(format!("key=k ver={ver} val={val:016x}")),
    };
    let events = vec![
        span(0, 100_000, "put", "primary", 1, 0xaaaa),
        span(50_000, 1_000, "replicate_apply", "backup", 1, 0xaaaa),
        span(200_000, 100_000, "put", "primary", 2, 0xbbbb),
        // The v2 replicate never lands at the backup, and the backup then
        // serves v1 after v2's write completed: a stale read.
        span(400_000, 10_000, "get", "backup", 1, 0xaaaa),
    ];
    let (history, mut diags) = extract_history(&events);
    diags.extend(check_history(&history, model));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_abba_is_detected() {
        let report = run_scenario("adv-abba-deadlock").unwrap();
        assert!(
            report.detected_all(&[Code::Wc001]),
            "planted ABBA not flagged: {:?}",
            report.diags
        );
    }

    #[test]
    fn adversarial_stale_read_is_detected() {
        let report = run_scenario("adv-stale-read-pb-sync").unwrap();
        assert!(
            report.detected_all(&[Code::Wc010]),
            "planted stale read not flagged: {:?}",
            report.diags
        );
        assert!(report
            .diags
            .iter()
            .any(|d| d.message.contains("stale read")));
    }

    #[test]
    fn scenario_names_are_unique_and_resolvable() {
        let mut names: Vec<&str> = all_scenarios().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all_scenarios().len());
        assert!(run_scenario("no-such-scenario").is_none());
    }
}
