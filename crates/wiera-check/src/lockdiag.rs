//! Lock-order graph → WC00x diagnostics.
//!
//! The heavy lifting (edge recording, Tarjan SCC) lives in
//! [`wiera_sim::lockreg`]; this module only renders its reports as the
//! stable diagnostics the CLI and CI consume. Messages carry class names
//! and shape only — acquisition sites (file:line, captured by
//! `#[track_caller]`) go into notes, so golden files don't churn when
//! unrelated code moves.

use wiera_policy::diag::{Code, Diagnostic};
use wiera_sim::lockreg::LockRegistry;

/// All findings the given registry currently implies.
///
/// * WC001 (deny) — one diagnostic per strongly connected component of the
///   lock-order graph: a potential deadlock, even if never interleaved.
/// * WC002 (warn) — two distinct instances of one class held at once with
///   no intra-class order.
/// * WC003 (warn) — a replayed release with no matching acquisition.
pub fn registry_diagnostics(registry: &LockRegistry) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    for cycle in registry.cycles() {
        let mut d = Diagnostic::deny(
            Code::Wc001,
            format!(
                "lock-order cycle among {{{}}} ({} edge{})",
                cycle.classes.join(", "),
                cycle.edges.len(),
                if cycle.edges.len() == 1 { "" } else { "s" },
            ),
        );
        for e in &cycle.edges {
            d = d.with_note(format!(
                "{} (held at {}) -> {} (acquired at {})",
                e.from, e.held_site, e.to, e.acquire_site
            ));
        }
        d = d.with_note(
            "two threads taking these classes in opposing orders can deadlock \
             even if this run never interleaved them",
        );
        out.push(d);
    }

    let snap = registry.snapshot();
    for sc in &snap.same_class {
        out.push(
            Diagnostic::warn(
                Code::Wc002,
                format!(
                    "two instances of lock class '{}' held by one thread",
                    sc.class
                ),
            )
            .with_note(format!(
                "first held at {}, second acquired at {}",
                sc.held_site, sc.acquire_site
            ))
            .with_note("distinct instances of one class have no recorded order; acquire them in a global order (e.g. by address) or merge them"),
        );
    }
    for imb in &snap.imbalances {
        out.push(
            Diagnostic::warn(
                Code::Wc003,
                format!("release of '{}' without a matching acquire", imb.class),
            )
            .with_note(imb.detail.clone()),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_policy::diag::Severity;

    #[test]
    fn cycle_renders_as_wc001_deny() {
        let reg = LockRegistry::new();
        reg.replay_acquire("t.a", 0, "x:1");
        reg.replay_acquire("t.b", 0, "x:2");
        reg.replay_release("t.b", 0);
        reg.replay_release("t.a", 0);
        reg.replay_acquire("t.b", 0, "x:3");
        reg.replay_acquire("t.a", 0, "x:4");
        reg.replay_release("t.a", 0);
        reg.replay_release("t.b", 0);
        let diags = registry_diagnostics(&reg);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::Wc001);
        assert_eq!(diags[0].severity, Severity::Deny);
        assert!(diags[0].message.contains("t.a"));
        assert!(diags[0].message.contains("t.b"));
        assert!(!diags[0].message.contains("x:1"), "sites belong in notes");
    }

    #[test]
    fn clean_registry_has_no_findings() {
        let reg = LockRegistry::new();
        reg.replay_acquire("t.a", 0, "x:1");
        reg.replay_acquire("t.b", 0, "x:2");
        reg.replay_release("t.b", 0);
        reg.replay_release("t.a", 0);
        assert!(registry_diagnostics(&reg).is_empty());
    }

    #[test]
    fn imbalance_renders_as_wc003() {
        let reg = LockRegistry::new();
        reg.replay_release("t.z", 0);
        let diags = registry_diagnostics(&reg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::Wc003);
    }
}
