#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Runtime correctness checker for the Wiera reproduction.
//!
//! wiera-lint (PR 2) verifies policies *before* they run; this crate checks
//! the *runtime* that executes them, in two complementary ways:
//!
//! * [`lockdiag`] — turns the lock-order graph recorded by
//!   [`wiera_sim::lockreg`] (every `TrackedMutex`/`TrackedRwLock` acquisition
//!   in `wiera-coord`, `wiera` and `tiera` feeds it) into structured WC0xx
//!   diagnostics: Tarjan-SCC cycles are *potential* deadlocks (WC001,
//!   TSan-style — ABBA is reported even if the two orders never interleaved),
//!   same-class nesting is WC002, release imbalance is WC003.
//! * [`history`] — a consistency-history oracle. Replicas record
//!   `put`/`get`/`replicate_apply` events on the modeled-time axis through
//!   the [`wiera_sim::Tracer`]; the oracle replays that history against the
//!   policy's *deduced* [`wiera_policy::ConsistencyModel`]: a Wing–Gong-style
//!   interval linearizability check for `PrimaryBackup {{ sync: true }}` and
//!   locked `MultiPrimaries` (WC010), read-your-writes (WC011) plus eventual
//!   convergence (WC012) for `Eventual`.
//! * [`scenarios`] — a canned corpus of whole-cluster scenarios (including
//!   outage and session-expiry fault injection) that must check clean, and
//!   adversarial scenarios with *planted* bugs (an ABBA deadlock, a stale
//!   read under sync primary-backup) that the checker must flag — the
//!   self-test that keeps the oracle honest.
//! * [`modelbridge`] — the runtime↔static soundness gate: lock edges the
//!   runtime lockreg observed must be a subset of the statically derived
//!   edge set, and every recorded history op kind must map to a handler
//!   transition in the extracted protocol model (`wiera-audit`), so the
//!   `wiera-model` checker's verdicts are not vacuous. Run it with
//!   `wiera-check --soundness`.
//! * [`chaos`] — a seeded chaos campaign (§4.4): randomized fault scripts
//!   (primary/backup crashes, partitions, coordination-session expiry,
//!   degraded tiers) against every consistency protocol, gated on zero
//!   findings plus post-heal digest-equal convergence. Replayable from a
//!   single seed via `wiera-check --chaos <seed>`.
//!
//! The `wiera-check` binary mirrors `wiera-lint`'s UX: `--json`,
//! `--deny-warnings`, exit status `0` clean / `1` gating findings / `2`
//! usage error. Diagnostics reuse `wiera_policy::diag` (stable codes,
//! severities, JSON); the caret renderer is meaningless here — sites are
//! source locations captured by `#[track_caller]`, carried in notes.

pub mod chaos;
pub mod history;
pub mod lockdiag;
pub mod modelbridge;
pub mod scenarios;

pub use chaos::{run_campaign, ChaosReport};
pub use history::{check_history, extract_history, HistoryEvent, HistoryKind};
pub use lockdiag::registry_diagnostics;
pub use modelbridge::{soundness, workspace_model, SoundnessReport};
pub use scenarios::{all_scenarios, run_scenario, Scenario, ScenarioKind, ScenarioReport};
