//! Runtime↔static soundness gate: what the harness observes at runtime
//! must be a subset of what the static layers extracted.
//!
//! The extracted protocol model (wiera-audit's `protocol` module) and the
//! static lock-order edge set (`wiera_audit::checks::lock_edges`) are the
//! universes `wiera-model` explores and WS100 cycles over. If a real
//! execution exhibits a lock edge or a history operation the static
//! layer never derived, the model checker's "no violations" verdict is
//! vacuous for that behavior — extraction has a hole. This module turns
//! that containment into a checkable gate:
//!
//! * **lock edges** — every `(held, acquired)` class pair recorded by the
//!   runtime [`wiera_sim::lockreg::LockRegistry`] must appear among the
//!   statically derived edges;
//! * **operations** — every history op kind the tracer recorded
//!   (put/get/replicate-apply) must map to a `DataMsg` variant some
//!   extracted handler transition handles.
//!
//! The gate is one-directional by design: the static set over-approximates
//! (widening), so static-only edges are expected; runtime-only edges are
//! the bug.

use crate::history::{HistoryEvent, HistoryKind};
use std::collections::BTreeSet;
use std::path::Path;
use wiera_audit::callgraph::{Config, Model};
use wiera_audit::checks::lock_edges;
use wiera_audit::items::SourceFile;
use wiera_audit::protocol::{extract, ProtocolModel};
use wiera_audit::workspace;
use wiera_sim::lockreg::LockOrderSnapshot;

/// Result of one soundness comparison.
#[derive(Debug, Default)]
pub struct SoundnessReport {
    /// Statically derived lock-order edges.
    pub static_lock_edges: usize,
    /// Runtime-observed lock-order edges.
    pub runtime_lock_edges: usize,
    /// Runtime edges missing from the static set — extraction holes.
    pub unsound_lock_edges: Vec<(String, String)>,
    /// `DataMsg`/`CoordMsg` variants extracted handler arms cover.
    pub handled_variants: usize,
    /// Runtime history operations checked.
    pub history_ops: usize,
    /// History op kinds no extracted transition handles.
    pub unsound_ops: Vec<String>,
}

impl SoundnessReport {
    /// The runtime stayed inside the extracted model.
    pub fn sound(&self) -> bool {
        self.unsound_lock_edges.is_empty() && self.unsound_ops.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = format!(
            "soundness: {} runtime lock edges vs {} static; {} history ops vs \
             {} handled variants: {}\n",
            self.runtime_lock_edges,
            self.static_lock_edges,
            self.history_ops,
            self.handled_variants,
            if self.sound() { "SOUND" } else { "UNSOUND" }
        );
        for (a, b) in &self.unsound_lock_edges {
            out.push_str(&format!(
                "  runtime lock edge '{a}' -> '{b}' has no static counterpart\n"
            ));
        }
        for op in &self.unsound_ops {
            out.push_str(&format!(
                "  runtime op kind '{op}' is handled by no extracted transition\n"
            ));
        }
        out
    }
}

/// Build the static model + protocol extraction for the workspace that
/// contains `start` (walks up to the `[workspace]` manifest).
pub fn workspace_model(start: &Path) -> Result<(Model, ProtocolModel), String> {
    let root = workspace::find_root(start)
        .ok_or_else(|| format!("no workspace root above {}", start.display()))?;
    let inputs = workspace::discover_workspace(&root);
    if inputs.is_empty() {
        return Err(format!("no sources under {}", root.display()));
    }
    let files: Vec<SourceFile> = inputs
        .into_iter()
        .map(|i| SourceFile::new(i.origin, i.crate_name, i.src))
        .collect();
    let model = Model::build(files, Config::default());
    let pm = extract(&model);
    Ok((model, pm))
}

/// The `DataMsg` variant a runtime history op kind corresponds to.
fn variant_of(kind: HistoryKind) -> &'static str {
    match kind {
        HistoryKind::Put => "Put",
        HistoryKind::Get => "Get",
        HistoryKind::ReplicateApply => "Replicate",
    }
}

/// Compare a runtime lock snapshot and history against the static model.
pub fn soundness(
    model: &Model,
    pm: &ProtocolModel,
    lock_snapshot: &LockOrderSnapshot,
    history: &[HistoryEvent],
) -> SoundnessReport {
    let static_edges = lock_edges(model);
    let runtime_edges: BTreeSet<(String, String)> = lock_snapshot
        .edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    let unsound_lock_edges: Vec<(String, String)> = runtime_edges
        .iter()
        .filter(|e| !static_edges.contains(*e))
        .cloned()
        .collect();

    let handled = pm.handled_variants();
    let mut unsound_ops: BTreeSet<String> = BTreeSet::new();
    for ev in history {
        let v = variant_of(ev.kind);
        if !handled.contains(v) {
            unsound_ops.insert(v.to_string());
        }
    }

    SoundnessReport {
        static_lock_edges: static_edges.len(),
        runtime_lock_edges: runtime_edges.len(),
        unsound_lock_edges,
        handled_variants: handled.len(),
        history_ops: history.len(),
        unsound_ops: unsound_ops.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_sim::lockreg::EdgeSnapshot;

    fn tiny_model(src: &str) -> (Model, ProtocolModel) {
        let file = SourceFile::new("t.rs".into(), "t".into(), src.to_string());
        let m = Model::build(vec![file], Config::default());
        let pm = extract(&m);
        (m, pm)
    }

    const HANDLER: &str = "\
        enum DataMsg { Put { k: String }, Get { k: String }, Replicate { k: String, epoch: u64 }, PutAck, GetReply }\n\
        impl N { fn handle_op(&self, d: DataMsg) { match d {\n\
          DataMsg::Put { k } => { self.inst.put(&k); reply2(DataMsg::PutAck); }\n\
          DataMsg::Get { k } => { reply2(DataMsg::GetReply); }\n\
          DataMsg::Replicate { k, epoch } => { if epoch < self.epoch() { return; } self.inst.apply_replicated(&k); reply2(DataMsg::PutAck); }\n\
        } } fn epoch(&self) -> u64 { 0 } }\n";

    fn snap(edges: &[(&str, &str)]) -> LockOrderSnapshot {
        LockOrderSnapshot {
            edges: edges
                .iter()
                .map(|(a, b)| EdgeSnapshot {
                    from: (*a).to_string(),
                    to: (*b).to_string(),
                    held_site: String::new(),
                    acquire_site: String::new(),
                    count: 1,
                })
                .collect(),
            ..LockOrderSnapshot::default()
        }
    }

    fn hist(kind: HistoryKind) -> HistoryEvent {
        HistoryEvent {
            kind,
            key: "k".into(),
            version: 1,
            digest: 0,
            node: "n".into(),
            start_us: 0,
            end_us: 1,
            degraded: false,
        }
    }

    #[test]
    fn covered_ops_and_edges_are_sound() {
        let (m, pm) = tiny_model(HANDLER);
        let r = soundness(
            &m,
            &pm,
            &snap(&[]),
            &[hist(HistoryKind::Put), hist(HistoryKind::ReplicateApply)],
        );
        assert!(r.sound(), "{}", r.render());
        assert_eq!(r.history_ops, 2);
    }

    #[test]
    fn runtime_only_lock_edge_is_flagged() {
        let (m, pm) = tiny_model(HANDLER);
        let r = soundness(&m, &pm, &snap(&[("ghost.a", "ghost.b")]), &[]);
        assert!(!r.sound());
        assert_eq!(
            r.unsound_lock_edges,
            vec![("ghost.a".to_string(), "ghost.b".to_string())]
        );
        assert!(r.render().contains("no static counterpart"));
    }

    #[test]
    fn unhandled_op_kind_is_flagged() {
        let (m, pm) = tiny_model(
            "enum DataMsg { Get { k: String }, GetReply }\n\
             impl N { fn handle_op(&self, d: DataMsg) { match d {\n\
               DataMsg::Get { k } => { reply2(DataMsg::GetReply); }\n\
             } } }\n",
        );
        let r = soundness(&m, &pm, &snap(&[]), &[hist(HistoryKind::Put)]);
        assert!(!r.sound());
        assert_eq!(r.unsound_ops, vec!["Put".to_string()]);
    }
}
