//! `wiera-check` — runtime concurrency + consistency checking.
//!
//! ```text
//! wiera-check [--json] [--deny-warnings] [--adversarial] [--scenario NAME]
//! ```
//!
//! By default runs the canned scenario corpus: real multi-region clusters
//! exercising the paper's three consistency protocols (plus outage and
//! session-expiry fault injection), checked by the lock-order cycle
//! detector and the consistency-history oracle. Findings print one per
//! line (`WC001 deny -:- message`), or as a JSON array with `--json`.
//!
//! `--adversarial` runs the planted-bug self-test instead: every
//! adversarial scenario must produce its expected WC codes, otherwise the
//! checker itself has regressed.
//!
//! `--chaos SEED` runs the seeded chaos campaign instead of the corpus:
//! randomized fault scripts against every consistency protocol, gated on
//! post-heal convergence plus zero oracle findings. The seed fully
//! determines the fault script, so a failing campaign is replayable.
//!
//! `--soundness` cross-validates runtime against statics: every lock-order
//! edge the corpus scenarios exercise at runtime must be a subset of the
//! statically derived edge set, and every recorded history op kind must be
//! handled by an extracted protocol transition — otherwise `wiera-model`'s
//! clean verdicts are vacuous for the uncovered behavior.
//!
//! Exit status: `0` clean (or, under `--adversarial`, all plants detected),
//! `1` gating findings (or a missed plant, or a failed chaos campaign),
//! `2` usage error.

use std::process::ExitCode;
use wiera_check::chaos::run_campaign;
use wiera_check::history::extract_history;
use wiera_check::modelbridge::{soundness, workspace_model};
use wiera_check::scenarios::{all_scenarios, run_scenario, ScenarioKind};
use wiera_policy::diag::{worst_is_deny, Diagnostic, Severity};
use wiera_sim::lockreg::LockRegistry;
use wiera_sim::Tracer;

const USAGE: &str = "\
usage: wiera-check [--json] [--deny-warnings] [--adversarial] [--scenario NAME]
                   [--chaos SEED]

  --json           print findings as a JSON array instead of human text
  --deny-warnings  exit non-zero on warnings too (notes never gate)
  --adversarial    self-test: run the planted-bug scenarios and verify each
                   expected WC code is reported
  --scenario NAME  run a single scenario by name (corpus or adversarial)
  --chaos SEED     run the seeded chaos campaign (every protocol, randomized
                   faults) instead of the scenario corpus
  --soundness      run the corpus and gate every runtime lock edge / history
                   op against the statically extracted model (wiera-audit)
  --list           list scenarios and exit
  --codes          list all WC diagnostic codes and exit
";

struct Options {
    json: bool,
    deny_warnings: bool,
    adversarial: bool,
    scenario: Option<String>,
    chaos: Option<u64>,
    soundness: bool,
    list: bool,
    codes: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        deny_warnings: false,
        adversarial: false,
        scenario: None,
        chaos: None,
        soundness: false,
        list: false,
        codes: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--adversarial" => opts.adversarial = true,
            "--soundness" => opts.soundness = true,
            "--list" => opts.list = true,
            "--codes" => opts.codes = true,
            "--scenario" => {
                opts.scenario = Some(
                    it.next()
                        .ok_or_else(|| "--scenario needs a name".to_string())?
                        .clone(),
                );
            }
            "--chaos" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--chaos needs a seed".to_string())?;
                opts.chaos = Some(
                    raw.parse::<u64>()
                        .map_err(|_| format!("--chaos seed '{raw}' is not a u64"))?,
                );
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("wiera-check: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.codes {
        for code in wiera_policy::diag::ALL_CHECK_CODES {
            println!("{}  {}", code.as_str(), code.describe());
        }
        return ExitCode::SUCCESS;
    }
    if opts.list {
        for s in all_scenarios() {
            println!(
                "{:<24} [{}] {}",
                s.name,
                match s.kind {
                    ScenarioKind::Corpus => "corpus",
                    ScenarioKind::Adversarial => "adversarial",
                },
                s.describe
            );
        }
        return ExitCode::SUCCESS;
    }

    if let Some(seed) = opts.chaos {
        return run_chaos(seed, &opts);
    }
    if opts.soundness {
        return run_soundness();
    }

    let selected: Vec<&'static str> = match (&opts.scenario, opts.adversarial) {
        (Some(name), _) => {
            if all_scenarios().iter().all(|s| s.name != *name) {
                eprintln!("wiera-check: unknown scenario '{name}' (try --list)");
                return ExitCode::from(2);
            }
            vec![all_scenarios()
                .iter()
                .find(|s| s.name == *name)
                .map(|s| s.name)
                .unwrap_or_default()]
        }
        (None, true) => all_scenarios()
            .iter()
            .filter(|s| s.kind == ScenarioKind::Adversarial)
            .map(|s| s.name)
            .collect(),
        (None, false) => all_scenarios()
            .iter()
            .filter(|s| s.kind == ScenarioKind::Corpus)
            .map(|s| s.name)
            .collect(),
    };

    let mut gating = false;
    let mut missed_plants = false;
    let mut json_items: Vec<String> = Vec::new();
    let mut counts = (0usize, 0usize, 0usize); // deny, warn, note
    for name in &selected {
        let Some(report) = run_scenario(name) else {
            eprintln!("wiera-check: unknown scenario '{name}'");
            return ExitCode::from(2);
        };
        let origin = format!("scenario:{name}");
        let scenario = all_scenarios()
            .iter()
            .find(|s| s.name == *name)
            .unwrap_or(&all_scenarios()[0]);
        match report.kind {
            ScenarioKind::Corpus => {
                gating |= worst_is_deny(&report.diags, opts.deny_warnings);
            }
            ScenarioKind::Adversarial => {
                if !report.detected_all(scenario.expect) {
                    missed_plants = true;
                    eprintln!(
                        "wiera-check: scenario '{name}' FAILED to report {:?}",
                        scenario.expect
                    );
                }
            }
        }
        for d in &report.diags {
            match d.severity {
                Severity::Deny => counts.0 += 1,
                Severity::Warn => counts.1 += 1,
                Severity::Note => counts.2 += 1,
            }
            if opts.json {
                json_items.push(diag_json(&origin, d));
            } else {
                println!("{origin}: {}", d.compact());
                for note in &d.notes {
                    println!("  note: {note}");
                }
            }
        }
        if report.kind == ScenarioKind::Adversarial && !opts.json {
            println!(
                "{origin}: planted {:?} {}",
                scenario.expect,
                if report.detected_all(scenario.expect) {
                    "detected"
                } else {
                    "MISSED"
                }
            );
        }
    }

    if opts.json {
        println!("[{}]", json_items.join(","));
    } else {
        let (deny, warn, note) = counts;
        println!(
            "{} scenario{} checked: {deny} deny, {warn} warning{}, {note} note{}",
            selected.len(),
            if selected.len() == 1 { "" } else { "s" },
            if warn == 1 { "" } else { "s" },
            if note == 1 { "" } else { "s" },
        );
    }

    if gating || missed_plants {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Run every corpus scenario and gate its runtime observations against
/// the statically extracted model. Each scenario resets the global
/// tracer/lock registry on entry, so after it returns the globals hold
/// exactly that scenario's lock edges and history.
fn run_soundness() -> ExitCode {
    let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let (model, pm) = match workspace_model(&cwd) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("wiera-check: --soundness: {msg}");
            return ExitCode::from(2);
        }
    };
    let mut unsound = false;
    let corpus: Vec<&'static str> = all_scenarios()
        .iter()
        .filter(|s| s.kind == ScenarioKind::Corpus)
        .map(|s| s.name)
        .collect();
    for name in &corpus {
        if run_scenario(name).is_none() {
            eprintln!("wiera-check: unknown scenario '{name}'");
            return ExitCode::from(2);
        }
        let snapshot = LockRegistry::global().snapshot();
        let (history, _) = extract_history(&Tracer::global().events());
        let report = soundness(&model, &pm, &snapshot, &history);
        unsound |= !report.sound();
        print!("scenario:{name}: {}", report.render());
    }
    println!(
        "soundness gate over {} corpus scenarios: {}",
        corpus.len(),
        if unsound { "UNSOUND" } else { "SOUND" }
    );
    if unsound {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Run the chaos campaign and render one report per protocol.
fn run_chaos(seed: u64, opts: &Options) -> ExitCode {
    let reports = run_campaign(seed);
    let mut failed = false;
    let mut json_items: Vec<String> = Vec::new();
    for r in &reports {
        let origin = format!("chaos:{}", r.protocol);
        let passed = r.passed(opts.deny_warnings);
        failed |= !passed;
        if opts.json {
            let diags: Vec<String> = r.diags.iter().map(|d| d.to_json()).collect();
            let script: Vec<String> = r.script.iter().map(|s| json_escape(s)).collect();
            json_items.push(format!(
                "{{\"origin\":{},\"seed\":{},\"script\":[{}],\"converged\":{},\
                 \"ops_attempted\":{},\"ops_failed\":{},\"passed\":{},\"diags\":[{}]}}",
                json_escape(&origin),
                r.seed,
                script.join(","),
                r.converged,
                r.ops_attempted,
                r.ops_failed,
                passed,
                diags.join(","),
            ));
        } else {
            for step in &r.script {
                println!("{origin}: {step}");
            }
            for d in &r.diags {
                println!("{origin}: {}", d.compact());
                for note in &d.notes {
                    println!("  note: {note}");
                }
            }
            println!(
                "{origin}: seed={} converged={} ops={} (failed={}): {}",
                r.seed,
                r.converged,
                r.ops_attempted,
                r.ops_failed,
                if passed { "PASS" } else { "FAIL" },
            );
        }
    }
    if opts.json {
        println!("[{}]", json_items.join(","));
    } else {
        println!(
            "chaos campaign seed={seed}: {}/{} protocols passed",
            reports
                .iter()
                .filter(|r| r.passed(opts.deny_warnings))
                .count(),
            reports.len(),
        );
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// The diagnostic's own JSON with the scenario origin spliced in.
fn diag_json(origin: &str, d: &Diagnostic) -> String {
    let body = d.to_json();
    let rest = body.strip_prefix('{').unwrap_or(&body);
    format!("{{\"origin\":{},{rest}", json_escape(origin))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
