//! Failure-injection tests for the Tiera instance: tiers going down,
//! degrading, losing volatile contents — the "poorly performing data
//! tiers" and failures Wiera's policies exist to react to.

use bytes::Bytes;
use tiera::{InstanceConfig, TieraError, TieraInstance};
use wiera_net::Region;
use wiera_policy::{compile, parse};
use wiera_sim::{ManualClock, SimDuration};

fn payload(n: usize) -> Bytes {
    Bytes::from(vec![0x77u8; n])
}

#[test]
fn put_surfaces_down_tier() {
    let inst = TieraInstance::build(
        InstanceConfig::new("t", Region::UsEast).with_tier("tier1", "EBS-SSD", 1 << 20),
        ManualClock::new(),
    )
    .unwrap();
    inst.tier("tier1")
        .unwrap()
        .as_local()
        .unwrap()
        .set_down(true);
    match inst.put("k", payload(10)) {
        Err(TieraError::Tier(wiera_tiers::TierError::Down)) => {}
        other => panic!("expected Down, got {other:?}"),
    }
    // Back up: operations resume.
    inst.tier("tier1")
        .unwrap()
        .as_local()
        .unwrap()
        .set_down(false);
    inst.put("k", payload(10)).unwrap();
    assert!(inst.get("k").is_ok());
}

#[test]
fn read_survives_memory_tier_crash_via_replica() {
    // Write-through policy: memory + disk copies. Crash the memory tier:
    // reads must fall back to the disk replica and heal metadata.
    let src = "Tiera T() {
        event(insert.into) : response {
            store(what:insert.object, to:tier1);
            copy(what:insert.object, to:tier2);
        }
    }";
    let compiled = compile(&parse(src).unwrap()).unwrap();
    let inst = TieraInstance::build(
        InstanceConfig::new("t", Region::UsEast)
            .with_tier("tier1", "Memcached", 1 << 20)
            .with_tier("tier2", "EBS-SSD", 1 << 20)
            .with_rules(compiled.rules),
        ManualClock::new(),
    )
    .unwrap();
    inst.put("k", payload(100)).unwrap();
    // Crash memcached: volatile contents are lost, service down.
    let mem = inst.tier("tier1").unwrap().as_local().unwrap();
    mem.set_down(true);
    let got = inst.get("k").unwrap();
    assert_eq!(got.value.unwrap().len(), 100);
    // The read healed the location to the surviving tier.
    inst.meta()
        .with("k", |o| assert_eq!(o.latest().unwrap().location, "tier2"))
        .unwrap();
    // Even after the (empty) memory tier recovers, reads keep working.
    mem.set_down(false);
    assert!(inst.get("k").is_ok());
}

#[test]
fn read_fails_cleanly_when_all_holders_lost() {
    let inst = TieraInstance::build(
        InstanceConfig::new("t", Region::UsEast).with_tier("tier1", "Memcached", 1 << 20),
        ManualClock::new(),
    )
    .unwrap();
    inst.put("k", payload(10)).unwrap();
    // Crash loses the only copy.
    inst.tier("tier1")
        .unwrap()
        .as_local()
        .unwrap()
        .set_down(true);
    assert!(matches!(inst.get("k"), Err(TieraError::NotFound(_))));
}

#[test]
fn degraded_tier_raises_instance_latency() {
    let inst = TieraInstance::build(
        InstanceConfig::new("t", Region::UsEast).with_tier("tier1", "EBS-SSD", 1 << 20),
        ManualClock::new(),
    )
    .unwrap();
    inst.put("k", payload(4096)).unwrap();
    let healthy = inst.get("k").unwrap().latency;
    inst.tier("tier1")
        .unwrap()
        .as_local()
        .unwrap()
        .set_degraded(20.0);
    let degraded = inst.get("k").unwrap().latency;
    assert!(
        degraded.as_millis_f64() > healthy.as_millis_f64() * 5.0,
        "degradation must show through the instance: {healthy} -> {degraded}"
    );
}

#[test]
fn metadata_snapshot_survives_restart() {
    // The BerkeleyDB stand-in: snapshot metadata, restore it, and confirm
    // every version and attribute round-trips.
    let clock = ManualClock::new();
    let inst = TieraInstance::build(
        InstanceConfig::new("t", Region::UsEast).with_tier("tier1", "EBS-SSD", 1 << 20),
        clock.clone(),
    )
    .unwrap();
    inst.put_tagged("a", payload(10), &["tmp"]).unwrap();
    clock.advance(SimDuration::from_secs(5));
    inst.put("a", payload(20)).unwrap();
    inst.put("b", payload(30)).unwrap();

    let image = inst.meta().snapshot();
    let restored = tiera::MetaStore::restore(&image).unwrap();
    assert_eq!(restored.len(), 2);
    restored
        .with("a", |o| {
            assert_eq!(o.versions.len(), 2);
            assert!(o.tags.contains("tmp"));
            assert_eq!(o.latest().unwrap().size, 20);
        })
        .unwrap();
    restored
        .with("b", |o| assert_eq!(o.latest().unwrap().size, 30))
        .unwrap();
}

#[test]
fn full_tier_rejects_but_instance_stays_usable() {
    let inst = TieraInstance::build(
        InstanceConfig::new("t", Region::UsEast).with_tier("tier1", "EBS-SSD", 1000),
        ManualClock::new(),
    )
    .unwrap();
    inst.put("a", payload(800)).unwrap();
    assert!(matches!(
        inst.put("b", payload(800)),
        Err(TieraError::Tier(_))
    ));
    // Existing data still readable; deleting makes room again.
    assert!(inst.get("a").is_ok());
    inst.remove("a").unwrap();
    inst.put("b", payload(800)).unwrap();
}

#[test]
fn glacier_archival_is_cheap_to_write_and_slow_to_read() {
    // Fig. 1(b)'s suggestion: "move data to Glacier instead of S3 ... to
    // reduce the price of cold data". Writes are cheap; retrieval takes
    // modeled hours — policies must keep Glacier off the synchronous path.
    let src = "Tiera T() {
        event(object.lastAccessedTime > 24 hours) : response {
            move(what:object.location == tier1, to:tier2);
        }
    }";
    let compiled = compile(&parse(src).unwrap()).unwrap();
    let clock = ManualClock::new();
    let inst = TieraInstance::build(
        InstanceConfig::new("g", Region::UsEast)
            .with_tier("tier1", "EBS-SSD", 1 << 20)
            .with_tier("tier2", "Glacier", 0)
            .with_rules(compiled.rules),
        clock.clone(),
    )
    .unwrap();
    inst.put("archive-me", payload(4096)).unwrap();
    clock.advance(SimDuration::from_hours(25));
    assert_eq!(inst.run_cold_rules(), 1);
    inst.meta()
        .with("archive-me", |o| {
            assert_eq!(o.latest().unwrap().location, "tier2")
        })
        .unwrap();
    // Retrieval pays the archival penalty: hours of modeled latency.
    let got = inst.get("archive-me").unwrap();
    assert!(
        got.latency > SimDuration::from_hours(1),
        "glacier retrieval should take hours, got {}",
        got.latency
    );
}
