//! Zero-copy data-path test: a value ingested as [`bytes::Bytes`] must not
//! be deep-copied when it hops between tiers. The shim's global copy counter
//! ([`bytes::copied_bytes`]) meters every physical byte copy
//! (`copy_from_slice`, `to_vec`, `Vec<u8>` materialization); clones and
//! `from_static` are refcount bumps and count nothing.
//!
//! This lives alone in its own integration-test binary: the counter is
//! process-global, so sharing a process with unrelated tests that allocate
//! values would pollute the measurement.

use tiera::{InstanceConfig, TieraInstance};
use wiera_net::Region;
use wiera_sim::ScaledClock;

#[test]
fn tier_hop_does_not_deep_copy_the_value() {
    let clock = ScaledClock::shared(1_000_000.0);
    let config = InstanceConfig::new("zc", Region::UsEast)
        .with_tier("mem", "LocalMemory", 1 << 30)
        .with_tier("disk", "EBS-SSD", 1 << 30)
        .with_max_versions(4);
    let inst = TieraInstance::build(config, clock).unwrap();

    // A static value enters the system without a single byte copied.
    static PAYLOAD: &[u8] = &[7u8; 4096];
    let value = bytes::Bytes::from_static(PAYLOAD);

    bytes::reset_copied_bytes();
    let out = inst.put("zc-key", value).unwrap();
    let version = out.version;
    assert_eq!(
        bytes::copied_bytes(),
        0,
        "ingest of a Bytes value must be a handle move, not a memcpy"
    );

    // Tier hop: copy the version from the memory tier to the disk tier.
    // The read returns a refcounted clone and the destination tier stores
    // that same handle — zero physical copies end to end.
    inst.copy_version("zc-key", version, "disk", None).unwrap();
    assert_eq!(
        bytes::copied_bytes(),
        0,
        "copy_version must move the Bytes handle between tiers, not its payload"
    );

    // Moving (copy + delete at source) is equally copy-free.
    inst.move_version("zc-key", version, "mem", None).unwrap();
    assert_eq!(
        bytes::copied_bytes(),
        0,
        "move_version must not deep-copy the payload"
    );

    // Reads hand back the stored handle.
    let got = inst.get("zc-key").unwrap();
    assert_eq!(got.value.unwrap().as_ref(), PAYLOAD);
    assert_eq!(bytes::copied_bytes(), 0, "get must not copy the payload");
}
