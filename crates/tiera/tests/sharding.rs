//! Sharded-engine locking test: `apply_batch` must group items by metastore
//! shard and take each shard's write lock **once** per batch, not once per
//! item. [`MetaStore::write_lock_counts`] meters write acquisitions per
//! shard, so the delta across one batch is directly observable.

use bytes::Bytes;
use tiera::{BatchOp, InstanceConfig, MetaStore, TieraInstance};
use wiera_net::Region;
use wiera_sim::ScaledClock;

#[test]
fn apply_batch_locks_each_shard_at_most_once() {
    let clock = ScaledClock::shared(1_000_000.0);
    let config = InstanceConfig::new("sh", Region::UsEast)
        .with_tier("mem", "LocalMemory", 1 << 30)
        .with_max_versions(2);
    let inst = TieraInstance::build(config, clock).unwrap();

    let keys: Vec<String> = (0..64).map(|i| format!("shard-key-{i:03}")).collect();
    let ops: Vec<BatchOp> = keys
        .iter()
        .map(|k| BatchOp::Put {
            key: k.clone(),
            value: Bytes::from_static(b"v"),
        })
        .collect();

    let meta = inst.meta();
    let distinct_shards: std::collections::BTreeSet<usize> =
        keys.iter().map(|k| meta.shard_of(k)).collect();
    // The point of sharding: 64 spread keys must land on many shards.
    assert!(
        distinct_shards.len() > meta.shard_count() / 2,
        "keys hash to only {} of {} shards",
        distinct_shards.len(),
        meta.shard_count()
    );

    let before = meta.write_lock_counts();
    let (results, _latency) = inst.apply_batch(&ops);
    assert!(results.iter().all(|r| r.is_ok()));
    let after = meta.write_lock_counts();

    let mut total_delta = 0u64;
    for (shard, (b, a)) in before.iter().zip(after.iter()).enumerate() {
        let delta = a - b;
        assert!(
            delta <= 1,
            "shard {shard} write-locked {delta} times in one batch (want ≤1)"
        );
        total_delta += delta;
    }
    assert_eq!(
        total_delta,
        distinct_shards.len() as u64,
        "one lock session per shard touched by the batch"
    );
}

#[test]
fn same_key_ordering_is_preserved_within_a_batch() {
    // Two puts to the same key inside one batch must version-chain in
    // request order — the shard grouping processes within-shard items in
    // their original sequence.
    let clock = ScaledClock::shared(1_000_000.0);
    let config = InstanceConfig::new("sh2", Region::UsEast)
        .with_tier("mem", "LocalMemory", 1 << 30)
        .with_max_versions(4);
    let inst = TieraInstance::build(config, clock).unwrap();

    let ops = vec![
        BatchOp::Put {
            key: "dup".into(),
            value: Bytes::from_static(b"first"),
        },
        BatchOp::Put {
            key: "dup".into(),
            value: Bytes::from_static(b"second"),
        },
        BatchOp::Get { key: "dup".into() },
    ];
    let (results, _latency) = inst.apply_batch(&ops);
    let versions: Vec<u64> = results[..2]
        .iter()
        .map(|r| r.as_ref().unwrap().version)
        .collect();
    assert_eq!(versions, vec![1, 2], "same-key puts chain in request order");
    let got = results[2].as_ref().unwrap();
    assert_eq!(got.value.as_ref().unwrap().as_ref(), b"second");
}

#[test]
fn shard_of_is_stable_and_spread() {
    let ms = MetaStore::new();
    // Stability: the same key always maps to the same shard.
    for k in ["a", "abc", "shard-key-000", "zzz"] {
        assert_eq!(ms.shard_of(k), ms.shard_of(k));
        assert!(ms.shard_of(k) < ms.shard_count());
    }
}
