//! The Tiera instance: a policy-driven stack of storage tiers in one DC.
//!
//! The instance exposes Table 2's versioning API (put/get/getVersion/
//! getVersionList/update/remove/removeVersion) plus the replicated-update
//! entry point Wiera uses, and interprets compiled policy rules:
//!
//! * **insert rules** run synchronously on the put path (write-through
//!   copies are part of put latency, matching Fig. 1(b));
//! * **timer / tier-filled / cold-data rules** run as background maintenance
//!   (write-back flushes, capacity-triggered backups with bandwidth limits,
//!   cold-data migration) — driven by [`crate::engine::InstanceEngine`] or
//!   invoked directly by tests.
//!
//! All operations return their modeled latency; when `sleep_on_ops` is set
//! the calling thread also sleeps the scaled wall time so experiment
//! timelines stay aligned with modeled time.

use crate::metastore::{MetaShardGuard, MetaStore};
use crate::object::{storage_key, ObjectMeta, VersionId, VersionMeta};
use crate::transform;
use bytes::Bytes;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wiera_net::Region;
use wiera_policy::compile::{
    Action, CondValue, Condition, Env, EnvValue, EventKind, Rule, Selector, Target, TierLayout,
};
use wiera_sim::lockreg::TrackedMutex;
use wiera_sim::{
    BreakerConfig, BreakerState, CircuitBreaker, SharedClock, SimDuration, SimInstant, SimRng,
};
use wiera_tiers::{SimTier, TierError, TierKind, TierSpec};

/// Metadata bookkeeping cost charged to every standalone data operation.
const META_OVERHEAD: SimDuration = SimDuration::from_micros(150);
/// Marginal metadata cost per item inside a batch: the batch pays
/// [`META_OVERHEAD`] once, then this per item.
const BATCH_ITEM_OVERHEAD: SimDuration = SimDuration::from_micros(10);

/// Errors surfaced by instance operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TieraError {
    NotFound(String),
    VersionNotFound(String, VersionId),
    Tier(TierError),
    NoSuchTier(String),
    ReadOnlyTier(String),
    Corrupt(String),
    /// The thread-scoped op budget (see [`crate::deadline`]) ran out before
    /// the operation started; no work was done.
    DeadlineExceeded,
}

impl std::fmt::Display for TieraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TieraError::NotFound(k) => write!(f, "object '{k}' not found"),
            TieraError::VersionNotFound(k, v) => write!(f, "'{k}' has no version {v}"),
            TieraError::Tier(e) => write!(f, "tier error: {e}"),
            TieraError::NoSuchTier(t) => write!(f, "no tier labeled '{t}'"),
            TieraError::ReadOnlyTier(t) => write!(f, "tier '{t}' is read-only"),
            TieraError::Corrupt(w) => write!(f, "corrupt object data: {w}"),
            TieraError::DeadlineExceeded => write!(f, "op budget spent before the operation ran"),
        }
    }
}

impl std::error::Error for TieraError {}

impl From<TierError> for TieraError {
    fn from(e: TierError) -> Self {
        TieraError::Tier(e)
    }
}

/// Result of a data operation: the value (for reads), the version touched,
/// and the modeled latency of the whole operation.
#[derive(Debug, Clone)]
pub struct OpOutcome {
    pub value: Option<Bytes>,
    pub version: VersionId,
    pub latency: SimDuration,
}

/// One item of a bulk batch submitted through [`TieraInstance::apply_batch`].
#[derive(Debug, Clone)]
pub enum BatchOp {
    Put { key: String, value: Bytes },
    Get { key: String },
}

/// A storage tier slot inside an instance: a simulated cloud service, or —
/// for §3.2.2's modular instances — another whole Tiera instance mounted as
/// a (typically read-only) tier.
pub enum TierHandle {
    Local(Arc<SimTier>),
    Instance {
        inst: Arc<TieraInstance>,
        read_only: bool,
    },
}

impl TierHandle {
    fn put(&self, key: &str, val: Bytes) -> Result<SimDuration, TieraError> {
        match self {
            TierHandle::Local(t) => Ok(t.put(key, val)?),
            TierHandle::Instance { inst, read_only } => {
                if *read_only {
                    return Err(TieraError::ReadOnlyTier(inst.name().to_string()));
                }
                let out = inst.put(key, val)?;
                Ok(out.latency)
            }
        }
    }

    fn get(&self, key: &str) -> Result<(Bytes, SimDuration), TieraError> {
        match self {
            TierHandle::Local(t) => Ok(t.get(key)?),
            TierHandle::Instance { inst, .. } => {
                let out = inst.get(key)?;
                let value = out.value.ok_or_else(|| {
                    TieraError::Corrupt(format!("instance get of '{key}' returned no bytes"))
                })?;
                Ok((value, out.latency))
            }
        }
    }

    fn delete(&self, key: &str) -> Result<SimDuration, TieraError> {
        match self {
            TierHandle::Local(t) => Ok(t.delete(key)?),
            TierHandle::Instance { inst, read_only } => {
                if *read_only {
                    return Err(TieraError::ReadOnlyTier(inst.name().to_string()));
                }
                inst.remove(key)?;
                Ok(SimDuration::from_micros(500))
            }
        }
    }

    /// Median access latency, for choosing the fastest holder on reads.
    fn typical_get_ms(&self) -> f64 {
        match self {
            TierHandle::Local(t) => t.spec().get_latency.typical_ms(),
            TierHandle::Instance { inst, .. } => inst
                .tiers
                .first()
                .map(|(_, h)| h.typical_get_ms())
                .unwrap_or(1.0),
        }
    }

    pub fn as_local(&self) -> Option<&Arc<SimTier>> {
        match self {
            TierHandle::Local(t) => Some(t),
            _ => None,
        }
    }
}

/// Construction parameters for an instance.
pub struct InstanceConfig {
    pub name: String,
    pub region: Region,
    /// Tier stack, in policy order (tier1 first).
    pub tiers: Vec<TierLayout>,
    /// Compiled local rules (insert / timer / filled / cold).
    pub rules: Vec<Rule>,
    /// Keep at most this many versions per key (older ones are GCed).
    pub max_versions: Option<usize>,
    /// Sleep the scaled wall time of each operation on the calling thread.
    pub sleep_on_ops: bool,
    /// Sleep bandwidth-limited background transfers (engine threads only).
    pub sleep_background: bool,
    /// Key for the `encrypt` response.
    pub encryption_key: u64,
    pub seed: u64,
}

impl InstanceConfig {
    pub fn new(name: impl Into<String>, region: Region) -> Self {
        InstanceConfig {
            name: name.into(),
            region,
            tiers: Vec::new(),
            rules: Vec::new(),
            max_versions: None,
            sleep_on_ops: false,
            sleep_background: false,
            encryption_key: 0x77_1E_2A_5D,
            seed: 42,
        }
    }

    pub fn with_tier(mut self, label: &str, kind: &str, size_bytes: u64) -> Self {
        self.tiers.push(TierLayout {
            label: label.to_string(),
            kind_name: kind.to_string(),
            size_bytes,
        });
        self
    }

    pub fn with_rules(mut self, rules: Vec<Rule>) -> Self {
        self.rules = rules;
        self
    }

    pub fn with_sleep(mut self, ops: bool, background: bool) -> Self {
        self.sleep_on_ops = ops;
        self.sleep_background = background;
        self
    }

    pub fn with_max_versions(mut self, n: usize) -> Self {
        self.max_versions = Some(n);
        self
    }
}

/// Operation counters (the request statistics Wiera's monitors read).
#[derive(Debug, Default)]
pub struct InstanceStats {
    /// Puts received directly from applications.
    pub app_puts: AtomicU64,
    /// Gets received directly from applications.
    pub app_gets: AtomicU64,
    /// Updates applied on behalf of other instances (replication).
    pub replicated_updates: AtomicU64,
    /// Requests forwarded to this instance by others (primary role).
    pub forwarded_in: AtomicU64,
}

/// The instance. Thread-safe; share via `Arc`.
pub struct TieraInstance {
    config: InstanceConfig,
    clock: SharedClock,
    tiers: Vec<(String, TierHandle)>,
    meta: MetaStore,
    /// True when every tier is a [`TierHandle::Local`] simulated service.
    /// The sharded fast paths hold one metastore shard lock across the tier
    /// hop, which is only safe when the hop cannot re-enter another
    /// instance's metastore (same lock class — wiera-check WC002); with a
    /// mounted instance in the stack, operations fall back to the phased
    /// lock-per-step paths.
    all_local_tiers: bool,
    /// Edge-trigger memory for tier-filled rules (rule index → armed).
    filled_armed: TrackedMutex<HashMap<usize, bool>>,
    /// One circuit breaker per tier, keyed in tier order. The read path
    /// feeds every tier access into its breaker and *deprioritizes* (never
    /// rejects) holders whose breaker is not closed — a browned-out tier
    /// may be the only holder of a version.
    tier_breakers: Vec<(String, CircuitBreaker)>,
    pub stats: InstanceStats,
    rng: TrackedMutex<SimRng>,
}

impl TieraInstance {
    /// Build an instance, materializing each tier layout as a simulated
    /// cloud service. Unsized tiers (`size_bytes == 0`) are provider-managed
    /// (effectively unbounded, like S3).
    pub fn build(config: InstanceConfig, clock: SharedClock) -> Result<Arc<Self>, TieraError> {
        let mut tiers = Vec::new();
        for layout in &config.tiers {
            let kind: TierKind = layout
                .kind_name
                .parse()
                .map_err(|_| TieraError::NoSuchTier(layout.kind_name.clone()))?;
            let capacity = if layout.size_bytes == 0 {
                u64::MAX
            } else {
                layout.size_bytes
            };
            let seed =
                wiera_sim::derive_seed(config.seed, &format!("{}:{}", config.name, layout.label));
            let tier = SimTier::new(TierSpec::of(kind), capacity, clock.clone(), seed);
            tiers.push((layout.label.clone(), TierHandle::Local(tier)));
        }
        let rng = TrackedMutex::new("inst.rng", SimRng::new(config.seed).child(&config.name));
        let tier_breakers = Self::build_breakers(&config.name, &tiers);
        Ok(Arc::new(TieraInstance {
            config,
            clock,
            tiers,
            meta: MetaStore::new(),
            all_local_tiers: true,
            filled_armed: TrackedMutex::new("inst.filled_armed", HashMap::new()),
            tier_breakers,
            stats: InstanceStats::default(),
            rng,
        }))
    }

    /// One breaker per tier. The latency threshold is relative to the tier's
    /// own typical get latency (with a small floor), so a memory tier and an
    /// archival tier each trip only on *their* kind of brownout; healthy
    /// jitter never reaches 20x the median EWMA-smoothed.
    fn build_breakers(
        name: &str,
        tiers: &[(String, TierHandle)],
    ) -> Vec<(String, CircuitBreaker)> {
        tiers
            .iter()
            .map(|(label, h)| {
                let threshold = SimDuration::from_millis_f64((h.typical_get_ms() * 20.0).max(2.0));
                let cfg = BreakerConfig {
                    latency_threshold: Some(threshold),
                    ..BreakerConfig::default()
                };
                (
                    label.clone(),
                    CircuitBreaker::new(format!("{name}:{label}"), cfg),
                )
            })
            .collect()
    }

    /// Mount another instance as an additional tier (§3.2.2 modular
    /// instances), typically read-only.
    pub fn mount_instance(
        self: &Arc<Self>,
        label: &str,
        inst: Arc<TieraInstance>,
        read_only: bool,
    ) -> Arc<Self> {
        // Instances are immutable after build except through interior
        // mutability; cheapest correct approach is rebuilding the tier list.
        // To keep the public API simple we clone the Arc'd tiers.
        let mut tiers: Vec<(String, TierHandle)> = Vec::new();
        for (l, h) in &self.tiers {
            let hh = match h {
                TierHandle::Local(t) => TierHandle::Local(t.clone()),
                TierHandle::Instance { inst, read_only } => TierHandle::Instance {
                    inst: inst.clone(),
                    read_only: *read_only,
                },
            };
            tiers.push((l.clone(), hh));
        }
        tiers.push((label.to_string(), TierHandle::Instance { inst, read_only }));
        let all_local_tiers = tiers.iter().all(|(_, h)| matches!(h, TierHandle::Local(_)));
        let tier_breakers = Self::build_breakers(&self.config.name, &tiers);
        Arc::new(TieraInstance {
            config: InstanceConfig {
                name: self.config.name.clone(),
                region: self.config.region,
                tiers: self.config.tiers.clone(),
                rules: self.config.rules.clone(),
                max_versions: self.config.max_versions,
                sleep_on_ops: self.config.sleep_on_ops,
                sleep_background: self.config.sleep_background,
                encryption_key: self.config.encryption_key,
                seed: self.config.seed,
            },
            clock: self.clock.clone(),
            tiers,
            meta: MetaStore::new(),
            all_local_tiers,
            filled_armed: TrackedMutex::new("inst.filled_armed", HashMap::new()),
            tier_breakers,
            stats: InstanceStats::default(),
            rng: TrackedMutex::new("inst.rng", SimRng::new(self.config.seed).child("mounted")),
        })
    }

    pub fn name(&self) -> &str {
        &self.config.name
    }

    pub fn region(&self) -> Region {
        self.config.region
    }

    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    pub fn rules(&self) -> &[Rule] {
        &self.config.rules
    }

    pub fn meta(&self) -> &MetaStore {
        &self.meta
    }

    pub fn tier(&self, label: &str) -> Option<&TierHandle> {
        self.tiers.iter().find(|(l, _)| l == label).map(|(_, h)| h)
    }

    pub fn tier_labels(&self) -> Vec<&str> {
        self.tiers.iter().map(|(l, _)| l.as_str()).collect()
    }

    fn tier_required(&self, label: &str) -> Result<&TierHandle, TieraError> {
        self.tier(label)
            .ok_or_else(|| TieraError::NoSuchTier(label.to_string()))
    }

    /// The circuit breaker guarding one tier.
    pub fn tier_breaker(&self, label: &str) -> Option<&CircuitBreaker> {
        self.tier_breakers
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, b)| b)
    }

    /// True while any tier's breaker is not closed — the instance-level
    /// brownout signal Wiera's replica health reporting reads.
    pub fn browned_out(&self) -> bool {
        self.tier_breakers
            .iter()
            .any(|(_, b)| b.state() != BreakerState::Closed)
    }

    /// Fail fast when the thread-scoped op budget is already spent.
    fn check_deadline(&self) -> Result<(), TieraError> {
        if crate::deadline::expired(self.clock.now()) {
            wiera_sim::MetricsRegistry::global().inc(
                "tiera_deadline_exceeded",
                &[("instance", self.config.name.as_str())],
            );
            return Err(TieraError::DeadlineExceeded);
        }
        Ok(())
    }

    fn default_tier_label(&self) -> &str {
        self.tiers
            .first()
            .map(|(l, _)| l.as_str())
            .unwrap_or("tier1")
    }

    fn maybe_sleep(&self, d: SimDuration) {
        if self.config.sleep_on_ops {
            self.clock.sleep(d);
        }
    }

    // ---- Table 2 API -------------------------------------------------------

    /// Store a new version of `key` (PUT). Runs the insert rules; the
    /// returned latency covers every synchronous step they specify.
    pub fn put(&self, key: &str, value: Bytes) -> Result<OpOutcome, TieraError> {
        self.put_tagged(key, value, &[])
    }

    /// PUT with object-class tags (§2.2).
    pub fn put_tagged(
        &self,
        key: &str,
        value: Bytes,
        tags: &[&str],
    ) -> Result<OpOutcome, TieraError> {
        self.check_deadline()?;
        self.stats.app_puts.fetch_add(1, Ordering::Relaxed);
        let outcome = self.ingest(key, value, tags, None, None, META_OVERHEAD)?;
        self.note_op("put", outcome.latency);
        self.maybe_sleep(outcome.latency);
        Ok(outcome)
    }

    /// Execute a bulk batch in one engine pass. The per-operation metadata
    /// overhead is paid **once for the whole batch** (plus a small per-item
    /// charge) instead of once per item, and the calling thread sleeps the
    /// batch's total modeled latency once rather than per item. Items are
    /// independent: one item's failure does not affect the others. Returns
    /// per-item outcomes in request order plus the batch's total latency.
    ///
    /// Items are grouped by metastore shard and each shard's lock is taken
    /// **once per batch** (see [`MetaStore::shard_write`]); items on the
    /// same key keep their request order because a key always hashes to the
    /// same shard. When a mounted instance sits in the tier stack the batch
    /// falls back to the phased per-item path (see `all_local_tiers`).
    #[allow(clippy::type_complexity)]
    pub fn apply_batch(
        &self,
        ops: &[BatchOp],
    ) -> (Vec<Result<OpOutcome, TieraError>>, SimDuration) {
        // The budget gates the whole batch: items admitted together run
        // together (checking per item would tear a half-expired batch).
        if let Err(e) = self.check_deadline() {
            return (ops.iter().map(|_| Err(e.clone())).collect(), META_OVERHEAD);
        }
        if !self.all_local_tiers {
            return self.apply_batch_per_item(ops);
        }
        let mut total = META_OVERHEAD;
        let mut results: Vec<Result<OpOutcome, TieraError>> = ops
            .iter()
            .map(|_| Err(TieraError::NotFound(String::new())))
            .collect();
        // Group item indices by shard, preserving request order per shard.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.meta.shard_count()];
        for (i, op) in ops.iter().enumerate() {
            let key = match op {
                BatchOp::Put { key, .. } | BatchOp::Get { key } => key,
            };
            groups[self.meta.shard_of(key)].push(i);
        }
        let mut gc: Vec<(String, Vec<VersionId>)> = Vec::new();
        for (shard, idxs) in groups.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let mut map = self.meta.shard_write(shard);
            for &i in idxs {
                let r = match &ops[i] {
                    BatchOp::Put { key, value } => {
                        self.stats.app_puts.fetch_add(1, Ordering::Relaxed);
                        // This fast path only runs when every tier is local
                        // (`all_local_tiers`), so the calls under the shard
                        // guard are in-memory tier ops that model latency
                        // without ever blocking on a channel; the blocking
                        // candidates are widening artifacts of `.put`.
                        // ws-audit: allow(WS103): all-local fast path, tier ops cannot block
                        self.ingest_locked(
                            &mut map,
                            key,
                            value.clone(),
                            &[],
                            None,
                            None,
                            BATCH_ITEM_OVERHEAD,
                            &mut gc,
                        )
                    }
                    BatchOp::Get { key } => {
                        self.stats.app_gets.fetch_add(1, Ordering::Relaxed);
                        match map.get_mut(key) {
                            Some(obj) => match obj.latest_version() {
                                Some(v) => self.read_version_locked(key, v, obj),
                                None => Err(TieraError::NotFound(key.clone())),
                            },
                            None => Err(TieraError::NotFound(key.clone())),
                        }
                    }
                };
                if let Ok(out) = &r {
                    total += out.latency;
                }
                results[i] = r;
            }
        }
        // GC pruned version bytes outside the shard sessions.
        for (key, versions) in gc {
            for v in versions {
                let sk = storage_key(&key, v);
                for (_, h) in &self.tiers {
                    let _ = h.delete(&sk);
                }
            }
        }
        self.note_op("batch", total);
        self.maybe_sleep(total);
        (results, total)
    }

    /// Legacy batch path for instances with mounted-instance tiers: each
    /// item acquires locks step by step, never holding a metastore shard
    /// lock across a tier hop that could re-enter another metastore.
    #[allow(clippy::type_complexity)]
    fn apply_batch_per_item(
        &self,
        ops: &[BatchOp],
    ) -> (Vec<Result<OpOutcome, TieraError>>, SimDuration) {
        let mut total = META_OVERHEAD;
        let mut results = Vec::with_capacity(ops.len());
        for op in ops {
            let r = match op {
                BatchOp::Put { key, value } => {
                    self.stats.app_puts.fetch_add(1, Ordering::Relaxed);
                    self.ingest(key, value.clone(), &[], None, None, BATCH_ITEM_OVERHEAD)
                }
                BatchOp::Get { key } => {
                    self.stats.app_gets.fetch_add(1, Ordering::Relaxed);
                    self.meta
                        .with(key, |o| o.latest_version())
                        .flatten()
                        .ok_or_else(|| TieraError::NotFound(key.clone()))
                        .and_then(|v| self.read_version(key, v))
                }
            };
            if let Ok(out) = &r {
                total += out.latency;
            }
            results.push(r);
        }
        self.note_op("batch", total);
        self.maybe_sleep(total);
        (results, total)
    }

    /// Record one instance-level op into the global metrics registry.
    fn note_op(&self, op: &str, latency: SimDuration) {
        let labels = [("instance", self.config.name.as_str()), ("op", op)];
        let metrics = wiera_sim::MetricsRegistry::global();
        metrics.inc("tiera_ops_total", &labels);
        metrics.observe("tiera_op_latency", &labels, latency);
    }

    /// Apply an update replicated from another instance (§4.2): last-write-
    /// wins on (version, modified-time). Returns `Ok(None)` when the update
    /// loses and is discarded.
    pub fn apply_replicated(
        &self,
        key: &str,
        version: VersionId,
        modified: SimInstant,
        value: Bytes,
    ) -> Result<Option<OpOutcome>, TieraError> {
        let accept = self
            .meta
            .with(key, |o| o.accepts_update(version, modified))
            .unwrap_or(true);
        if !accept {
            return Ok(None);
        }
        self.stats
            .replicated_updates
            .fetch_add(1, Ordering::Relaxed);
        let outcome = self.ingest(
            key,
            value,
            &[],
            Some(version),
            Some(modified),
            META_OVERHEAD,
        )?;
        Ok(Some(outcome))
    }

    /// Simulate a node crash (§4.4): volatile local tiers lose their
    /// contents, durable tiers survive. Per-version metadata is pruned to
    /// match — versions whose only holders were volatile tiers vanish,
    /// versions with a surviving durable copy are re-pointed at it. Returns
    /// how many versions were lost outright.
    pub fn crash_volatile(&self) -> usize {
        let wiped: Vec<String> = self
            .tiers
            .iter()
            .filter_map(|(label, handle)| {
                let t = handle.as_local()?;
                if t.spec().kind.volatile() {
                    t.wipe();
                    Some(label.clone())
                } else {
                    None
                }
            })
            .collect();
        if wiped.is_empty() {
            return 0;
        }
        let mut lost = 0usize;
        for key in self.meta.keys() {
            let emptied = self.meta.with_mut(&key, |o| {
                o.versions.retain(|_, m| {
                    m.replicas.retain(|r| !wiped.contains(r));
                    if wiped.contains(&m.location) {
                        match m.replicas.iter().next().cloned() {
                            Some(surviving) => {
                                m.replicas.remove(&surviving);
                                m.location = surviving;
                            }
                            None => {
                                lost += 1;
                                return false;
                            }
                        }
                    }
                    true
                });
                o.versions.is_empty()
            });
            if emptied {
                self.meta.remove(&key);
            }
        }
        lost
    }

    /// Shared ingest path for local puts and replicated updates. `overhead`
    /// is the metadata bookkeeping charge: the full [`META_OVERHEAD`] for a
    /// standalone op, the marginal [`BATCH_ITEM_OVERHEAD`] inside a batch.
    ///
    /// With an all-local tier stack the whole op runs under one metastore
    /// shard session (version allocation and metadata record under the same
    /// lock hold, closing the alloc/record race); otherwise it takes the
    /// phased path that never holds a metastore lock across a tier hop.
    fn ingest(
        &self,
        key: &str,
        value: Bytes,
        tags: &[&str],
        forced_version: Option<VersionId>,
        forced_modified: Option<SimInstant>,
        overhead: SimDuration,
    ) -> Result<OpOutcome, TieraError> {
        if self.all_local_tiers {
            let mut gc: Vec<(String, Vec<VersionId>)> = Vec::new();
            let r = {
                let mut map = self.meta.shard_write(self.meta.shard_of(key));
                // All-local fast path: tier ops under the shard guard are
                // in-memory and never block; see the WS103 note at the
                // batch-ingest call site.
                // ws-audit: allow(WS103): all-local fast path, tier ops cannot block
                self.ingest_locked(
                    &mut map,
                    key,
                    value,
                    tags,
                    forced_version,
                    forced_modified,
                    overhead,
                    &mut gc,
                )
            };
            for (k, versions) in gc {
                for v in versions {
                    let sk = storage_key(&k, v);
                    for (_, h) in &self.tiers {
                        let _ = h.delete(&sk);
                    }
                }
            }
            return r;
        }
        self.ingest_phased(key, value, tags, forced_version, forced_modified, overhead)
    }

    /// Ingest one put into an already-locked metastore shard. `gc` collects
    /// `(key, pruned versions)` whose bytes the caller deletes after the
    /// shard session ends.
    #[allow(clippy::too_many_arguments)]
    fn ingest_locked(
        &self,
        map: &mut MetaShardGuard<'_>,
        key: &str,
        value: Bytes,
        tags: &[&str],
        forced_version: Option<VersionId>,
        forced_modified: Option<SimInstant>,
        overhead: SimDuration,
        gc: &mut Vec<(String, Vec<VersionId>)>,
    ) -> Result<OpOutcome, TieraError> {
        let now = self.clock.now();
        let version =
            forced_version.unwrap_or_else(|| map.get(key).map(|o| o.next_version()).unwrap_or(1));
        let skey = storage_key(key, version);

        let mut latency = overhead;
        let mut location: Option<String> = None;
        let mut replicas: BTreeSet<String> = BTreeSet::new();
        let mut dirty = false;

        // Insert rules (event `insert.into`) run synchronously. They only
        // touch tiers (all local here), never the metastore.
        let insert_rules: Vec<&Rule> = self
            .config
            .rules
            .iter()
            .filter(|r| matches!(r.event, EventKind::Insert { into: None }))
            .collect();
        for rule in insert_rules {
            for action in &rule.actions {
                self.run_insert_action(
                    action,
                    &skey,
                    &value,
                    &mut latency,
                    &mut location,
                    &mut replicas,
                    &mut dirty,
                )?;
            }
        }
        let location = match location {
            Some(l) => l,
            None => {
                let label = self.default_tier_label().to_string();
                latency += self.tier_required(&label)?.put(&skey, value.clone())?;
                label
            }
        };

        let scoped: Vec<&Rule> = self
            .config
            .rules
            .iter()
            .filter(|r| matches!(&r.event, EventKind::Insert { into: Some(t) } if *t == location))
            .collect();
        let mut loc2 = Some(location.clone());
        for rule in scoped {
            for action in &rule.actions {
                self.run_insert_action(
                    action,
                    &skey,
                    &value,
                    &mut latency,
                    &mut loc2,
                    &mut replicas,
                    &mut dirty,
                )?;
            }
        }

        // Record metadata in the same lock hold that allocated the version.
        let size = value.len() as u64;
        let obj = map.entry(key.to_string()).or_default();
        for t in tags {
            obj.tags.insert(t.to_string());
        }
        let mut m = VersionMeta::new(version, size, now, &location);
        m.dirty = dirty;
        m.replicas = replicas;
        if let Some(fm) = forced_modified {
            m.modified = fm;
        }
        obj.versions.insert(version, m);
        let pruned = match self.config.max_versions {
            Some(keep) => obj.prune_old_versions(keep),
            None => Vec::new(),
        };
        if !pruned.is_empty() {
            gc.push((key.to_string(), pruned));
        }

        Ok(OpOutcome {
            value: None,
            version,
            latency,
        })
    }

    /// Phased ingest for tier stacks containing mounted instances: every
    /// metastore access is its own short lock hold, so the tier hop can
    /// re-enter another instance's metastore without nesting shard locks.
    fn ingest_phased(
        &self,
        key: &str,
        value: Bytes,
        tags: &[&str],
        forced_version: Option<VersionId>,
        forced_modified: Option<SimInstant>,
        overhead: SimDuration,
    ) -> Result<OpOutcome, TieraError> {
        let now = self.clock.now();
        let version = forced_version
            .unwrap_or_else(|| self.meta.with(key, |o| o.next_version()).unwrap_or(1));
        let skey = storage_key(key, version);

        let mut latency = overhead;
        let mut location: Option<String> = None;
        let mut replicas: BTreeSet<String> = BTreeSet::new();
        let mut dirty = false;

        // Insert rules (event `insert.into`) run synchronously.
        let insert_rules: Vec<&Rule> = self
            .config
            .rules
            .iter()
            .filter(|r| matches!(r.event, EventKind::Insert { into: None }))
            .collect();
        for rule in insert_rules {
            for action in &rule.actions {
                self.run_insert_action(
                    action,
                    &skey,
                    &value,
                    &mut latency,
                    &mut location,
                    &mut replicas,
                    &mut dirty,
                )?;
            }
        }
        // No rule placed the bytes locally (no insert rules at all, or a
        // global policy whose local leg is just `store(to:local_instance)`,
        // handled as the default ingest): store into the first tier.
        let location = match location {
            Some(l) => l,
            None => {
                let label = self.default_tier_label().to_string();
                latency += self.tier_required(&label)?.put(&skey, value.clone())?;
                label
            }
        };

        // Write-through rules scoped to the tier we stored into
        // (`event(insert.into == tier1)`).
        let scoped: Vec<&Rule> = self
            .config
            .rules
            .iter()
            .filter(|r| matches!(&r.event, EventKind::Insert { into: Some(t) } if *t == location))
            .collect();
        let mut loc2 = Some(location.clone());
        for rule in scoped {
            for action in &rule.actions {
                self.run_insert_action(
                    action,
                    &skey,
                    &value,
                    &mut latency,
                    &mut loc2,
                    &mut replicas,
                    &mut dirty,
                )?;
            }
        }

        // Record metadata.
        let size = value.len() as u64;
        let pruned = self.meta.with_mut(key, |o| {
            for t in tags {
                o.tags.insert(t.to_string());
            }
            let mut m = VersionMeta::new(version, size, now, &location);
            m.dirty = dirty;
            m.replicas = replicas.clone();
            if let Some(fm) = forced_modified {
                m.modified = fm;
            }
            o.versions.insert(version, m);
            match self.config.max_versions {
                Some(keep) => o.prune_old_versions(keep),
                None => Vec::new(),
            }
        });
        // GC pruned version bytes.
        for v in pruned {
            let sk = storage_key(key, v);
            for (_, h) in &self.tiers {
                let _ = h.delete(&sk);
            }
        }

        Ok(OpOutcome {
            value: None,
            version,
            latency,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_insert_action(
        &self,
        action: &Action,
        skey: &str,
        value: &Bytes,
        latency: &mut SimDuration,
        location: &mut Option<String>,
        replicas: &mut BTreeSet<String>,
        dirty: &mut bool,
    ) -> Result<(), TieraError> {
        match action {
            Action::SetAttr { path, value: v } => {
                if path.last().map(String::as_str) == Some("dirty") {
                    if let CondValue::Bool(b) = v {
                        *dirty = *b;
                    }
                }
                Ok(())
            }
            Action::Store {
                what: Selector::InsertObject,
                to: Target::Tier(label),
            } => {
                *latency += self.tier_required(label)?.put(skey, value.clone())?;
                *location = Some(label.clone());
                Ok(())
            }
            // `store(to:local_instance)` — the local leg of a global policy:
            // ingest through the default (first) tier.
            Action::Store {
                what: Selector::InsertObject,
                to: Target::LocalInstance,
            } => {
                let label = self.default_tier_label().to_string();
                *latency += self.tier_required(&label)?.put(skey, value.clone())?;
                *location = Some(label);
                Ok(())
            }
            Action::Copy {
                what: Selector::InsertObject,
                to: Target::Tier(label),
                ..
            } => {
                *latency += self.tier_required(label)?.put(skey, value.clone())?;
                replicas.insert(label.clone());
                Ok(())
            }
            // Global actions (lock/copy-to-regions/forward/queue/...) are the
            // Wiera layer's responsibility; the local engine ignores them.
            _ => Ok(()),
        }
    }

    /// Retrieve the latest version (GET).
    pub fn get(&self, key: &str) -> Result<OpOutcome, TieraError> {
        self.check_deadline()?;
        self.stats.app_gets.fetch_add(1, Ordering::Relaxed);
        let version = self
            .meta
            .with(key, |o| o.latest_version())
            .flatten()
            .ok_or_else(|| TieraError::NotFound(key.to_string()))?;
        let out = self.read_version(key, version)?;
        self.note_op("get", out.latency);
        self.maybe_sleep(out.latency);
        Ok(out)
    }

    /// Retrieve a specific version.
    pub fn get_version(&self, key: &str, version: VersionId) -> Result<OpOutcome, TieraError> {
        self.check_deadline()?;
        self.stats.app_gets.fetch_add(1, Ordering::Relaxed);
        let out = self.read_version(key, version)?;
        self.note_op("get", out.latency);
        self.maybe_sleep(out.latency);
        Ok(out)
    }

    /// List available versions of `key`.
    pub fn get_version_list(&self, key: &str) -> Result<Vec<VersionId>, TieraError> {
        self.meta
            .with(key, |o| o.versions.keys().copied().collect())
            .ok_or_else(|| TieraError::NotFound(key.to_string()))
    }

    /// Overwrite the bytes of one existing version in place (Table 2's
    /// `update`): same version number, refreshed modified-time.
    pub fn update(
        &self,
        key: &str,
        version: VersionId,
        value: Bytes,
    ) -> Result<OpOutcome, TieraError> {
        let now = self.clock.now();
        let holders = self
            .meta
            .with(key, |o| {
                o.versions.get(&version).map(|m| m.location.clone())
            })
            .flatten()
            .ok_or_else(|| TieraError::VersionNotFound(key.to_string(), version))?;
        let skey = storage_key(key, version);
        let mut latency = SimDuration::from_micros(150);
        latency += self.tier_required(&holders)?.put(&skey, value.clone())?;
        self.meta.with_mut(key, |o| {
            if let Some(m) = o.versions.get_mut(&version) {
                m.size = value.len() as u64;
                m.modified = now;
                m.touch(now);
                // In-place update invalidates intra-instance replicas.
                m.replicas.clear();
            }
        });
        self.note_op("update", latency);
        self.maybe_sleep(latency);
        Ok(OpOutcome {
            value: None,
            version,
            latency,
        })
    }

    /// Remove all versions of `key`.
    pub fn remove(&self, key: &str) -> Result<(), TieraError> {
        self.note_op("remove", SimDuration::ZERO);
        let obj = self
            .meta
            .remove(key)
            .ok_or_else(|| TieraError::NotFound(key.to_string()))?;
        for (v, m) in obj.versions {
            let sk = storage_key(key, v);
            for holder in m.holders() {
                if let Some(h) = self.tier(holder) {
                    let _ = h.delete(&sk);
                }
            }
        }
        Ok(())
    }

    /// Remove one version of `key`.
    pub fn remove_version(&self, key: &str, version: VersionId) -> Result<(), TieraError> {
        let m = self
            .meta
            .remove_version(key, version)
            .ok_or_else(|| TieraError::VersionNotFound(key.to_string(), version))?;
        let sk = storage_key(key, version);
        for holder in m.holders() {
            if let Some(h) = self.tier(holder) {
                let _ = h.delete(&sk);
            }
        }
        Ok(())
    }

    /// Read path shared by get/getVersion: try holders fastest-first, heal
    /// metadata when a volatile tier has evicted its copy.
    fn read_version(&self, key: &str, version: VersionId) -> Result<OpOutcome, TieraError> {
        if self.all_local_tiers {
            // One shard session covers holder lookup, heal, and touch.
            return self
                .meta
                .with_existing_mut(key, |o| self.read_version_locked(key, version, o))
                .unwrap_or_else(|| Err(TieraError::VersionNotFound(key.to_string(), version)));
        }
        self.read_version_phased(key, version)
    }

    /// Read one version with its object's metadata already locked: try
    /// holders fastest-first, heal metadata in place when a volatile tier
    /// has evicted its copy, touch the access time.
    fn read_version_locked(
        &self,
        key: &str,
        version: VersionId,
        obj: &mut ObjectMeta,
    ) -> Result<OpOutcome, TieraError> {
        let now = self.clock.now();
        let (holders, compressed, encrypted) = obj
            .versions
            .get(&version)
            .map(|m| {
                (
                    m.holders()
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>(),
                    m.compressed,
                    m.encrypted,
                )
            })
            .ok_or_else(|| TieraError::VersionNotFound(key.to_string(), version))?;

        let ordered = self.holder_order(holders, now);

        let skey = storage_key(key, version);
        let mut latency = SimDuration::from_micros(100);
        let mut lost: Vec<String> = Vec::new();
        for label in &ordered {
            let Some(h) = self.tier(label) else {
                lost.push(label.clone());
                continue;
            };
            match h.get(&skey) {
                Ok((mut data, l)) => {
                    if let Some(b) = self.tier_breaker(label) {
                        b.record_success(self.clock.now(), l);
                    }
                    latency += l;
                    if encrypted {
                        data = transform::decrypt(&data, self.config.encryption_key);
                    }
                    if compressed {
                        data = transform::decompress(&data).map_err(TieraError::Corrupt)?;
                    }
                    if let Some(m) = obj.versions.get_mut(&version) {
                        for l in &lost {
                            m.replicas.remove(l);
                            if &m.location == l {
                                m.location = label.clone();
                            }
                        }
                        m.touch(now);
                    }
                    return Ok(OpOutcome {
                        value: Some(data),
                        version,
                        latency,
                    });
                }
                Err(_) => {
                    if let Some(b) = self.tier_breaker(label) {
                        b.record_failure(self.clock.now());
                    }
                    lost.push(label.clone())
                }
            }
        }
        Err(TieraError::NotFound(key.to_string()))
    }

    /// Order candidate holders for a read: fastest typical latency first,
    /// with two breaker-driven exceptions. A holder whose breaker is not
    /// closed is *deprioritized*, never rejected — it may hold the only
    /// copy. And when an open breaker's cooldown has expired, that holder
    /// is promoted to the very front so this read doubles as the probe;
    /// without real probe traffic a healed tier could never close again
    /// while a healthy replica keeps absorbing all reads.
    fn holder_order(&self, holders: Vec<String>, now: SimInstant) -> Vec<String> {
        let mut ordered = holders;
        ordered.sort_by(|a, b| {
            let la = self.tier(a).map(|h| h.typical_get_ms()).unwrap_or(f64::MAX);
            let lb = self.tier(b).map(|h| h.typical_get_ms()).unwrap_or(f64::MAX);
            la.total_cmp(&lb)
        });
        let mut probe_first: Vec<String> = Vec::new();
        let mut healthy: Vec<String> = Vec::new();
        let mut suspect: Vec<String> = Vec::new();
        for label in ordered {
            match self.tier_breaker(&label) {
                None => healthy.push(label),
                Some(b) if b.state() == BreakerState::Closed => healthy.push(label),
                Some(b) => {
                    wiera_sim::MetricsRegistry::global().inc(
                        "tiera_tier_deferrals",
                        &[
                            ("instance", self.config.name.as_str()),
                            ("tier", label.as_str()),
                        ],
                    );
                    if b.admit(now) == wiera_sim::Admit::Probe {
                        probe_first.push(label);
                    } else {
                        suspect.push(label);
                    }
                }
            }
        }
        probe_first.extend(healthy);
        probe_first.extend(suspect);
        probe_first
    }

    /// Phased read for tier stacks containing mounted instances: holder
    /// lookup, tier hop, and heal/touch are separate lock holds so the hop
    /// can re-enter another instance's metastore.
    fn read_version_phased(&self, key: &str, version: VersionId) -> Result<OpOutcome, TieraError> {
        let now = self.clock.now();
        let (holders, compressed, encrypted) = self
            .meta
            .with(key, |o| {
                o.versions.get(&version).map(|m| {
                    (
                        m.holders()
                            .iter()
                            .map(|s| s.to_string())
                            .collect::<Vec<_>>(),
                        m.compressed,
                        m.encrypted,
                    )
                })
            })
            .flatten()
            .ok_or_else(|| TieraError::VersionNotFound(key.to_string(), version))?;

        // Fastest healthy holder first.
        let ordered = self.holder_order(holders, now);

        let skey = storage_key(key, version);
        let mut latency = SimDuration::from_micros(100);
        let mut lost: Vec<String> = Vec::new();
        for label in &ordered {
            let Some(h) = self.tier(label) else {
                lost.push(label.clone());
                continue;
            };
            match h.get(&skey) {
                Ok((mut data, l)) => {
                    if let Some(b) = self.tier_breaker(label) {
                        b.record_success(self.clock.now(), l);
                    }
                    latency += l;
                    if encrypted {
                        data = transform::decrypt(&data, self.config.encryption_key);
                    }
                    if compressed {
                        data = transform::decompress(&data).map_err(TieraError::Corrupt)?;
                    }
                    // Heal metadata: forget holders that no longer have it.
                    if !lost.is_empty() {
                        self.meta.with_mut(key, |o| {
                            if let Some(m) = o.versions.get_mut(&version) {
                                for l in &lost {
                                    m.replicas.remove(l);
                                    if &m.location == l {
                                        m.location = label.clone();
                                    }
                                }
                            }
                        });
                    }
                    self.meta.with_mut(key, |o| {
                        if let Some(m) = o.versions.get_mut(&version) {
                            m.touch(now);
                        }
                    });
                    return Ok(OpOutcome {
                        value: Some(data),
                        version,
                        latency,
                    });
                }
                Err(_) => {
                    if let Some(b) = self.tier_breaker(label) {
                        b.record_failure(self.clock.now());
                    }
                    lost.push(label.clone())
                }
            }
        }
        Err(TieraError::NotFound(key.to_string()))
    }

    // ---- background policy execution ---------------------------------------

    /// Execute all timer rules once (the engine calls this on each period).
    /// Returns the number of objects acted on.
    pub fn run_timer_rules(&self) -> usize {
        let rules: Vec<Rule> = self
            .config
            .rules
            .iter()
            .filter(|r| matches!(r.event, EventKind::Timer { .. }))
            .cloned()
            .collect();
        let mut acted = 0;
        for rule in &rules {
            acted += self.run_sweep_actions(&rule.actions, None);
        }
        acted
    }

    /// Evaluate tier-filled rules (edge-triggered) and run any that fire.
    pub fn run_filled_rules(&self) -> usize {
        let mut acted = 0;
        let rules: Vec<(usize, String, f64, Vec<Action>)> = self
            .config
            .rules
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match &r.event {
                EventKind::TierFilled { tier, fraction } => {
                    Some((i, tier.clone(), *fraction, r.actions.clone()))
                }
                _ => None,
            })
            .collect();
        for (idx, tier_label, frac, actions) in rules {
            let Some(handle) = self.tier(&tier_label) else {
                continue;
            };
            let Some(tier) = handle.as_local() else {
                continue;
            };
            let filled = tier.filled_fraction();
            let mut armed = self.filled_armed.lock();
            let was_armed = *armed.entry(idx).or_insert(true);
            if filled >= frac && was_armed {
                armed.insert(idx, false);
                drop(armed);
                acted += self.run_sweep_actions(&actions, None);
            } else if filled < frac && !was_armed {
                armed.insert(idx, true); // re-arm once back under threshold
            }
        }
        acted
    }

    /// Evaluate cold-data rules: act on versions idle longer than the rule's
    /// threshold (ColdDataMonitoring, §4.3).
    pub fn run_cold_rules(&self) -> usize {
        let now = self.clock.now();
        let mut acted = 0;
        let rules: Vec<(f64, Vec<Action>)> = self
            .config
            .rules
            .iter()
            .filter_map(|r| match &r.event {
                EventKind::ColdData { older_than_ms } => Some((*older_than_ms, r.actions.clone())),
                _ => None,
            })
            .collect();
        for (older_ms, actions) in rules {
            let cutoff = now - SimDuration::from_millis_f64(older_ms);
            for (key, version) in self.meta.cold_versions(cutoff) {
                acted += self.run_sweep_actions(&actions, Some((&key, version)));
            }
        }
        acted
    }

    /// One background maintenance pass: filled + cold rules.
    pub fn run_maintenance(&self) -> usize {
        self.run_filled_rules() + self.run_cold_rules()
    }

    /// Execute sweep-style actions, optionally scoped to a single
    /// `(key, version)` (cold-data events name the object; sweep rules
    /// enumerate everything that matches their `what:` predicate).
    fn run_sweep_actions(&self, actions: &[Action], scope: Option<(&str, VersionId)>) -> usize {
        let mut acted = 0;
        for action in actions {
            acted += self.run_sweep_action(action, scope);
        }
        acted
    }

    fn matching_versions(
        &self,
        cond: &Condition,
        scope: Option<(&str, VersionId)>,
    ) -> Vec<(String, VersionId)> {
        let now = self.clock.now();
        let candidates: Vec<(String, VersionId)> = match scope {
            Some((k, v)) => vec![(k.to_string(), v)],
            None => self.meta.all_versions(),
        };
        candidates
            .into_iter()
            .filter(|(k, v)| {
                self.meta
                    .with(k, |o| {
                        o.versions
                            .get(v)
                            .map(|m| {
                                cond.eval(&ObjEnv {
                                    meta: m,
                                    tags: &o.tags,
                                    now,
                                })
                            })
                            .unwrap_or(false)
                    })
                    .unwrap_or(false)
            })
            .collect()
    }

    fn run_sweep_action(&self, action: &Action, scope: Option<(&str, VersionId)>) -> usize {
        match action {
            Action::Copy {
                what: Selector::Where(cond),
                to: Target::Tier(to),
                bandwidth_bps,
            } => {
                let targets = self.matching_versions(cond, scope);
                let n = targets.len();
                for (k, v) in targets {
                    let _ = self.copy_version(&k, v, to, *bandwidth_bps);
                }
                n
            }
            Action::Move {
                what: Selector::Where(cond),
                to: Target::Tier(to),
                bandwidth_bps,
            } => {
                let targets = self.matching_versions(cond, scope);
                let n = targets.len();
                for (k, v) in targets {
                    let _ = self.move_version(&k, v, to, *bandwidth_bps);
                }
                n
            }
            Action::Delete {
                what: Selector::Where(cond),
            } => {
                let targets = self.matching_versions(cond, scope);
                let n = targets.len();
                for (k, v) in targets {
                    let _ = self.remove_version(&k, v);
                }
                n
            }
            Action::Compress {
                what: Selector::Where(cond),
            } => {
                let targets = self.matching_versions(cond, scope);
                let n = targets.len();
                for (k, v) in targets {
                    let _ = self.transform_version(&k, v, true);
                }
                n
            }
            Action::Encrypt {
                what: Selector::Where(cond),
            } => {
                let targets = self.matching_versions(cond, scope);
                let n = targets.len();
                for (k, v) in targets {
                    let _ = self.transform_version(&k, v, false);
                }
                n
            }
            Action::Grow { tier, by_bytes } => {
                if let Some(t) = self.tier(tier).and_then(TierHandle::as_local) {
                    t.grow(*by_bytes);
                    1
                } else {
                    0
                }
            }
            Action::If {
                cond,
                then,
                otherwise,
            } => {
                // Instance-level conditions: evaluate against the sweep scope
                // if any, else against an empty environment.
                let now = self.clock.now();
                let hit = match scope {
                    Some((k, v)) => self
                        .meta
                        .with(k, |o| {
                            o.versions
                                .get(&v)
                                .map(|m| {
                                    cond.eval(&ObjEnv {
                                        meta: m,
                                        tags: &o.tags,
                                        now,
                                    })
                                })
                                .unwrap_or(false)
                        })
                        .unwrap_or(false),
                    None => false,
                };
                if hit {
                    self.run_sweep_actions(then, scope)
                } else {
                    self.run_sweep_actions(otherwise, scope)
                }
            }
            // Global actions are handled by the Wiera layer.
            _ => 0,
        }
    }

    /// Copy one version's bytes into another tier (adds a replica, clears
    /// the dirty bit — this is the write-back flush / backup primitive).
    pub fn copy_version(
        &self,
        key: &str,
        version: VersionId,
        to: &str,
        bandwidth_bps: Option<f64>,
    ) -> Result<SimDuration, TieraError> {
        let out = self.read_version(key, version)?;
        let data = out
            .value
            .ok_or_else(|| TieraError::Corrupt(format!("read of '{key}' returned no bytes")))?;
        let mut latency = out.latency;
        latency += self
            .tier_required(to)?
            .put(&storage_key(key, version), data.clone())?;
        if let Some(bw) = bandwidth_bps {
            let limited = SimDuration::from_secs_f64(data.len() as f64 / bw.max(1.0));
            latency = latency.max(limited);
            if self.config.sleep_background {
                self.clock.sleep(limited);
            }
        }
        self.meta.with_mut(key, |o| {
            if let Some(m) = o.versions.get_mut(&version) {
                m.replicas.insert(to.to_string());
                m.dirty = false;
            }
        });
        Ok(latency)
    }

    /// Move one version to another tier: the target becomes authoritative
    /// and all other copies are deleted (Fig. 6(a)'s cold-data migration).
    pub fn move_version(
        &self,
        key: &str,
        version: VersionId,
        to: &str,
        bandwidth_bps: Option<f64>,
    ) -> Result<SimDuration, TieraError> {
        let out = self.read_version(key, version)?;
        let data = out
            .value
            .ok_or_else(|| TieraError::Corrupt(format!("read of '{key}' returned no bytes")))?;
        let mut latency = out.latency;
        latency += self
            .tier_required(to)?
            .put(&storage_key(key, version), data.clone())?;
        if let Some(bw) = bandwidth_bps {
            let limited = SimDuration::from_secs_f64(data.len() as f64 / bw.max(1.0));
            latency = latency.max(limited);
            if self.config.sleep_background {
                self.clock.sleep(limited);
            }
        }
        let old_holders: Vec<String> = self
            .meta
            .with(key, |o| {
                o.versions
                    .get(&version)
                    .map(|m| m.holders().iter().map(|s| s.to_string()).collect())
                    .unwrap_or_default()
            })
            .unwrap_or_default();
        let skey = storage_key(key, version);
        for holder in old_holders {
            if holder != to {
                if let Some(h) = self.tier(&holder) {
                    let _ = h.delete(&skey);
                }
            }
        }
        self.meta.with_mut(key, |o| {
            if let Some(m) = o.versions.get_mut(&version) {
                m.location = to.to_string();
                m.replicas.clear();
                m.dirty = false;
            }
        });
        Ok(latency)
    }

    /// Compress (or encrypt) one version in place.
    fn transform_version(
        &self,
        key: &str,
        version: VersionId,
        compress: bool,
    ) -> Result<(), TieraError> {
        let already = self
            .meta
            .with(key, |o| {
                o.versions
                    .get(&version)
                    .map(|m| if compress { m.compressed } else { m.encrypted })
            })
            .flatten()
            .ok_or_else(|| TieraError::VersionNotFound(key.to_string(), version))?;
        if already {
            return Ok(());
        }
        // Re-encode from plaintext with the new flag set. Encoding order is
        // compress-then-encrypt (the read path decodes decrypt-then-
        // decompress), so layering stays correct whichever transform is
        // applied first by the policy.
        let (was_compressed, was_encrypted) = self
            .meta
            .with(key, |o| {
                o.versions
                    .get(&version)
                    .map(|m| (m.compressed, m.encrypted))
            })
            .flatten()
            .unwrap_or((false, false));
        let out = self.read_version(key, version)?;
        let plain = out
            .value
            .ok_or_else(|| TieraError::Corrupt(format!("read of '{key}' returned no bytes")))?;
        let new_compressed = was_compressed || compress;
        let new_encrypted = was_encrypted || !compress;
        let mut stored = plain;
        if new_compressed {
            stored = transform::compress(&stored);
        }
        if new_encrypted {
            stored = transform::encrypt(&stored, self.config.encryption_key);
        }
        // Rewrite in every holder.
        let holders: Vec<String> = self
            .meta
            .with(key, |o| {
                o.versions
                    .get(&version)
                    .map(|m| m.holders().iter().map(|s| s.to_string()).collect())
                    .unwrap_or_default()
            })
            .unwrap_or_default();
        let skey = storage_key(key, version);
        for h in holders {
            self.tier_required(&h)?.put(&skey, stored.clone())?;
        }
        self.meta.with_mut(key, |o| {
            if let Some(m) = o.versions.get_mut(&version) {
                if compress {
                    m.compressed = true;
                } else {
                    m.encrypted = true;
                }
                m.size = stored.len() as u64;
            }
        });
        Ok(())
    }

    /// Deterministic per-instance RNG handle (used by the engine for jitter).
    pub fn rng(&self) -> &TrackedMutex<SimRng> {
        &self.rng
    }
}

/// Evaluation environment exposing one version's metadata to policy
/// conditions (`object.location == tier1 && object.dirty == true`).
struct ObjEnv<'a> {
    meta: &'a VersionMeta,
    tags: &'a BTreeSet<String>,
    now: SimInstant,
}

impl Env for ObjEnv<'_> {
    fn lookup(&self, path: &[String]) -> Option<EnvValue> {
        if path.len() == 3 && path[0] == "object" && path[1] == "tag" {
            // `object.tag.tmp == true`
            return Some(EnvValue::Bool(self.tags.contains(&path[2])));
        }
        if path.len() != 2 || path[0] != "object" {
            return None;
        }
        Some(match path[1].as_str() {
            "location" => EnvValue::Str(self.meta.location.clone()),
            "dirty" => EnvValue::Bool(self.meta.dirty),
            "size" => EnvValue::Num(self.meta.size as f64),
            "version" => EnvValue::Num(self.meta.version as f64),
            "accessCount" => EnvValue::Num(self.meta.access_count as f64),
            "ageMs" => EnvValue::Num(self.now.elapsed_since(self.meta.created).as_millis_f64()),
            "idleMs" => EnvValue::Num(
                self.now
                    .elapsed_since(self.meta.last_access)
                    .as_millis_f64(),
            ),
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_policy::{compile, parse};
    use wiera_sim::ManualClock;

    fn bytes(n: usize) -> Bytes {
        Bytes::from(vec![0x5Au8; n])
    }

    fn basic_instance() -> Arc<TieraInstance> {
        let cfg = InstanceConfig::new("t", Region::UsEast)
            .with_tier("tier1", "Memcached", 1 << 20)
            .with_tier("tier2", "EBS", 1 << 30);
        TieraInstance::build(cfg, ManualClock::new()).unwrap()
    }

    #[test]
    fn put_get_roundtrip_default_policy() {
        let inst = basic_instance();
        let put = inst.put("k", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(put.version, 1);
        assert!(put.latency > SimDuration::ZERO);
        let got = inst.get("k").unwrap();
        assert_eq!(got.value.unwrap().as_ref(), b"hello");
        assert_eq!(got.version, 1);
    }

    #[test]
    fn overwrite_creates_new_version() {
        let inst = basic_instance();
        inst.put("k", Bytes::from_static(b"v1")).unwrap();
        let second = inst.put("k", Bytes::from_static(b"v2")).unwrap();
        assert_eq!(second.version, 2);
        assert_eq!(inst.get("k").unwrap().value.unwrap().as_ref(), b"v2");
        assert_eq!(
            inst.get_version("k", 1).unwrap().value.unwrap().as_ref(),
            b"v1",
            "old versions remain readable"
        );
        assert_eq!(inst.get_version_list("k").unwrap(), vec![1, 2]);
    }

    #[test]
    fn get_missing_and_bad_version() {
        let inst = basic_instance();
        assert!(matches!(inst.get("nope"), Err(TieraError::NotFound(_))));
        inst.put("k", bytes(8)).unwrap();
        assert!(matches!(
            inst.get_version("k", 9),
            Err(TieraError::VersionNotFound(_, 9))
        ));
    }

    #[test]
    fn update_rewrites_in_place() {
        let inst = basic_instance();
        inst.put("k", Bytes::from_static(b"aaa")).unwrap();
        inst.update("k", 1, Bytes::from_static(b"bbbb")).unwrap();
        let got = inst.get_version("k", 1).unwrap();
        assert_eq!(got.value.unwrap().as_ref(), b"bbbb");
        assert_eq!(
            inst.get_version_list("k").unwrap(),
            vec![1],
            "no new version"
        );
        assert!(matches!(
            inst.update("k", 7, bytes(1)),
            Err(TieraError::VersionNotFound(_, 7))
        ));
    }

    #[test]
    fn remove_and_remove_version() {
        let inst = basic_instance();
        inst.put("k", bytes(10)).unwrap();
        inst.put("k", bytes(10)).unwrap();
        inst.remove_version("k", 1).unwrap();
        assert_eq!(inst.get_version_list("k").unwrap(), vec![2]);
        inst.remove("k").unwrap();
        assert!(matches!(inst.get("k"), Err(TieraError::NotFound(_))));
        assert!(matches!(inst.remove("k"), Err(TieraError::NotFound(_))));
    }

    #[test]
    fn version_gc_respects_max_versions() {
        let cfg = InstanceConfig::new("t", Region::UsEast)
            .with_tier("tier1", "EBS", 1 << 30)
            .with_max_versions(2);
        let inst = TieraInstance::build(cfg, ManualClock::new()).unwrap();
        for _ in 0..5 {
            inst.put("k", bytes(100)).unwrap();
        }
        assert_eq!(inst.get_version_list("k").unwrap(), vec![4, 5]);
        // Pruned version bytes are gone from the tier too.
        let t = inst.tier("tier1").unwrap().as_local().unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn last_write_wins_replication() {
        let clock = ManualClock::new();
        let inst = TieraInstance::build(
            InstanceConfig::new("t", Region::UsEast).with_tier("tier1", "EBS", 1 << 30),
            clock.clone(),
        )
        .unwrap();
        let t5 = SimInstant::EPOCH + SimDuration::from_secs(5);
        let t9 = SimInstant::EPOCH + SimDuration::from_secs(9);
        assert!(inst
            .apply_replicated("k", 3, t5, Bytes::from_static(b"r3"))
            .unwrap()
            .is_some());
        // Lower version loses.
        assert!(inst
            .apply_replicated("k", 2, t9, Bytes::from_static(b"r2"))
            .unwrap()
            .is_none());
        // Same version, newer mtime wins.
        assert!(inst
            .apply_replicated("k", 3, t9, Bytes::from_static(b"r3b"))
            .unwrap()
            .is_some());
        assert_eq!(inst.get("k").unwrap().value.unwrap().as_ref(), b"r3b");
        // Local put after replication continues the version sequence.
        let out = inst.put("k", Bytes::from_static(b"local")).unwrap();
        assert_eq!(out.version, 4);
    }

    #[test]
    fn low_latency_policy_stores_to_memory_with_dirty_bit() {
        let compiled =
            compile(&parse(wiera_policy::canned::LOW_LATENCY_INSTANCE).unwrap()).unwrap();
        let cfg = InstanceConfig::new("ll", Region::UsEast)
            .with_tier("tier1", "Memcached", 1 << 30)
            .with_tier("tier2", "EBS", 1 << 30)
            .with_rules(compiled.rules.clone());
        let inst = TieraInstance::build(cfg, ManualClock::new()).unwrap();
        let out = inst.put("k", bytes(4096)).unwrap();
        // Stored in memory only, marked dirty, fast.
        assert!(
            out.latency.as_millis_f64() < 5.0,
            "memory put {}",
            out.latency
        );
        inst.meta()
            .with("k", |o| {
                let m = o.latest().unwrap();
                assert_eq!(m.location, "tier1");
                assert!(m.dirty);
                assert!(m.replicas.is_empty());
            })
            .unwrap();
        // Timer flush copies dirty objects to tier2 and clears dirty.
        let acted = inst.run_timer_rules();
        assert_eq!(acted, 1);
        inst.meta()
            .with("k", |o| {
                let m = o.latest().unwrap();
                assert!(!m.dirty);
                assert!(m.replicas.contains("tier2"));
            })
            .unwrap();
        // Second run: nothing dirty.
        assert_eq!(inst.run_timer_rules(), 0);
    }

    #[test]
    fn persistent_policy_write_through_and_backup() {
        let compiled = compile(&parse(wiera_policy::canned::PERSISTENT_INSTANCE).unwrap()).unwrap();
        let cfg = InstanceConfig::new("p", Region::UsEast)
            .with_tier("tier1", "Memcached", 1 << 30)
            .with_tier("tier2", "EBS", 200_000) // small so 50% fills fast
            .with_tier("tier3", "S3", 0)
            .with_rules(compiled.rules.clone());
        let inst = TieraInstance::build(cfg, ManualClock::new()).unwrap();
        // No explicit insert.into rule: default store to tier1, then the
        // write-through rule scoped to tier1 copies to tier2 synchronously.
        let out = inst.put("a", bytes(60_000)).unwrap();
        inst.meta()
            .with("a", |o| {
                let m = o.latest().unwrap();
                assert_eq!(m.location, "tier1");
                assert!(m.replicas.contains("tier2"), "write-through replica");
            })
            .unwrap();
        assert!(out.latency.as_millis_f64() > 1.0, "includes the EBS write");
        // Fill tier2 past 50%: backup rule copies tier2 objects to S3.
        inst.put("b", bytes(60_000)).unwrap();
        assert_eq!(
            inst.run_filled_rules(),
            0,
            "location is tier1; what: matches location==tier2"
        );
        // The rule selects location==tier2; our objects live in tier1 with a
        // tier2 replica, so move one explicitly to exercise the filter.
        inst.move_version("a", 1, "tier2", None).unwrap();
        inst.move_version("b", 1, "tier2", None).unwrap();
        let acted = inst.run_filled_rules();
        assert_eq!(acted, 0, "edge already consumed at >=50% earlier check");
    }

    #[test]
    fn filled_rule_fires_once_per_crossing() {
        let src = "Tiera T() {
            event(tier1.filled == 50%) : response {
                copy(what:object.location == tier1, to:tier2);
            }
        }";
        let compiled = compile(&parse(src).unwrap()).unwrap();
        let cfg = InstanceConfig::new("f", Region::UsEast)
            .with_tier("tier1", "EBS", 1000)
            .with_tier("tier2", "S3", 0)
            .with_rules(compiled.rules);
        let inst = TieraInstance::build(cfg, ManualClock::new()).unwrap();
        inst.put("a", bytes(300)).unwrap();
        assert_eq!(inst.run_filled_rules(), 0, "under threshold");
        inst.put("b", bytes(300)).unwrap();
        assert_eq!(
            inst.run_filled_rules(),
            2,
            "crossed: both tier1 objects backed up"
        );
        assert_eq!(inst.run_filled_rules(), 0, "edge-triggered, no refire");
        // Drop below, then cross again → re-arms.
        inst.remove("a").unwrap();
        inst.remove("b").unwrap();
        assert_eq!(inst.run_filled_rules(), 0);
        inst.put("c", bytes(600)).unwrap();
        assert_eq!(inst.run_filled_rules(), 1, "re-armed after dropping below");
    }

    #[test]
    fn cold_rule_moves_idle_objects() {
        let compiled = compile(&parse(wiera_policy::canned::REDUCED_COST_POLICY).unwrap()).unwrap();
        let clock = ManualClock::new();
        let cfg = InstanceConfig::new("c", Region::UsWest)
            .with_tier("tier1", "LocalDisk", 1 << 30)
            .with_tier("tier2", "CheapestArchival", 0)
            .with_rules(compiled.rules.clone());
        let inst = TieraInstance::build(cfg, clock.clone()).unwrap();
        inst.put("cold", bytes(1000)).unwrap();
        clock.advance(SimDuration::from_hours(121));
        inst.put("hot", bytes(1000)).unwrap();
        let moved = inst.run_cold_rules();
        assert_eq!(moved, 1);
        inst.meta()
            .with("cold", |o| {
                assert_eq!(o.latest().unwrap().location, "tier2");
            })
            .unwrap();
        inst.meta()
            .with("hot", |o| {
                assert_eq!(o.latest().unwrap().location, "tier1");
            })
            .unwrap();
        // Cold object no longer occupies the disk tier.
        let disk = inst.tier("tier1").unwrap().as_local().unwrap();
        assert_eq!(disk.len(), 1);
    }

    #[test]
    fn read_falls_back_when_memory_evicts() {
        // Tiny memcached tier: second put evicts the first; the get must
        // fall back to the EBS replica and heal metadata.
        let src = "Tiera T() {
            event(insert.into) : response {
                store(what:insert.object, to:tier1);
                copy(what:insert.object, to:tier2);
            }
        }";
        let compiled = compile(&parse(src).unwrap()).unwrap();
        let cfg = InstanceConfig::new("e", Region::UsEast)
            .with_tier("tier1", "Memcached", 1500)
            .with_tier("tier2", "EBS", 1 << 30)
            .with_rules(compiled.rules);
        let clock = ManualClock::new();
        let inst = TieraInstance::build(cfg, clock.clone()).unwrap();
        inst.put("a", bytes(1000)).unwrap();
        clock.advance(SimDuration::from_secs(1));
        inst.put("b", bytes(1000)).unwrap(); // evicts "a" from memory
        let got = inst.get("a").unwrap();
        assert_eq!(got.value.unwrap().len(), 1000);
        inst.meta()
            .with("a", |o| {
                let m = o.latest().unwrap();
                assert_eq!(m.location, "tier2", "healed to the surviving holder");
            })
            .unwrap();
    }

    #[test]
    fn compress_and_encrypt_sweeps_roundtrip() {
        let src = "Tiera T(time t) {
            event(time=t) : response {
                compress(what:object.size > 100);
                encrypt(what:object.size > 0);
            }
        }";
        let compiled = compile(&parse(src).unwrap()).unwrap();
        let cfg = InstanceConfig::new("z", Region::UsEast)
            .with_tier("tier1", "EBS", 1 << 30)
            .with_rules(compiled.rules);
        let inst = TieraInstance::build(cfg, ManualClock::new()).unwrap();
        let payload = Bytes::from(vec![9u8; 5000]);
        inst.put("big", payload.clone()).unwrap();
        inst.put("small", Bytes::from_static(b"tiny")).unwrap();
        let acted = inst.run_timer_rules();
        assert!(acted >= 2);
        // Both read back as the original plaintext.
        assert_eq!(inst.get("big").unwrap().value.unwrap(), payload);
        assert_eq!(inst.get("small").unwrap().value.unwrap().as_ref(), b"tiny");
        inst.meta()
            .with("big", |o| {
                let m = o.latest().unwrap();
                assert!(m.compressed && m.encrypted);
                assert!(m.size < 5000, "compressed on disk");
            })
            .unwrap();
        inst.meta()
            .with("small", |o| {
                let m = o.latest().unwrap();
                assert!(!m.compressed && m.encrypted);
            })
            .unwrap();
        // Idempotent: running again changes nothing.
        inst.run_timer_rules();
        assert_eq!(inst.get("big").unwrap().value.unwrap(), payload);
    }

    #[test]
    fn grow_action_expands_tier() {
        let src = "Tiera T(time t) {
            event(time=t) : response { grow(what:tier1, by:1K); }
        }";
        let compiled = compile(&parse(src).unwrap()).unwrap();
        let cfg = InstanceConfig::new("g", Region::UsEast)
            .with_tier("tier1", "EBS", 1000)
            .with_rules(compiled.rules);
        let inst = TieraInstance::build(cfg, ManualClock::new()).unwrap();
        assert!(inst.put("big", bytes(1500)).is_err(), "too large initially");
        inst.run_timer_rules();
        inst.put("big", bytes(1500)).unwrap();
    }

    #[test]
    fn tagged_objects_and_tag_conditions() {
        let src = "Tiera T(time t) {
            event(time=t) : response { delete(what:object.tag.tmp == true); }
        }";
        let compiled = compile(&parse(src).unwrap()).unwrap();
        let cfg = InstanceConfig::new("tags", Region::UsEast)
            .with_tier("tier1", "EBS", 1 << 30)
            .with_rules(compiled.rules);
        let inst = TieraInstance::build(cfg, ManualClock::new()).unwrap();
        inst.put_tagged("scratch", bytes(10), &["tmp"]).unwrap();
        inst.put("keep", bytes(10)).unwrap();
        let acted = inst.run_timer_rules();
        assert_eq!(acted, 1);
        assert!(inst.get("scratch").is_err());
        assert!(inst.get("keep").is_ok());
    }

    #[test]
    fn modular_instance_as_readonly_tier() {
        let clock = ManualClock::new();
        let backing = TieraInstance::build(
            InstanceConfig::new("raw-big-data", Region::UsEast).with_tier("tier1", "S3", 0),
            clock.clone(),
        )
        .unwrap();
        backing
            .put("dataset@v1", Bytes::from_static(b"raw"))
            .unwrap();

        let front = TieraInstance::build(
            InstanceConfig::new("intermediate", Region::UsEast).with_tier(
                "tier1",
                "Memcached",
                1 << 20,
            ),
            clock.clone(),
        )
        .unwrap();
        let front = front.mount_instance("tier2", backing.clone(), true);
        // Writes to the read-only mounted tier fail…
        let h = front.tier("tier2").unwrap();
        assert!(matches!(
            h.put("x", Bytes::from_static(b"y")),
            Err(TieraError::ReadOnlyTier(_))
        ));
        // …but reads pass through to the backing instance.
        let (data, lat) = h.get("dataset@v1").unwrap();
        assert_eq!(data.as_ref(), b"raw");
        assert!(lat > SimDuration::ZERO);
        // And the front instance still takes local writes.
        front.put("intermediate-result", bytes(64)).unwrap();
        assert!(front.get("intermediate-result").is_ok());
    }

    #[test]
    fn apply_batch_amortizes_overhead_and_isolates_failures() {
        let inst = basic_instance();
        inst.put("seed", Bytes::from_static(b"s")).unwrap();
        let ops = vec![
            BatchOp::Put {
                key: "a".into(),
                value: Bytes::from_static(b"va"),
            },
            BatchOp::Get {
                key: "missing".into(),
            },
            BatchOp::Put {
                key: "a".into(),
                value: Bytes::from_static(b"va2"),
            },
            BatchOp::Get { key: "seed".into() },
        ];
        let (results, total) = inst.apply_batch(&ops);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].as_ref().unwrap().version, 1);
        assert!(
            matches!(results[1], Err(TieraError::NotFound(_))),
            "missing key fails alone"
        );
        assert_eq!(
            results[2].as_ref().unwrap().version,
            2,
            "same-key puts chain versions"
        );
        assert_eq!(
            results[3]
                .as_ref()
                .unwrap()
                .value
                .as_ref()
                .unwrap()
                .as_ref(),
            b"s"
        );
        // The batch pays the metadata overhead once: its total is below the
        // per-item sum plus one standalone overhead charge per extra item.
        let item_sum: SimDuration = results
            .iter()
            .flatten()
            .map(|o| o.latency)
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert!(total >= item_sum, "total {total} covers items {item_sum}");
        assert!(
            total < item_sum + SimDuration::from_micros(300),
            "no per-item overhead stacking: {total} vs {item_sum}"
        );
    }

    #[test]
    fn expired_deadline_fails_ops_fast() {
        let clock = ManualClock::new();
        let inst = TieraInstance::build(
            InstanceConfig::new("dl", Region::UsEast).with_tier("tier1", "EBS", 1 << 30),
            clock.clone(),
        )
        .unwrap();
        inst.put("k", bytes(8)).unwrap();
        let deadline = SimInstant::EPOCH + SimDuration::from_millis(10);
        clock.advance(SimDuration::from_millis(20));
        crate::deadline::with_deadline(Some(deadline), || {
            assert_eq!(inst.get("k").unwrap_err(), TieraError::DeadlineExceeded);
            assert_eq!(
                inst.put("k", bytes(8)).unwrap_err(),
                TieraError::DeadlineExceeded
            );
            let (results, _) = inst.apply_batch(&[BatchOp::Get { key: "k".into() }]);
            assert_eq!(
                results[0].as_ref().unwrap_err(),
                &TieraError::DeadlineExceeded
            );
        });
        // Outside the scope the same ops succeed: nothing was torn down.
        assert!(inst.get("k").is_ok());
    }

    #[test]
    fn open_tier_breaker_reroutes_reads_to_replica_holder() {
        // Both tiers hold the object; brown out the fast one until its
        // breaker opens, then the read must go to the healthy slow tier.
        let src = "Tiera T() {
            event(insert.into) : response {
                store(what:insert.object, to:tier1);
                copy(what:insert.object, to:tier2);
            }
        }";
        let compiled = compile(&parse(src).unwrap()).unwrap();
        let cfg = InstanceConfig::new("bo", Region::UsEast)
            .with_tier("tier1", "Memcached", 1 << 20)
            .with_tier("tier2", "EBS", 1 << 30)
            .with_rules(compiled.rules);
        let clock = ManualClock::new();
        let inst = TieraInstance::build(cfg, clock.clone()).unwrap();
        inst.put("k", bytes(64)).unwrap();

        let mem = inst.tier("tier1").unwrap().as_local().unwrap().clone();
        mem.set_degraded(500.0);
        // Feed the breaker until the latency EWMA trips it.
        for _ in 0..40 {
            clock.advance(SimDuration::from_millis(5));
            inst.get("k").unwrap();
            if inst.tier_breaker("tier1").unwrap().state() == BreakerState::Open {
                break;
            }
        }
        assert_eq!(
            inst.tier_breaker("tier1").unwrap().state(),
            BreakerState::Open,
            "sustained brownout must open the tier breaker"
        );
        assert!(inst.browned_out());
        // With tier1 deprioritized, the read is served by tier2 at EBS
        // speed instead of the browned-out memory tier's 500x latency.
        let out = inst.get("k").unwrap();
        assert!(
            out.latency.as_millis_f64() < 50.0,
            "read rerouted around the brownout: {}",
            out.latency
        );
        // Heal: probes close the breaker again and memory-speed reads return.
        mem.set_degraded(1.0);
        for _ in 0..40 {
            clock.advance(SimDuration::from_millis(200));
            inst.get("k").unwrap();
            if inst.tier_breaker("tier1").unwrap().state() == BreakerState::Closed {
                break;
            }
        }
        assert_eq!(
            inst.tier_breaker("tier1").unwrap().state(),
            BreakerState::Closed,
            "healed tier must close again via probes"
        );
        assert!(!inst.browned_out());
    }

    #[test]
    fn stats_count_app_operations() {
        let inst = basic_instance();
        inst.put("k", bytes(1)).unwrap();
        inst.get("k").unwrap();
        inst.get("k").unwrap();
        assert_eq!(inst.stats.app_puts.load(Ordering::Relaxed), 1);
        assert_eq!(inst.stats.app_gets.load(Ordering::Relaxed), 2);
    }
}
