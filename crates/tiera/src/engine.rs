//! Background event engine for an instance.
//!
//! Drives the rules that the paper runs on "dedicated threads" (§4.3):
//! timers (write-back flushes), tier-filled checks and cold-data scans.
//! Each concern gets its own thread against the shared (scaled) clock, so
//! the engine behaves identically under time compression.

use crate::instance::TieraInstance;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wiera_policy::compile::EventKind;
use wiera_sim::SimDuration;

/// Handle to the running engine threads of one instance.
pub struct InstanceEngine {
    stop: Arc<AtomicBool>,
    /// Total objects acted on by background rules (observability).
    pub actions_taken: Arc<AtomicU64>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl InstanceEngine {
    /// Default period for rules whose timer parameter was left unbound.
    pub const DEFAULT_TIMER: SimDuration = SimDuration::from_secs(10);
    /// How often filled/cold rules are evaluated.
    pub const MAINTENANCE_PERIOD: SimDuration = SimDuration::from_secs(5);

    /// Start the engine for `inst`. One thread per timer rule (at its own
    /// period) plus one maintenance thread for filled/cold rules.
    pub fn start(inst: Arc<TieraInstance>) -> Result<Self, String> {
        let stop = Arc::new(AtomicBool::new(false));
        let actions_taken = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();

        // Collect distinct timer periods from the rules.
        let mut periods: Vec<SimDuration> = inst
            .rules()
            .iter()
            .filter_map(|r| match r.event {
                EventKind::Timer { period_ms } => Some(
                    period_ms
                        .map(SimDuration::from_millis_f64)
                        .unwrap_or(Self::DEFAULT_TIMER),
                ),
                _ => None,
            })
            .collect();
        periods.sort();
        periods.dedup();

        for period in periods {
            let inst = inst.clone();
            let stop = stop.clone();
            let acted = actions_taken.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tiera-timer-{}", inst.name()))
                    .spawn(move || {
                        while !stop.load(Ordering::Acquire) {
                            inst.clock().sleep(period);
                            if stop.load(Ordering::Acquire) {
                                return;
                            }
                            let n = inst.run_timer_rules();
                            acted.fetch_add(n as u64, Ordering::Relaxed);
                        }
                    })
                    .map_err(|e| format!("cannot spawn timer thread: {e}"))?,
            );
        }

        let has_maintenance = inst.rules().iter().any(|r| {
            matches!(
                r.event,
                EventKind::TierFilled { .. } | EventKind::ColdData { .. }
            )
        });
        if has_maintenance {
            let inst = inst.clone();
            let stop = stop.clone();
            let acted = actions_taken.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tiera-maint-{}", inst.name()))
                    .spawn(move || {
                        while !stop.load(Ordering::Acquire) {
                            inst.clock().sleep(Self::MAINTENANCE_PERIOD);
                            if stop.load(Ordering::Acquire) {
                                return;
                            }
                            let n = inst.run_maintenance();
                            acted.fetch_add(n as u64, Ordering::Relaxed);
                        }
                    })
                    .map_err(|e| format!("cannot spawn maintenance thread: {e}"))?,
            );
        }

        Ok(InstanceEngine {
            stop,
            actions_taken,
            threads,
        })
    }

    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Stop and join all engine threads.
    pub fn shutdown(mut self) {
        self.stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for InstanceEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceConfig;
    use bytes::Bytes;
    use wiera_net::Region;
    use wiera_policy::{compile, parse};
    use wiera_sim::ScaledClock;

    #[test]
    fn engine_flushes_writeback_automatically() {
        // LowLatency policy with a 1-second timer, at 500x compression:
        // the flush should happen within a few wall milliseconds.
        let src = wiera_policy::canned::LOW_LATENCY_INSTANCE;
        let spec = parse(src).unwrap();
        let mut params = std::collections::BTreeMap::new();
        params.insert("t".to_string(), 1000.0); // 1s timer
        let compiled = wiera_policy::compile::compile_with_params(&spec, &params).unwrap();
        let cfg = InstanceConfig::new("ll", Region::UsEast)
            .with_tier("tier1", "Memcached", 1 << 30)
            .with_tier("tier2", "EBS", 1 << 30)
            .with_rules(compiled.rules);
        let clock = ScaledClock::shared(500.0);
        let inst = crate::instance::TieraInstance::build(cfg, clock).unwrap();
        let engine = InstanceEngine::start(inst.clone()).unwrap();

        inst.put("k", Bytes::from_static(b"data")).unwrap();
        // Wait up to 2 wall-seconds for the background flush.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let flushed = loop {
            let dirty = inst
                .meta()
                .with("k", |o| o.latest().unwrap().dirty)
                .unwrap();
            if !dirty {
                break true;
            }
            if std::time::Instant::now() > deadline {
                break false;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        engine.shutdown();
        assert!(flushed, "write-back flush never ran");
        assert!(engine_took_actions(&inst));
    }

    fn engine_took_actions(inst: &crate::instance::TieraInstance) -> bool {
        inst.meta()
            .with("k", |o| o.latest().unwrap().replicas.contains("tier2"))
            .unwrap()
    }

    #[test]
    fn engine_without_rules_spawns_nothing_and_stops_cleanly() {
        let cfg = InstanceConfig::new("bare", Region::UsEast).with_tier("tier1", "EBS", 1 << 20);
        let inst = crate::instance::TieraInstance::build(cfg, ScaledClock::shared(100.0)).unwrap();
        let engine = InstanceEngine::start(inst).unwrap();
        assert_eq!(engine.threads.len(), 0);
        engine.shutdown();
    }

    #[test]
    fn engine_runs_cold_scan() {
        let compiled = compile(&parse(wiera_policy::canned::REDUCED_COST_POLICY).unwrap()).unwrap();
        let cfg = InstanceConfig::new("cold", Region::UsWest)
            .with_tier("tier1", "LocalDisk", 1 << 30)
            .with_tier("tier2", "CheapestArchival", 0)
            .with_rules(compiled.rules);
        // 1 wall ms ≈ 100 modeled minutes: 120h pass in ~72 wall ms,
        // maintenance period (5s) is sub-millisecond.
        let clock = ScaledClock::shared(6_000_000.0);
        let inst = crate::instance::TieraInstance::build(cfg, clock).unwrap();
        inst.put("c", Bytes::from_static(b"soon cold")).unwrap();
        let engine = InstanceEngine::start(inst.clone()).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(3);
        let migrated = loop {
            let loc = inst
                .meta()
                .with("c", |o| o.latest().unwrap().location.clone())
                .unwrap();
            if loc == "tier2" {
                break true;
            }
            if std::time::Instant::now() > deadline {
                break false;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        engine.shutdown();
        assert!(migrated, "cold data never migrated");
    }
}
