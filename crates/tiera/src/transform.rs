//! Functional `compress` and `encrypt` responses.
//!
//! Tiera's response vocabulary includes `compress` and `encrypt` (§2.1).
//! The paper never evaluates them, so these are deliberately simple but
//! *real* (round-trippable) implementations: byte-level run-length encoding
//! and a keyed xorshift stream cipher. DESIGN.md §6 records this choice.

use bytes::Bytes;

/// Run-length encode: `(count, byte)` pairs, count ≤ 255.
pub fn compress(data: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    Bytes::from(out)
}

/// Inverse of [`compress`]. Fails on truncated input.
pub fn decompress(data: &[u8]) -> Result<Bytes, String> {
    if !data.len().is_multiple_of(2) {
        return Err("truncated RLE stream".into());
    }
    let mut out = Vec::with_capacity(data.len() * 2);
    for pair in data.chunks_exact(2) {
        let (count, byte) = (pair[0], pair[1]);
        if count == 0 {
            return Err("zero-length run".into());
        }
        out.extend(std::iter::repeat_n(byte, count as usize));
    }
    Ok(Bytes::from(out))
}

fn keystream(key: u64) -> impl FnMut() -> u8 {
    let mut state = key ^ 0x9E3779B97F4A7C15;
    move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545F4914F6CDD1D) >> 56) as u8
    }
}

/// Symmetric stream cipher: `encrypt(encrypt(x)) == x` for the same key.
pub fn encrypt(data: &[u8], key: u64) -> Bytes {
    let mut ks = keystream(key);
    Bytes::from(data.iter().map(|&b| b ^ ks()).collect::<Vec<u8>>())
}

/// Alias of [`encrypt`] for readability at call sites.
pub fn decrypt(data: &[u8], key: u64) -> Bytes {
    encrypt(data, key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rle_roundtrip_basic() {
        let data = b"aaaabbbcccccccd";
        let c = compress(data);
        assert!(c.len() < data.len());
        assert_eq!(decompress(&c).unwrap().as_ref(), data);
    }

    #[test]
    fn rle_handles_long_runs_and_empty() {
        let data = vec![7u8; 1000];
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap().as_ref(), &data[..]);
        assert_eq!(decompress(&compress(b"")).unwrap().len(), 0);
    }

    #[test]
    fn rle_rejects_bad_streams() {
        assert!(decompress(&[1]).is_err());
        assert!(decompress(&[0, 42]).is_err());
    }

    #[test]
    fn cipher_roundtrip_and_key_sensitivity() {
        let data = b"the quick brown fox";
        let e = encrypt(data, 42);
        assert_ne!(e.as_ref(), data.as_ref());
        assert_eq!(decrypt(&e, 42).as_ref(), data.as_ref());
        assert_ne!(decrypt(&e, 43).as_ref(), data.as_ref());
    }

    proptest! {
        #[test]
        fn prop_rle_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let c = compress(&data);
            let d = decompress(&c).unwrap();
            prop_assert_eq!(d.as_ref(), &data[..]);
        }

        #[test]
        fn prop_cipher_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..2048), key: u64) {
            let e = encrypt(&data, key);
            let d = decrypt(&e, key);
            prop_assert_eq!(d.as_ref(), &data[..]);
        }

        #[test]
        fn prop_compressible_data_shrinks(byte: u8, len in 64usize..512) {
            let data = vec![byte; len];
            prop_assert!(compress(&data).len() <= data.len() / 16 + 2);
        }
    }
}
