//! Object-metadata store — the BerkeleyDB stand-in.
//!
//! The paper stores and persists all object metadata in BerkeleyDB (§4.2).
//! Here the store is an in-memory map with snapshot/restore to a serialized
//! byte image, which is what instance recovery needs from it.
//!
//! Since the hot-path overhaul the map is **sharded**: keys are partitioned
//! by FNV-1a hash into [`META_SHARDS`] independent `TrackedRwLock`ed
//! `BTreeMap`s, so writers to different keys no longer serialize on one
//! engine-wide lock, and `apply_batch` can group a bulk request by shard
//! and take each shard's lock exactly once per batch
//! ([`MetaStore::shard_write`]). Whole-store scans (cold-data sweeps,
//! snapshots) visit shards one at a time — never holding two shard locks
//! simultaneously, which keeps wiera-check's same-class-nesting rule clean.
//! The snapshot image format is unchanged: shards are merged into one map
//! on serialize and re-split on restore.

use crate::object::{ObjectMeta, VersionId, VersionMeta};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use wiera_sim::lockreg::{TrackedRwLock, TrackedWriteGuard};
use wiera_sim::SimInstant;

/// Number of independently locked key partitions.
pub const META_SHARDS: usize = 16;

/// Stable key → shard mapping (FNV-1a, endian-independent).
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Thread-safe metadata store for one instance.
pub struct MetaStore {
    shards: Vec<TrackedRwLock<BTreeMap<String, ObjectMeta>>>,
    /// Write-lock acquisitions per shard, for the batch-locking tests.
    write_acquisitions: Vec<AtomicU64>,
}

impl Default for MetaStore {
    fn default() -> Self {
        Self::new()
    }
}

/// One shard's write session: the map of every key that hashes there.
pub type MetaShardGuard<'a> = TrackedWriteGuard<'a, BTreeMap<String, ObjectMeta>>;

impl MetaStore {
    pub fn new() -> Self {
        MetaStore {
            shards: (0..META_SHARDS)
                .map(|_| TrackedRwLock::new("tiera.metastore", BTreeMap::new()))
                .collect(),
            write_acquisitions: (0..META_SHARDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns `key`.
    pub fn shard_of(&self, key: &str) -> usize {
        (fnv1a(key) % self.shards.len() as u64) as usize
    }

    /// Open one write session on a shard. `apply_batch` groups a bulk
    /// request by [`MetaStore::shard_of`] and calls this once per group, so
    /// a batch pays one lock acquisition per touched shard instead of
    /// several per item. Never hold two shard guards at once.
    pub fn shard_write(&self, shard: usize) -> MetaShardGuard<'_> {
        self.write_acquisitions[shard].fetch_add(1, Ordering::Relaxed);
        self.shards[shard].write()
    }

    /// Per-shard write-lock acquisition counts since construction
    /// (observability for the batch-locking tests).
    pub fn write_lock_counts(&self) -> Vec<u64> {
        self.write_acquisitions
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Run `f` over the object's metadata, creating the entry if absent.
    pub fn with_mut<R>(&self, key: &str, f: impl FnOnce(&mut ObjectMeta) -> R) -> R {
        let mut map = self.shard_write(self.shard_of(key));
        f(map.entry(key.to_string()).or_default())
    }

    /// Run `f` over existing metadata, mutably; `None` if the key is
    /// unknown (unlike [`MetaStore::with_mut`], never creates the entry).
    pub fn with_existing_mut<R>(
        &self,
        key: &str,
        f: impl FnOnce(&mut ObjectMeta) -> R,
    ) -> Option<R> {
        let mut map = self.shard_write(self.shard_of(key));
        map.get_mut(key).map(f)
    }

    /// Run `f` over existing metadata; `None` if the key is unknown.
    pub fn with<R>(&self, key: &str, f: impl FnOnce(&ObjectMeta) -> R) -> Option<R> {
        self.shards[self.shard_of(key)].read().get(key).map(f)
    }

    pub fn contains(&self, key: &str) -> bool {
        self.shards[self.shard_of(key)].read().contains_key(key)
    }

    pub fn remove(&self, key: &str) -> Option<ObjectMeta> {
        self.shard_write(self.shard_of(key)).remove(key)
    }

    /// Remove one version; drops the whole entry when no versions remain.
    /// Returns the removed version's metadata.
    pub fn remove_version(&self, key: &str, version: VersionId) -> Option<VersionMeta> {
        let mut map = self.shard_write(self.shard_of(key));
        let obj = map.get_mut(key)?;
        let meta = obj.versions.remove(&version);
        if obj.versions.is_empty() {
            map.remove(key);
        }
        meta
    }

    /// All keys, sorted (shards are visited one at a time).
    pub fn keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().keys().cloned());
        }
        out.sort();
        out
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Snapshot of `(key, version)` pairs whose last access is older than
    /// `cutoff` — the ColdDataMonitoring scan (§4.3). Sorted by key.
    pub fn cold_versions(&self, cutoff: SimInstant) -> Vec<(String, VersionId)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.read();
            for (k, obj) in map.iter() {
                for (v, meta) in &obj.versions {
                    if meta.last_access < cutoff {
                        out.push((k.clone(), *v));
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// All `(key, version)` pairs (for policy sweeps). Sorted by key.
    pub fn all_versions(&self) -> Vec<(String, VersionId)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.read();
            out.extend(
                map.iter()
                    .flat_map(|(k, o)| o.versions.keys().map(move |v| (k.clone(), *v))),
            );
        }
        out.sort();
        out
    }

    /// Serialize to a persistent image (the "BerkeleyDB file"). Shards are
    /// merged, so the image format is identical to the pre-sharding store.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut merged: BTreeMap<String, ObjectMeta> = BTreeMap::new();
        for shard in &self.shards {
            for (k, o) in shard.read().iter() {
                merged.insert(k.clone(), o.clone());
            }
        }
        serde_json::to_vec(&merged).unwrap_or_else(|e| panic!("metadata serializes: {e}"))
    }

    /// Restore from an image produced by [`MetaStore::snapshot`].
    pub fn restore(image: &[u8]) -> Result<Self, String> {
        let objects: BTreeMap<String, ObjectMeta> =
            serde_json::from_slice(image).map_err(|e| e.to_string())?;
        let store = MetaStore::new();
        for (k, o) in objects {
            let shard = store.shard_of(&k);
            store.shards[shard].write().insert(k, o);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_sim::SimDuration;

    fn t(s: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(s)
    }

    #[test]
    fn with_mut_creates_entry() {
        let ms = MetaStore::new();
        assert!(!ms.contains("k"));
        let v = ms.with_mut("k", |o| {
            let v = o.next_version();
            o.versions.insert(v, VersionMeta::new(v, 8, t(0), "tier1"));
            v
        });
        assert_eq!(v, 1);
        assert!(ms.contains("k"));
        assert_eq!(ms.with("k", |o| o.latest_version()).flatten(), Some(1));
    }

    #[test]
    fn remove_version_drops_empty_entry() {
        let ms = MetaStore::new();
        ms.with_mut("k", |o| {
            o.versions.insert(1, VersionMeta::new(1, 8, t(0), "tier1"));
            o.versions.insert(2, VersionMeta::new(2, 8, t(1), "tier1"));
        });
        assert!(ms.remove_version("k", 1).is_some());
        assert!(ms.contains("k"));
        assert!(ms.remove_version("k", 2).is_some());
        assert!(!ms.contains("k"), "entry vanishes with its last version");
        assert!(ms.remove_version("k", 2).is_none());
    }

    #[test]
    fn cold_scan_finds_stale_versions() {
        let ms = MetaStore::new();
        ms.with_mut("hot", |o| {
            o.versions
                .insert(1, VersionMeta::new(1, 8, t(100), "tier1"));
        });
        ms.with_mut("cold", |o| {
            o.versions.insert(1, VersionMeta::new(1, 8, t(1), "tier1"));
        });
        let cold = ms.cold_versions(t(50));
        assert_eq!(cold, vec![("cold".to_string(), 1)]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let ms = MetaStore::new();
        ms.with_mut("a", |o| {
            o.tags.insert("tmp".into());
            let mut m = VersionMeta::new(1, 100, t(3), "tier2");
            m.dirty = true;
            m.replicas.insert("tier3".into());
            o.versions.insert(1, m);
        });
        let image = ms.snapshot();
        let back = MetaStore::restore(&image).unwrap();
        assert_eq!(back.len(), 1);
        back.with("a", |o| {
            assert!(o.tags.contains("tmp"));
            let m = o.latest().unwrap();
            assert!(m.dirty);
            assert_eq!(m.location, "tier2");
            assert!(m.replicas.contains("tier3"));
        })
        .unwrap();
        assert!(MetaStore::restore(b"not json").is_err());
    }

    #[test]
    fn all_versions_enumerates_everything() {
        let ms = MetaStore::new();
        for k in ["a", "b"] {
            ms.with_mut(k, |o| {
                o.versions.insert(1, VersionMeta::new(1, 8, t(0), "tier1"));
                o.versions.insert(2, VersionMeta::new(2, 8, t(1), "tier1"));
            });
        }
        let mut all = ms.all_versions();
        all.sort();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0], ("a".to_string(), 1));
    }

    #[test]
    fn keys_spread_across_shards_and_stay_sorted() {
        let ms = MetaStore::new();
        let keys: Vec<String> = (0..256).map(|i| format!("key{i:04}")).collect();
        for k in &keys {
            ms.with_mut(k, |o| {
                o.versions.insert(1, VersionMeta::new(1, 8, t(0), "tier1"));
            });
        }
        assert_eq!(ms.len(), 256);
        assert_eq!(ms.keys(), keys, "keys() is globally sorted");
        // 256 uniform keys should land on well more than one shard.
        let hit: usize = (0..ms.shard_count())
            .filter(|&s| keys.iter().any(|k| ms.shard_of(k) == s))
            .count();
        assert!(hit > META_SHARDS / 2, "keys spread over shards, got {hit}");
    }

    #[test]
    fn shard_write_counts_acquisitions() {
        let ms = MetaStore::new();
        let before = ms.write_lock_counts();
        ms.with_mut("k", |_| ());
        let after = ms.write_lock_counts();
        let shard = ms.shard_of("k");
        assert_eq!(after[shard], before[shard] + 1);
        assert_eq!(
            after.iter().sum::<u64>(),
            before.iter().sum::<u64>() + 1,
            "exactly one shard lock taken"
        );
    }
}
