//! Object-metadata store — the BerkeleyDB stand-in.
//!
//! The paper stores and persists all object metadata in BerkeleyDB (§4.2).
//! Here the store is an in-memory map with snapshot/restore to a serialized
//! byte image, which is what instance recovery needs from it.

use crate::object::{ObjectMeta, VersionId, VersionMeta};
use std::collections::BTreeMap;
use wiera_sim::lockreg::TrackedRwLock;
use wiera_sim::SimInstant;

/// Thread-safe metadata store for one instance.
pub struct MetaStore {
    objects: TrackedRwLock<BTreeMap<String, ObjectMeta>>,
}

impl Default for MetaStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MetaStore {
    pub fn new() -> Self {
        MetaStore {
            objects: TrackedRwLock::new("tiera.metastore", BTreeMap::new()),
        }
    }

    /// Run `f` over the object's metadata, creating the entry if absent.
    pub fn with_mut<R>(&self, key: &str, f: impl FnOnce(&mut ObjectMeta) -> R) -> R {
        let mut map = self.objects.write();
        f(map.entry(key.to_string()).or_default())
    }

    /// Run `f` over existing metadata; `None` if the key is unknown.
    pub fn with<R>(&self, key: &str, f: impl FnOnce(&ObjectMeta) -> R) -> Option<R> {
        self.objects.read().get(key).map(f)
    }

    pub fn contains(&self, key: &str) -> bool {
        self.objects.read().contains_key(key)
    }

    pub fn remove(&self, key: &str) -> Option<ObjectMeta> {
        self.objects.write().remove(key)
    }

    /// Remove one version; drops the whole entry when no versions remain.
    /// Returns the removed version's metadata.
    pub fn remove_version(&self, key: &str, version: VersionId) -> Option<VersionMeta> {
        let mut map = self.objects.write();
        let obj = map.get_mut(key)?;
        let meta = obj.versions.remove(&version);
        if obj.versions.is_empty() {
            map.remove(key);
        }
        meta
    }

    pub fn keys(&self) -> Vec<String> {
        self.objects.read().keys().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }

    /// Snapshot of `(key, version)` pairs whose last access is older than
    /// `cutoff` — the ColdDataMonitoring scan (§4.3).
    pub fn cold_versions(&self, cutoff: SimInstant) -> Vec<(String, VersionId)> {
        let map = self.objects.read();
        let mut out = Vec::new();
        for (k, obj) in map.iter() {
            for (v, meta) in &obj.versions {
                if meta.last_access < cutoff {
                    out.push((k.clone(), *v));
                }
            }
        }
        out
    }

    /// All `(key, version)` pairs (for policy sweeps).
    pub fn all_versions(&self) -> Vec<(String, VersionId)> {
        let map = self.objects.read();
        map.iter()
            .flat_map(|(k, o)| o.versions.keys().map(move |v| (k.clone(), *v)))
            .collect()
    }

    /// Serialize to a persistent image (the "BerkeleyDB file").
    pub fn snapshot(&self) -> Vec<u8> {
        serde_json::to_vec(&*self.objects.read()).expect("metadata serializes")
    }

    /// Restore from an image produced by [`MetaStore::snapshot`].
    pub fn restore(image: &[u8]) -> Result<Self, String> {
        let objects: BTreeMap<String, ObjectMeta> =
            serde_json::from_slice(image).map_err(|e| e.to_string())?;
        Ok(MetaStore {
            objects: TrackedRwLock::new("tiera.metastore", objects),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_sim::SimDuration;

    fn t(s: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(s)
    }

    #[test]
    fn with_mut_creates_entry() {
        let ms = MetaStore::new();
        assert!(!ms.contains("k"));
        let v = ms.with_mut("k", |o| {
            let v = o.next_version();
            o.versions.insert(v, VersionMeta::new(v, 8, t(0), "tier1"));
            v
        });
        assert_eq!(v, 1);
        assert!(ms.contains("k"));
        assert_eq!(ms.with("k", |o| o.latest_version()).flatten(), Some(1));
    }

    #[test]
    fn remove_version_drops_empty_entry() {
        let ms = MetaStore::new();
        ms.with_mut("k", |o| {
            o.versions.insert(1, VersionMeta::new(1, 8, t(0), "tier1"));
            o.versions.insert(2, VersionMeta::new(2, 8, t(1), "tier1"));
        });
        assert!(ms.remove_version("k", 1).is_some());
        assert!(ms.contains("k"));
        assert!(ms.remove_version("k", 2).is_some());
        assert!(!ms.contains("k"), "entry vanishes with its last version");
        assert!(ms.remove_version("k", 2).is_none());
    }

    #[test]
    fn cold_scan_finds_stale_versions() {
        let ms = MetaStore::new();
        ms.with_mut("hot", |o| {
            o.versions
                .insert(1, VersionMeta::new(1, 8, t(100), "tier1"));
        });
        ms.with_mut("cold", |o| {
            o.versions.insert(1, VersionMeta::new(1, 8, t(1), "tier1"));
        });
        let cold = ms.cold_versions(t(50));
        assert_eq!(cold, vec![("cold".to_string(), 1)]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let ms = MetaStore::new();
        ms.with_mut("a", |o| {
            o.tags.insert("tmp".into());
            let mut m = VersionMeta::new(1, 100, t(3), "tier2");
            m.dirty = true;
            m.replicas.insert("tier3".into());
            o.versions.insert(1, m);
        });
        let image = ms.snapshot();
        let back = MetaStore::restore(&image).unwrap();
        assert_eq!(back.len(), 1);
        back.with("a", |o| {
            assert!(o.tags.contains("tmp"));
            let m = o.latest().unwrap();
            assert!(m.dirty);
            assert_eq!(m.location, "tier2");
            assert!(m.replicas.contains("tier3"));
        })
        .unwrap();
        assert!(MetaStore::restore(b"not json").is_err());
    }

    #[test]
    fn all_versions_enumerates_everything() {
        let ms = MetaStore::new();
        for k in ["a", "b"] {
            ms.with_mut(k, |o| {
                o.versions.insert(1, VersionMeta::new(1, 8, t(0), "tier1"));
                o.versions.insert(2, VersionMeta::new(2, 8, t(1), "tier1"));
            });
        }
        let mut all = ms.all_versions();
        all.sort();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0], ("a".to_string(), 1));
    }
}
