//! The versioned object model (§2.2, extended per §3.2.1).
//!
//! Objects are immutable, uninterpreted byte sequences addressed by a
//! globally unique key. Overwriting a key creates a *new version*; every
//! version carries the metadata the policy language can select on (size,
//! access frequency, dirty bit, times, location, tags) plus the versioning
//! metadata conflict handling needs (version number, last-modified time).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use wiera_sim::SimInstant;

/// Monotonically increasing per-key version number.
pub type VersionId = u64;

/// Metadata for one version of one object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionMeta {
    pub version: VersionId,
    pub size: u64,
    pub created: SimInstant,
    pub modified: SimInstant,
    pub last_access: SimInstant,
    pub access_count: u64,
    /// Written but not yet propagated to a persistent tier (write-back).
    pub dirty: bool,
    /// Authoritative tier holding this version.
    pub location: String,
    /// Additional tiers holding copies (backups/caches within the instance).
    pub replicas: BTreeSet<String>,
    /// Whether the stored bytes are compressed/encrypted (policy responses).
    pub compressed: bool,
    pub encrypted: bool,
}

impl VersionMeta {
    pub fn new(version: VersionId, size: u64, now: SimInstant, location: &str) -> Self {
        VersionMeta {
            version,
            size,
            created: now,
            modified: now,
            last_access: now,
            access_count: 0,
            dirty: false,
            location: location.to_string(),
            replicas: BTreeSet::new(),
            compressed: false,
            encrypted: false,
        }
    }

    /// Every tier known to hold this version, authoritative first.
    pub fn holders(&self) -> Vec<&str> {
        let mut v = vec![self.location.as_str()];
        v.extend(
            self.replicas
                .iter()
                .map(|s| s.as_str())
                .filter(|s| *s != self.location),
        );
        v
    }

    pub fn touch(&mut self, now: SimInstant) {
        self.last_access = now;
        self.access_count += 1;
    }
}

/// All versions of one key, plus object-level attributes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ObjectMeta {
    pub versions: BTreeMap<VersionId, VersionMeta>,
    /// Application-defined object classes ("tmp", "log", …) — §2.2.
    pub tags: BTreeSet<String>,
}

impl ObjectMeta {
    pub fn latest_version(&self) -> Option<VersionId> {
        self.versions.keys().next_back().copied()
    }

    pub fn latest(&self) -> Option<&VersionMeta> {
        self.versions.values().next_back()
    }

    pub fn latest_mut(&mut self) -> Option<&mut VersionMeta> {
        self.versions.values_mut().next_back()
    }

    /// Next version number to assign.
    pub fn next_version(&self) -> VersionId {
        self.latest_version().map(|v| v + 1).unwrap_or(1)
    }

    /// Last-write-wins acceptance test for a replicated update (§4.2):
    /// accept when the incoming version is higher, or equal but more
    /// recently modified.
    pub fn accepts_update(&self, version: VersionId, modified: SimInstant) -> bool {
        match self.latest() {
            None => true,
            Some(cur) => {
                version > cur.version || (version == cur.version && modified > cur.modified)
            }
        }
    }

    /// Prune to the newest `keep` versions; returns the pruned version ids.
    pub fn prune_old_versions(&mut self, keep: usize) -> Vec<VersionId> {
        if self.versions.len() <= keep {
            return Vec::new();
        }
        let cut = self.versions.len() - keep;
        let doomed: Vec<VersionId> = self.versions.keys().take(cut).copied().collect();
        for v in &doomed {
            self.versions.remove(v);
        }
        doomed
    }
}

/// Composite storage key used inside tier backends: one slot per version.
pub fn storage_key(key: &str, version: VersionId) -> String {
    format!("{key}@v{version}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_sim::SimDuration;

    fn t(s: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_secs(s)
    }

    #[test]
    fn version_numbers_increase() {
        let mut o = ObjectMeta::default();
        assert_eq!(o.next_version(), 1);
        o.versions.insert(1, VersionMeta::new(1, 10, t(0), "tier1"));
        assert_eq!(o.next_version(), 2);
        o.versions.insert(5, VersionMeta::new(5, 10, t(1), "tier1"));
        assert_eq!(o.latest_version(), Some(5));
        assert_eq!(o.next_version(), 6);
    }

    #[test]
    fn last_write_wins_rules() {
        let mut o = ObjectMeta::default();
        assert!(o.accepts_update(1, t(0)), "empty object accepts anything");
        o.versions.insert(3, VersionMeta::new(3, 10, t(5), "tier1"));
        assert!(
            o.accepts_update(4, t(1)),
            "higher version wins regardless of time"
        );
        assert!(!o.accepts_update(2, t(9)), "lower version always loses");
        assert!(o.accepts_update(3, t(6)), "same version, newer mtime wins");
        assert!(
            !o.accepts_update(3, t(5)),
            "same version, same mtime loses (tie keeps local)"
        );
        assert!(
            !o.accepts_update(3, t(4)),
            "same version, older mtime loses"
        );
    }

    #[test]
    fn holders_dedupes_location() {
        let mut m = VersionMeta::new(1, 10, t(0), "tier1");
        m.replicas.insert("tier1".into());
        m.replicas.insert("tier2".into());
        assert_eq!(m.holders(), vec!["tier1", "tier2"]);
    }

    #[test]
    fn touch_updates_access_metadata() {
        let mut m = VersionMeta::new(1, 10, t(0), "tier1");
        m.touch(t(7));
        m.touch(t(9));
        assert_eq!(m.access_count, 2);
        assert_eq!(m.last_access, t(9));
        assert_eq!(m.created, t(0), "created never moves");
    }

    #[test]
    fn prune_keeps_newest() {
        let mut o = ObjectMeta::default();
        for v in 1..=5 {
            o.versions.insert(v, VersionMeta::new(v, 10, t(v), "tier1"));
        }
        let doomed = o.prune_old_versions(2);
        assert_eq!(doomed, vec![1, 2, 3]);
        assert_eq!(o.versions.keys().copied().collect::<Vec<_>>(), vec![4, 5]);
        assert!(o.prune_old_versions(2).is_empty(), "already at limit");
    }

    #[test]
    fn storage_keys_are_distinct_per_version() {
        assert_eq!(storage_key("k", 1), "k@v1");
        assert_ne!(storage_key("k", 1), storage_key("k", 2));
        assert_ne!(storage_key("a@v1", 1), storage_key("a", 11)); // no accidental collision here
    }
}
