//! Thread-scoped operation deadline.
//!
//! Wiera propagates a per-operation budget from the client down to the
//! replica; the replica in turn runs Table 2 instance ops on its worker
//! thread. Threading the deadline through every instance-API signature
//! would churn the whole Table 2 surface (and the policy-rule recursion
//! behind it), so the scope is carried on the worker thread instead: the
//! replica installs it with [`with_deadline`] around the instance call,
//! and the instance checks [`expired`] at its op entry points.
//!
//! The scope nests and restores on unwind, so a mounted-instance tier hop
//! (one instance calling into another on the same thread) inherits the
//! caller's budget — which is exactly the semantics deadline propagation
//! wants.

use std::cell::Cell;
use wiera_sim::SimInstant;

thread_local! {
    static DEADLINE: Cell<Option<SimInstant>> = const { Cell::new(None) };
}

/// Run `f` with `deadline` installed as the current thread's op budget.
/// `None` clears any inherited budget for the duration. The previous scope
/// is restored afterwards, including on panic.
pub fn with_deadline<T>(deadline: Option<SimInstant>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<SimInstant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEADLINE.set(self.0);
        }
    }
    let prev = DEADLINE.replace(deadline);
    let _restore = Restore(prev);
    f()
}

/// The deadline currently in scope on this thread, if any.
pub fn current() -> Option<SimInstant> {
    DEADLINE.get()
}

/// Whether the in-scope deadline (if any) has passed at modeled time `now`.
pub fn expired(now: SimInstant) -> bool {
    current().is_some_and(|d| now >= d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_sim::SimDuration;

    #[test]
    fn scope_nests_and_restores() {
        let t1 = SimInstant::EPOCH + SimDuration::from_secs(1);
        let t2 = SimInstant::EPOCH + SimDuration::from_secs(2);
        assert_eq!(current(), None);
        with_deadline(Some(t2), || {
            assert_eq!(current(), Some(t2));
            with_deadline(Some(t1), || assert_eq!(current(), Some(t1)));
            assert_eq!(current(), Some(t2), "inner scope restored");
            with_deadline(None, || assert_eq!(current(), None));
            assert_eq!(current(), Some(t2));
        });
        assert_eq!(current(), None);
    }

    #[test]
    fn expired_is_inclusive_of_the_deadline_instant() {
        let t = SimInstant::EPOCH + SimDuration::from_millis(100);
        with_deadline(Some(t), || {
            assert!(!expired(SimInstant::EPOCH));
            assert!(expired(t), "at the deadline the budget is spent");
            assert!(expired(t + SimDuration::from_millis(1)));
        });
        assert!(!expired(t), "no scope, no deadline");
    }

    #[test]
    fn scope_restores_on_panic() {
        let t = SimInstant::EPOCH + SimDuration::from_secs(5);
        let r = std::panic::catch_unwind(|| {
            with_deadline(Some(t), || panic!("boom"));
        });
        assert!(r.is_err());
        assert_eq!(current(), None, "unwind must not leak the scope");
    }
}
