#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Tiera — the single-DC multi-tiered storage instance (Middleware'14),
//! the substrate Wiera builds on.
//!
//! A [`TieraInstance`] encapsulates a stack of cloud storage tiers inside
//! one data center behind a simple PUT/GET API, and runs an event→response
//! policy engine over them:
//!
//! * [`object`] — the versioned object model of §2.2/§3.2.1: immutable
//!   objects, multiple versions with full metadata (size, access count,
//!   dirty bit, created/modified/accessed times, location, tags).
//! * [`metastore`] — the BerkeleyDB stand-in persisting that metadata
//!   (snapshot/restore to a byte image).
//! * [`transform`] — functional `compress`/`encrypt` responses (RLE and a
//!   keyed XOR stream cipher), round-trippable.
//! * [`instance`] — the instance itself: Table 2's versioning API, tier
//!   management, and execution of compiled policy rules (write-through,
//!   write-back, capacity-triggered backup, cold-data migration, grow).
//! * [`engine`] — the background event engine: timer rules, tier-filled
//!   checks and cold-data scans running on dedicated threads against the
//!   shared clock.
//!
//! Two robustness hooks thread through the instance: a thread-scoped op
//! budget ([`deadline`]) that fails operations fast once spent, and a
//! per-tier circuit breaker that deprioritizes browned-out tiers on reads.
//!
//! Instances are deliberately network-free: geo-replication, forwarding and
//! consistency live one layer up in the `wiera` crate, which wraps instances
//! in mesh endpoints — mirroring the paper's split where "Tiera is
//! responsible for managing data on multiple storage tiers within a single
//! DC" while "Wiera manages data placement and movement across Tiera
//! instances".

pub mod deadline;
pub mod engine;
pub mod instance;
pub mod metastore;
pub mod object;
pub mod transform;

pub use instance::{BatchOp, InstanceConfig, OpOutcome, TieraError, TieraInstance};
pub use metastore::MetaStore;
pub use object::{ObjectMeta, VersionId, VersionMeta};
