//! Reduction soundness: the persistent-set reduction must return exactly
//! the same verdict (set of violated invariant codes, and cleanliness)
//! as naive full exploration, across every spec-flag combination on
//! tiny configurations. This is the empirical check backing the
//! commutativity argument in `explore.rs`.

use std::collections::BTreeSet;
use wiera_model::{explore, Bounds, Protocol, Spec};

fn verdict(spec: &Spec, bounds: &Bounds, reduce: bool) -> BTreeSet<&'static str> {
    let r = explore(spec, bounds, reduce);
    assert!(!r.truncated, "equivalence configs must explore fully");
    r.violations.iter().map(|v| v.code.as_str()).collect()
}

#[test]
fn reduced_and_naive_verdicts_match_on_tiny_configs() {
    let configs = [
        Bounds {
            nodes: 2,
            keys: 1,
            puts: 1,
            crashes: 0,
            elections: 0,
            max_states: 2_000_000,
        },
        Bounds {
            nodes: 2,
            keys: 1,
            puts: 1,
            crashes: 1,
            elections: 1,
            max_states: 2_000_000,
        },
        Bounds {
            nodes: 3,
            keys: 1,
            puts: 1,
            crashes: 1,
            elections: 0,
            max_states: 2_000_000,
        },
        Bounds {
            nodes: 2,
            keys: 2,
            puts: 2,
            crashes: 1,
            elections: 1,
            max_states: 2_000_000,
        },
    ];
    for protocol in Protocol::ALL {
        for cp_fenced in [false, true] {
            for repl_fenced in [false, true] {
                for ack_before_commit in [false, true] {
                    let spec = Spec {
                        protocol,
                        cp_fenced,
                        repl_fenced,
                        ack_before_commit,
                    };
                    for bounds in &configs {
                        let naive = verdict(&spec, bounds, false);
                        let reduced = verdict(&spec, bounds, true);
                        assert_eq!(
                            naive, reduced,
                            "verdict divergence for {spec:?} at {bounds:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn reduction_never_explores_more_states() {
    let bounds = Bounds {
        nodes: 3,
        keys: 1,
        puts: 2,
        crashes: 0,
        elections: 0,
        max_states: 2_000_000,
    };
    for protocol in Protocol::ALL {
        let spec = Spec::correct(protocol);
        let naive = explore(&spec, &bounds, false);
        let reduced = explore(&spec, &bounds, true);
        assert!(
            reduced.states <= naive.states,
            "{}: reduced {} > naive {}",
            protocol.as_str(),
            reduced.states,
            naive.states
        );
    }
}
