//! Planted-defect harness: each fixture under `tests/fixtures/planted/`
//! carries one protocol bug; extraction must derive the defective spec
//! flags, the explorer must produce the expected invariant violation,
//! and the CLI must exit 2 over the fixture.

use std::path::PathBuf;
use std::process::Command;
use wiera_audit::callgraph::{Config, Model};
use wiera_audit::items::SourceFile;
use wiera_audit::protocol::{extract, ProtocolModel};
use wiera_model::{explore, Bounds, Protocol, Spec};
use wiera_policy::diag::Code;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/planted")
        .join(name)
}

fn extract_fixture(name: &str) -> ProtocolModel {
    let src = std::fs::read_to_string(fixture(name)).expect("fixture readable");
    let file = SourceFile::new(name.to_string(), "planted".to_string(), src);
    let m = Model::build(vec![file], Config::default());
    extract(&m)
}

fn small_bounds() -> Bounds {
    Bounds {
        nodes: 2,
        keys: 1,
        puts: 1,
        crashes: 1,
        elections: 1,
        max_states: 500_000,
    }
}

#[test]
fn missing_epoch_check_extracts_unfenced_flags() {
    let pm = extract_fixture("missing_epoch_check.rs");
    let spec = Spec::from_protocol_model(&pm, Protocol::PbSync);
    assert!(!spec.cp_fenced, "blind ChangePrimary must extract unfenced");
    assert!(!spec.repl_fenced, "blind Replicate must extract unfenced");
}

#[test]
fn missing_epoch_check_explores_to_epoch_rollback() {
    let pm = extract_fixture("missing_epoch_check.rs");
    let spec = Spec::from_protocol_model(&pm, Protocol::PbSync);
    let r = explore(&spec, &small_bounds(), true);
    assert!(!r.truncated);
    let v = r
        .violations
        .iter()
        .find(|v| v.code == Code::Wm002)
        .expect("WM002 epoch rollback expected");
    assert!(v.message.contains("rollback"), "{}", v.message);
    assert!(!v.trace.is_empty());
}

#[test]
fn ack_before_replicate_extracts_ordering_defect() {
    let pm = extract_fixture("ack_before_replicate.rs");
    let spec = Spec::from_protocol_model(&pm, Protocol::PbSync);
    assert!(spec.cp_fenced, "fixture fences ChangePrimary correctly");
    assert!(spec.repl_fenced, "fixture fences Replicate correctly");
    assert!(
        spec.ack_before_commit,
        "reply-before-mutation ordering must extract"
    );
}

#[test]
fn ack_before_replicate_explores_to_acked_write_loss() {
    let pm = extract_fixture("ack_before_replicate.rs");
    let spec = Spec::from_protocol_model(&pm, Protocol::PbSync);
    let r = explore(&spec, &small_bounds(), true);
    assert!(!r.truncated);
    let v = r
        .violations
        .iter()
        .find(|v| v.code == Code::Wm003)
        .expect("WM003 acked-write loss expected");
    assert!(v.message.contains("acked write lost"), "{}", v.message);
}

fn run_cli(fixture_name: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_wiera-model"))
        .args([
            "--protocol",
            "pb-sync",
            "--nodes",
            "2",
            "--keys",
            "1",
            "--puts",
            "1",
            "--crashes",
            "1",
            "--elections",
            "1",
        ])
        .arg(fixture(fixture_name))
        .output()
        .expect("spawn wiera-model")
}

#[test]
fn cli_exits_two_on_missing_epoch_check() {
    let out = run_cli("missing_epoch_check.rs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("WM002"), "{stdout}");
    assert!(stdout.contains("minimal counterexample"), "{stdout}");
}

#[test]
fn cli_exits_two_on_ack_before_replicate() {
    let out = run_cli("ack_before_replicate.rs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("WM003"), "{stdout}");
}

#[test]
fn cli_report_json_is_well_formed_enough() {
    let out = Command::new(env!("CARGO_BIN_EXE_wiera-model"))
        .args([
            "--protocol",
            "pb-sync",
            "--nodes",
            "2",
            "--keys",
            "1",
            "--json",
        ])
        .arg(fixture("ack_before_replicate.rs"))
        .output()
        .expect("spawn wiera-model");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"violations\":["), "{stdout}");
    assert!(stdout.contains("\"ack_before_commit\":true"), "{stdout}");
}
