//! Robustness: extraction followed by exploration must never panic —
//! neither on arbitrary spec/bound combinations, nor when the protocol
//! model is extracted from hostile Rust-fragment soup. Bounded state
//! budgets make truncation acceptable; crashing is not.

use proptest::prelude::*;
use wiera_audit::callgraph::{Config, Model};
use wiera_audit::items::SourceFile;
use wiera_audit::protocol::extract;
use wiera_model::{explore, Bounds, Protocol, Spec};

fn protocol_from(idx: usize) -> Protocol {
    Protocol::ALL[idx % Protocol::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every spec-flag/bound combination explores without panicking.
    #[test]
    fn prop_explore_never_panics(
        pidx in 0usize..3,
        cp in any::<bool>(),
        repl in any::<bool>(),
        ack in any::<bool>(),
        nodes in 1usize..4,
        keys in 1usize..3,
        puts in 0usize..3,
        crashes in 0usize..3,
        elections in 0usize..3,
        reduce in any::<bool>(),
    ) {
        let spec = Spec {
            protocol: protocol_from(pidx),
            cp_fenced: cp,
            repl_fenced: repl,
            ack_before_commit: ack,
        };
        let bounds = Bounds {
            nodes, keys, puts, crashes, elections,
            max_states: 20_000,
        };
        let r = explore(&spec, &bounds, reduce);
        // Traces must replay without panicking either.
        for v in &r.violations {
            let mut w = wiera_model::world::World::initial(&spec, &bounds);
            for a in &v.trace {
                w = w.apply(&spec, a).0;
            }
        }
    }

    /// Extraction over Rust-fragment soup feeds exploration without a
    /// panic anywhere in the pipeline.
    #[test]
    fn prop_extraction_to_exploration_never_panics(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "fn", "impl", "enum", "match", "=>", "{", "}", "(", ")",
                "self", ".", "::", "DataMsg", "Replicate", "ChangePrimary",
                "Put", "PutAck", "epoch", "<", ">=", "=", "+", "if",
                "reply", "inst", "put", "apply_replicated", "record_history",
                "handle_op", "dispatch", "let", "s", ";", ",", "|", "_",
                "key", "ver", "return", "u64", "String", "Ok",
            ]),
            0..120,
        ),
        pidx in 0usize..3,
    ) {
        let src = parts.join(" ");
        let file = SourceFile::new("soup.rs".to_string(), "soup".to_string(), src);
        let m = Model::build(vec![file], Config::default());
        let pm = extract(&m);
        let _ = pm.to_json(&m);
        let _ = pm.to_dot(&m);
        let spec = Spec::from_protocol_model(&pm, protocol_from(pidx));
        let bounds = Bounds {
            nodes: 2, keys: 1, puts: 1, crashes: 1, elections: 1,
            max_states: 5_000,
        };
        let _ = explore(&spec, &bounds, true);
    }
}
