//! Planted defect: the write path acknowledges the client before the
//! mutation and replication commit (drop-ack-then-elect). Fencing is
//! correct everywhere — extraction must still derive
//! `ack_before_commit=true` from the reply/mutation ordering, and the
//! explorer must lose an acknowledged write across a crash (WM003)
//! under synchronous replication.

pub enum DataMsg {
    Put { key: String, val: u64, epoch: u64 },
    PutAck { version: u64 },
    Replicate { key: String, ver: u64, epoch: u64 },
    ReplicateAck { ver: u64 },
    ChangePrimary { new_primary: u64, epoch: u64 },
    Ok,
}

impl Node {
    pub fn handle_app_op(&self, d: DataMsg) {
        match d {
            DataMsg::Put { key, val, epoch } => {
                if epoch < self.epoch() {
                    reply2(stale_epoch_fail(epoch, self.epoch()));
                    return;
                }
                // BUG: client sees success before the write commits.
                reply2(DataMsg::PutAck { version: 1 });
                self.inst.put(&key, val);
                self.replicate_all(&key);
            }
            DataMsg::Replicate { key, ver, epoch } => {
                if epoch < self.epoch() {
                    reply2(stale_epoch_fail(epoch, self.epoch()));
                    return;
                }
                self.inst.apply_replicated(&key, ver, epoch);
                reply2(DataMsg::ReplicateAck { ver });
            }
            DataMsg::ChangePrimary { new_primary, epoch } => {
                let mut s = self.state.write();
                if epoch >= s.epoch {
                    s.primary = Some(new_primary);
                    s.epoch = epoch;
                }
                reply2(DataMsg::Ok);
            }
            _ => {}
        }
    }

    fn epoch(&self) -> u64 {
        0
    }

    fn replicate_all(&self, _key: &str) {}
}
