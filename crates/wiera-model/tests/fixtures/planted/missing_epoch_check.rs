//! Planted defect: replication and failover control handlers that apply
//! blindly, never comparing the carried epoch against their own. A
//! deposed primary's traffic — or a delayed `ChangePrimary` from a dead
//! election — is applied as if current. Extraction must derive
//! `cp_fenced=false` / `repl_fenced=false`, and the explorer must find
//! an epoch rollback (WM002) reachable within one election.

pub enum DataMsg {
    Put { key: String, val: u64 },
    PutAck { version: u64 },
    Replicate { key: String, ver: u64, epoch: u64 },
    ReplicateAck { ver: u64 },
    ChangePrimary { new_primary: u64, epoch: u64 },
    Ok,
}

impl Node {
    pub fn handle_replication(&self, d: DataMsg) {
        match d {
            DataMsg::Put { key, val } => {
                self.inst.put(&key, val);
                self.replicate_all(&key);
                reply2(DataMsg::PutAck { version: 1 });
            }
            DataMsg::Replicate { key, ver, epoch } => {
                // BUG: no `epoch < self.epoch()` check before applying.
                self.inst.apply_replicated(&key, ver, epoch);
                reply2(DataMsg::ReplicateAck { ver });
            }
            DataMsg::ChangePrimary { new_primary, epoch } => {
                // BUG: blind adoption — a stale epoch rolls us back.
                let mut s = self.state.write();
                s.primary = Some(new_primary);
                s.epoch = epoch;
                reply2(DataMsg::Ok);
            }
            _ => {}
        }
    }

    fn replicate_all(&self, _key: &str) {}
}
