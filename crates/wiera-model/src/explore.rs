//! Bounded explicit-state exploration with partial-order reduction.
//!
//! Breadth-first search over the small-world semantics: every enabled
//! action from every reachable state, full-state deduplication via the
//! canonical byte encoding, and parent pointers so the first (and
//! therefore minimal) counterexample per invariant reconstructs into a
//! trace.
//!
//! ## Invariants
//!
//! * **WM001** at-most-one-primary-per-epoch: no two distinct nodes ever
//!   serve client puts under the same epoch.
//! * **WM002** per-node epoch monotonicity: an epoch never moves
//!   backwards (durable across restart; control traffic may only raise
//!   it).
//! * **WM003** no acked-write loss: once a write is acknowledged to the
//!   client, some live node or in-flight replicate carries it (volatile
//!   stores die with crashes). Scoped to synchronous protocols —
//!   eventual mode acknowledges before replication by design.
//! * **WM004** post-quiescence convergence: with no failures in the
//!   trace, a drained network means every live store is identical.
//!
//! ## Reduction
//!
//! When only deliveries remain enabled (put/crash/election budgets
//! spent, everyone alive), deliveries to distinct destinations commute:
//! each touches its destination's node state, its destination's pending
//! entries, and monotone global sets. The explorer then expands only the
//! deliveries aimed at the lowest-numbered destination with traffic — a
//! persistent set — instead of the full cross product. Orders among one
//! destination's messages are still fully explored. `--naive` disables
//! this, and the equivalence test in `tests/` checks both modes return
//! identical verdicts on small configs.

use crate::spec::{Bounds, Spec};
use crate::world::{Action, StepEvent, World};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use wiera_policy::diag::Code;

/// A violated invariant with its minimal counterexample.
#[derive(Debug, Clone)]
pub struct Violation {
    pub code: Code,
    pub message: String,
    /// Action sequence from the initial state to the violation.
    pub trace: Vec<Action>,
}

/// Outcome of one exploration run.
#[derive(Debug)]
pub struct ExploreResult {
    /// Distinct states visited.
    pub states: usize,
    /// First (shortest) violation found per invariant code.
    pub violations: Vec<Violation>,
    /// Exploration hit `max_states` and stopped early.
    pub truncated: bool,
}

fn event_code(ev: &StepEvent) -> Code {
    match ev {
        StepEvent::SplitBrain { .. } => Code::Wm001,
        StepEvent::EpochRollback { .. } => Code::Wm002,
        StepEvent::AckedWriteLost { .. } => Code::Wm003,
    }
}

fn event_message(ev: &StepEvent) -> String {
    match ev {
        StepEvent::SplitBrain { epoch, a, b } => format!(
            "split-brain: N{a} and N{b} both served client puts as primary in epoch {epoch}"
        ),
        StepEvent::EpochRollback { node, from, to } => {
            format!("epoch rollback: N{node} moved from epoch {from} back to epoch {to}")
        }
        StepEvent::AckedWriteLost { key, ver } => format!(
            "acked write lost: k{key} v{ver} was acknowledged but survives on no \
             live node and in no in-flight message"
        ),
    }
}

/// Is this event in scope for the protocol under exploration?
fn event_in_scope(spec: &Spec, ev: &StepEvent) -> bool {
    match ev {
        // Primary claims only exist in primary-backup mode.
        StepEvent::SplitBrain { .. } => spec.protocol.has_primary(),
        StepEvent::EpochRollback { .. } => true,
        // Eventual mode acknowledges before replication by design; an
        // async acked write lost to a crash is accepted semantics there.
        StepEvent::AckedWriteLost { .. } => spec.protocol.sync_replication(),
    }
}

/// Keep only a persistent set of actions when it is sound to do so: if
/// every enabled action is a delivery (budgets spent, no dead nodes),
/// deliveries to distinct destinations commute, so expanding only the
/// lowest-numbered destination's deliveries preserves every verdict.
fn persistent_set(actions: Vec<Action>) -> Vec<Action> {
    let all_deliver = actions.iter().all(|a| matches!(a, Action::Deliver(_)));
    if !all_deliver || actions.is_empty() {
        return actions;
    }
    let min_dst = actions
        .iter()
        .filter_map(|a| match a {
            Action::Deliver(m) => Some(m.dst),
            _ => None,
        })
        .min()
        .unwrap_or(0);
    actions
        .into_iter()
        .filter(|a| matches!(a, Action::Deliver(m) if m.dst == min_dst))
        .collect()
}

/// WM004 at a quiescent state: failure-free traces must have converged.
fn quiescence_violation(spec: &Spec, w: &World) -> Option<String> {
    if !w.quiescent() || w.crashes_done != 0 || w.elections_done != 0 {
        return None;
    }
    let first = w.nodes.iter().find(|s| s.alive)?;
    for (n, s) in w.nodes.iter().enumerate().skip(1) {
        if s.alive && s.store != first.store {
            return Some(format!(
                "divergence at quiescence with no failures ({} protocol): \
                 N0 store {:?} vs N{n} store {:?}",
                spec.protocol.as_str(),
                first.store,
                s.store
            ));
        }
    }
    None
}

/// Explore every schedule of `spec` within `bounds`. `reduce` enables
/// the persistent-set reduction; disable it to cross-check verdicts.
pub fn explore(spec: &Spec, bounds: &Bounds, reduce: bool) -> ExploreResult {
    let init = World::initial(spec, bounds);
    let init_key = init.canon();

    let mut visited: HashSet<Vec<u8>> = HashSet::new();
    let mut parent: HashMap<Vec<u8>, (Vec<u8>, Action)> = HashMap::new();
    let mut queue: VecDeque<World> = VecDeque::new();
    let mut found: BTreeMap<&'static str, Violation> = BTreeMap::new();
    let mut truncated = false;

    visited.insert(init_key.clone());
    queue.push_back(init);

    while let Some(w) = queue.pop_front() {
        let w_key = w.canon();
        let mut actions = w.enabled(spec, bounds);
        if reduce {
            actions = persistent_set(actions);
        }
        for action in actions {
            let (succ, events) = w.apply(spec, &action);
            let succ_key = succ.canon();
            let mut violated = false;
            for ev in &events {
                if !event_in_scope(spec, ev) {
                    continue;
                }
                violated = true;
                let code = event_code(ev);
                found.entry(code.as_str()).or_insert_with(|| Violation {
                    code,
                    message: event_message(ev),
                    trace: rebuild_trace(&parent, &w_key, &action),
                });
            }
            if let Some(msg) = quiescence_violation(spec, &succ) {
                violated = true;
                found
                    .entry(Code::Wm004.as_str())
                    .or_insert_with(|| Violation {
                        code: Code::Wm004,
                        message: msg,
                        trace: rebuild_trace(&parent, &w_key, &action),
                    });
            }
            // A violating branch is not expanded further: BFS order makes
            // the recorded trace minimal for its invariant.
            if violated || visited.contains(&succ_key) {
                continue;
            }
            if visited.len() >= bounds.max_states {
                truncated = true;
                continue;
            }
            visited.insert(succ_key.clone());
            parent.insert(succ_key, (w_key.clone(), action));
            queue.push_back(succ);
        }
        if truncated {
            break;
        }
    }

    ExploreResult {
        states: visited.len(),
        violations: found.into_values().collect(),
        truncated,
    }
}

fn rebuild_trace(
    parent: &HashMap<Vec<u8>, (Vec<u8>, Action)>,
    from: &[u8],
    last: &Action,
) -> Vec<Action> {
    let mut trace = vec![last.clone()];
    let mut cur = from.to_vec();
    while let Some((p, a)) = parent.get(&cur) {
        trace.push(a.clone());
        cur = p.clone();
    }
    trace.reverse();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Protocol, Spec};

    fn bounds(nodes: usize, puts: usize, crashes: usize, elections: usize) -> Bounds {
        Bounds {
            nodes,
            keys: 1,
            puts,
            crashes,
            elections,
            max_states: 500_000,
        }
    }

    #[test]
    fn correct_pb_sync_has_no_violations() {
        let spec = Spec::correct(Protocol::PbSync);
        let r = explore(&spec, &bounds(2, 1, 1, 1), true);
        assert!(!r.truncated);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn correct_eventual_has_no_violations() {
        let spec = Spec::correct(Protocol::Eventual);
        let r = explore(&spec, &bounds(3, 2, 1, 0), true);
        assert!(!r.truncated);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn ack_before_commit_loses_acked_write() {
        let mut spec = Spec::correct(Protocol::PbSync);
        spec.ack_before_commit = true;
        let r = explore(&spec, &bounds(2, 1, 1, 0), true);
        let v = r
            .violations
            .iter()
            .find(|v| v.code == Code::Wm003)
            .expect("WM003 expected");
        assert!(!v.trace.is_empty());
    }

    #[test]
    fn unfenced_changeprimary_rolls_back() {
        let mut spec = Spec::correct(Protocol::PbSync);
        spec.cp_fenced = false;
        let r = explore(&spec, &bounds(2, 0, 0, 1), true);
        assert!(
            r.violations.iter().any(|v| v.code == Code::Wm002),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn eventual_tolerates_async_ack_loss() {
        // Async ack loss is in-design for eventual mode: out of scope.
        let spec = Spec::correct(Protocol::Eventual);
        let r = explore(&spec, &bounds(2, 1, 1, 0), true);
        assert!(
            !r.violations.iter().any(|v| v.code == Code::Wm003),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn trace_is_minimal_prefix_closed() {
        let mut spec = Spec::correct(Protocol::PbSync);
        spec.ack_before_commit = true;
        let r = explore(&spec, &bounds(2, 1, 1, 0), true);
        let v = r
            .violations
            .iter()
            .find(|v| v.code == Code::Wm003)
            .expect("wm003");
        // Replay the trace: every prefix must be violation-free until the
        // final action.
        let b = bounds(2, 1, 1, 0);
        let mut w = World::initial(&spec, &b);
        for (i, a) in v.trace.iter().enumerate() {
            let (next, ev) = w.apply(&spec, a);
            if i + 1 < v.trace.len() {
                assert!(
                    ev.iter().all(|e| !event_in_scope(&spec, e)),
                    "premature violation at step {i}: {ev:?}"
                );
            } else {
                assert!(ev
                    .iter()
                    .any(|e| matches!(e, StepEvent::AckedWriteLost { .. })));
            }
            w = next;
        }
    }
}
