//! Small-world operational semantics for the extracted protocol.
//!
//! A world is a handful of nodes (volatile per-key version stores,
//! durable epochs, a primary flag), an in-flight message multiset, and
//! bounded budgets for client puts, crashes/restarts, and elections.
//! Actions are atomic handler executions — exactly the granularity the
//! extraction layer models — so every interleaving of the explorer
//! corresponds to an order of handler invocations in the real system:
//!
//! * **Deliver(msg)** — run the destination's handler arm for the
//!   message (or drop it if the destination is down);
//! * **InjectPut(node, key)** — a client write arrives at `node`;
//! * **Crash(node)** — the node's process dies: its volatile store is
//!   wiped, its unsent/in-flight messages are lost (send-buffer loss),
//!   and its pending ack bookkeeping evaporates;
//! * **Restart(node)** — the node rejoins empty with its durable epoch;
//! * **Elect(node)** — coordinator-driven failover: a fresh epoch is
//!   allocated (the coordinator serializes epochs) and a `ChangePrimary`
//!   broadcast goes out. Enabled only when no live primary exists,
//!   modeling lease-expiry detection.
//!
//! Epochs are durable (they survive restart); stores are volatile (they
//! do not) — the memory-tier configuration from the paper, and the one
//! where failover bugs actually lose data.

use crate::spec::{Bounds, Spec};

/// An in-flight protocol message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum MsgKind {
    /// Primary → replica write propagation.
    Replicate { key: u8, ver: u8, epoch: u8 },
    /// Replica → primary apply acknowledgment.
    ReplicateAck { key: u8, ver: u8 },
    /// Coordinator/primary → everyone failover announcement.
    ChangePrimary { epoch: u8, leader: u8 },
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Msg {
    pub src: u8,
    pub dst: u8,
    pub kind: MsgKind,
}

/// One replica's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSt {
    pub alive: bool,
    /// Durable failover epoch.
    pub epoch: u8,
    pub is_primary: bool,
    /// Per-key bitmask of applied write versions (volatile).
    pub store: Vec<u8>,
}

/// A synchronous put waiting for replica acks at its serving node.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Pending {
    pub key: u8,
    pub ver: u8,
    /// Node that served the put and owns the reply slot.
    pub server: u8,
    /// Bitmask of peers whose ack is still outstanding.
    pub waiting: u8,
}

/// Full system state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct World {
    pub nodes: Vec<NodeSt>,
    /// In-flight messages, kept sorted (canonical multiset).
    pub net: Vec<Msg>,
    pub puts_done: u8,
    pub crashes_done: u8,
    pub elections_done: u8,
    /// Highest epoch the (serialized) coordinator has allocated.
    pub epoch_alloc: u8,
    /// `(key, ver)` writes acknowledged to the client, sorted.
    pub acked: Vec<(u8, u8)>,
    /// Outstanding synchronous puts, sorted.
    pub pending: Vec<Pending>,
    /// `(epoch, node)` pairs that served a client put as primary, sorted
    /// (evidence set for the at-most-one-primary-per-epoch invariant).
    pub claims: Vec<(u8, u8)>,
}

/// One schedulable step.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Action {
    Deliver(Msg),
    InjectPut { node: u8, key: u8 },
    Crash { node: u8 },
    Restart { node: u8 },
    Elect { node: u8 },
}

/// Invariant violations detectable while applying a single action.
/// (Quiescence checks live in the explorer.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepEvent {
    /// Two distinct nodes served puts as primary in the same epoch.
    SplitBrain { epoch: u8, a: u8, b: u8 },
    /// A node's epoch moved backwards.
    EpochRollback { node: u8, from: u8, to: u8 },
    /// An acked write no longer exists on any live node or in flight.
    AckedWriteLost { key: u8, ver: u8 },
}

impl World {
    /// Initial world for a spec: all nodes up at epoch 0 with empty
    /// stores. Primary-backup mode starts with the coordinator's
    /// bootstrap `ChangePrimary{1, N0}` broadcast still in flight, so a
    /// single election already interleaves with stale control traffic.
    /// Non-primary modes start settled at epoch 1.
    pub fn initial(spec: &Spec, bounds: &Bounds) -> World {
        let has_primary = spec.protocol.has_primary();
        let settled_epoch = if has_primary { 0 } else { 1 };
        let nodes = (0..bounds.nodes)
            .map(|_| NodeSt {
                alive: true,
                epoch: settled_epoch,
                is_primary: false,
                store: vec![0; bounds.keys],
            })
            .collect();
        let mut net = Vec::new();
        if has_primary {
            for n in 0..bounds.nodes as u8 {
                net.push(Msg {
                    src: 0,
                    dst: n,
                    kind: MsgKind::ChangePrimary {
                        epoch: 1,
                        leader: 0,
                    },
                });
            }
            net.sort();
        }
        World {
            nodes,
            net,
            puts_done: 0,
            crashes_done: 0,
            elections_done: 0,
            epoch_alloc: 1,
            acked: Vec::new(),
            pending: Vec::new(),
            claims: Vec::new(),
        }
    }

    /// Enumerate every action enabled in this state.
    pub fn enabled(&self, spec: &Spec, bounds: &Bounds) -> Vec<Action> {
        let mut out = Vec::new();
        // Deliveries: one per distinct in-flight message.
        let mut last: Option<&Msg> = None;
        for m in &self.net {
            if last != Some(m) {
                out.push(Action::Deliver(m.clone()));
            }
            last = Some(m);
        }
        // Client puts.
        if (self.puts_done as usize) < bounds.puts {
            for (n, st) in self.nodes.iter().enumerate() {
                if !st.alive {
                    continue;
                }
                if spec.protocol.has_primary() && !st.is_primary {
                    continue;
                }
                for k in 0..bounds.keys as u8 {
                    out.push(Action::InjectPut {
                        node: n as u8,
                        key: k,
                    });
                }
            }
        }
        // Crashes and restarts.
        if (self.crashes_done as usize) < bounds.crashes {
            for (n, st) in self.nodes.iter().enumerate() {
                if st.alive {
                    out.push(Action::Crash { node: n as u8 });
                }
            }
        }
        for (n, st) in self.nodes.iter().enumerate() {
            if !st.alive {
                out.push(Action::Restart { node: n as u8 });
            }
        }
        // Elections: primary-backup only, lease-expiry gated.
        if spec.protocol.has_primary()
            && (self.elections_done as usize) < bounds.elections
            && !self.nodes.iter().any(|s| s.alive && s.is_primary)
        {
            for (n, st) in self.nodes.iter().enumerate() {
                if st.alive {
                    out.push(Action::Elect { node: n as u8 });
                }
            }
        }
        out
    }

    /// Apply one action, returning the successor world and any invariant
    /// violations the step itself surfaced.
    pub fn apply(&self, spec: &Spec, action: &Action) -> (World, Vec<StepEvent>) {
        let mut w = self.clone();
        let mut ev = Vec::new();
        match action {
            Action::Deliver(msg) => {
                // Remove exactly one copy from the multiset.
                if let Some(i) = w.net.iter().position(|m| m == msg) {
                    w.net.remove(i);
                }
                if w.nodes[msg.dst as usize].alive {
                    w.deliver(spec, msg, &mut ev);
                }
                // Delivery to a down node drops the message.
            }
            Action::InjectPut { node, key } => {
                w.inject_put(spec, *node, *key, &mut ev);
            }
            Action::Crash { node } => {
                let n = *node as usize;
                w.nodes[n].alive = false;
                w.nodes[n].is_primary = false;
                // Volatile store wiped; durable epoch survives.
                for s in &mut w.nodes[n].store {
                    *s = 0;
                }
                // Send-buffer loss: the crashed node's in-flight messages
                // vanish with it.
                w.net.retain(|m| m.src != *node);
                // Its reply-slot bookkeeping dies with the process.
                w.pending.retain(|p| p.server != *node);
                w.crashes_done += 1;
            }
            Action::Restart { node } => {
                let n = *node as usize;
                w.nodes[n].alive = true;
                w.nodes[n].is_primary = false;
            }
            Action::Elect { node } => {
                let n = *node as usize;
                w.epoch_alloc += 1;
                let e = w.epoch_alloc;
                // epoch_alloc is the coordinator's monotone allocator, so the
                // freshly incremented value exceeds every epoch previously
                // handed to any node.
                // ws-audit: allow(WS113): monotone by construction via epoch_alloc
                w.nodes[n].epoch = e;
                w.nodes[n].is_primary = true;
                for peer in 0..w.nodes.len() as u8 {
                    if peer != *node {
                        w.net.push(Msg {
                            src: *node,
                            dst: peer,
                            kind: MsgKind::ChangePrimary {
                                epoch: e,
                                leader: *node,
                            },
                        });
                    }
                }
                w.elections_done += 1;
            }
        }
        w.net.sort();
        w.check_acked_alive(&mut ev);
        (w, ev)
    }

    fn inject_put(&mut self, spec: &Spec, node: u8, key: u8, ev: &mut Vec<StepEvent>) {
        self.puts_done += 1;
        let ver = self.puts_done;
        let n = node as usize;
        self.nodes[n].store[key as usize] |= 1 << ver;

        if spec.protocol.has_primary() {
            let claim = (self.nodes[n].epoch, node);
            if let Err(i) = self.claims.binary_search(&claim) {
                self.claims.insert(i, claim);
            }
            for &(e, other) in &self.claims {
                if e == claim.0 && other != node {
                    ev.push(StepEvent::SplitBrain {
                        epoch: e,
                        a: other.min(node),
                        b: other.max(node),
                    });
                }
            }
        }

        let epoch = self.nodes[n].epoch;
        for peer in 0..self.nodes.len() as u8 {
            if peer != node {
                self.net.push(Msg {
                    src: node,
                    dst: peer,
                    kind: MsgKind::Replicate { key, ver, epoch },
                });
            }
        }

        if spec.protocol.sync_replication() && !spec.ack_before_commit {
            // Ack once every currently-live peer has applied.
            let mut waiting = 0u8;
            for (p, st) in self.nodes.iter().enumerate() {
                if p != n && st.alive {
                    waiting |= 1 << p;
                }
            }
            if waiting == 0 {
                self.ack(key, ver);
            } else {
                let p = Pending {
                    key,
                    ver,
                    server: node,
                    waiting,
                };
                if let Err(i) = self.pending.binary_search(&p) {
                    self.pending.insert(i, p);
                }
            }
        } else {
            // Asynchronous ack — or the planted ack-before-commit defect.
            self.ack(key, ver);
        }
    }

    fn deliver(&mut self, spec: &Spec, msg: &Msg, ev: &mut Vec<StepEvent>) {
        let d = msg.dst as usize;
        match msg.kind {
            MsgKind::Replicate { key, ver, epoch } => {
                if spec.repl_fenced && epoch < self.nodes[d].epoch {
                    // Fenced: real handler replies StaleEpoch; the put
                    // stays un-acked. Modeled as a drop.
                    return;
                }
                self.nodes[d].store[key as usize] |= 1 << ver;
                if spec.protocol.sync_replication() && !spec.ack_before_commit {
                    self.net.push(Msg {
                        src: msg.dst,
                        dst: msg.src,
                        kind: MsgKind::ReplicateAck { key, ver },
                    });
                }
            }
            MsgKind::ReplicateAck { key, ver } => {
                let from = msg.src;
                let mut done = None;
                for (i, p) in self.pending.iter_mut().enumerate() {
                    if p.server == msg.dst && p.key == key && p.ver == ver {
                        p.waiting &= !(1 << from);
                        if p.waiting == 0 {
                            done = Some(i);
                        }
                        break;
                    }
                }
                if let Some(i) = done {
                    self.pending.remove(i);
                    self.ack(key, ver);
                }
            }
            MsgKind::ChangePrimary { epoch, leader } => {
                if spec.cp_fenced && epoch < self.nodes[d].epoch {
                    // Fenced: strictly-stale control traffic is refused
                    // (the real write guard is `epoch >= s.epoch`).
                    return;
                }
                if epoch < self.nodes[d].epoch {
                    ev.push(StepEvent::EpochRollback {
                        node: msg.dst,
                        from: self.nodes[d].epoch,
                        to: epoch,
                    });
                }
                self.nodes[d].epoch = epoch;
                self.nodes[d].is_primary = leader == msg.dst;
            }
        }
    }

    fn ack(&mut self, key: u8, ver: u8) {
        if let Err(i) = self.acked.binary_search(&(key, ver)) {
            self.acked.insert(i, (key, ver));
        }
    }

    /// Wm003: every acked write must survive on a live node or in an
    /// in-flight replicate — crashed stores are gone for good.
    fn check_acked_alive(&self, ev: &mut Vec<StepEvent>) {
        for &(key, ver) in &self.acked {
            let on_live = self
                .nodes
                .iter()
                .any(|s| s.alive && s.store[key as usize] & (1 << ver) != 0);
            let in_flight = self.net.iter().any(|m| {
                matches!(m.kind, MsgKind::Replicate { key: k, ver: v, .. } if k == key && v == ver)
            });
            if !on_live && !in_flight {
                ev.push(StepEvent::AckedWriteLost { key, ver });
            }
        }
    }

    /// No message is in flight.
    pub fn quiescent(&self) -> bool {
        self.net.is_empty()
    }

    /// Canonical byte encoding for state dedup and parent tracking.
    pub fn canon(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        for s in &self.nodes {
            out.push(s.alive as u8);
            out.push(s.epoch);
            out.push(s.is_primary as u8);
            out.extend_from_slice(&s.store);
        }
        out.push(0xFE);
        for m in &self.net {
            out.push(m.src);
            out.push(m.dst);
            match m.kind {
                MsgKind::Replicate { key, ver, epoch } => {
                    out.extend_from_slice(&[1, key, ver, epoch]);
                }
                MsgKind::ReplicateAck { key, ver } => out.extend_from_slice(&[2, key, ver]),
                MsgKind::ChangePrimary { epoch, leader } => {
                    out.extend_from_slice(&[3, epoch, leader]);
                }
            }
        }
        out.push(0xFE);
        out.extend_from_slice(&[
            self.puts_done,
            self.crashes_done,
            self.elections_done,
            self.epoch_alloc,
        ]);
        for &(k, v) in &self.acked {
            out.extend_from_slice(&[k, v]);
        }
        out.push(0xFE);
        for p in &self.pending {
            out.extend_from_slice(&[p.key, p.ver, p.server, p.waiting]);
        }
        out.push(0xFE);
        for &(e, n) in &self.claims {
            out.extend_from_slice(&[e, n]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Protocol, Spec};

    fn small_bounds() -> Bounds {
        Bounds {
            nodes: 2,
            keys: 1,
            puts: 1,
            crashes: 0,
            elections: 0,
            max_states: 10_000,
        }
    }

    #[test]
    fn bootstrap_changeprimary_elects_node_zero() {
        let spec = Spec::correct(Protocol::PbSync);
        let b = small_bounds();
        let w = World::initial(&spec, &b);
        assert_eq!(w.net.len(), 2);
        let cp = w.net[0].clone();
        let (w2, ev) = w.apply(&spec, &Action::Deliver(cp));
        assert!(ev.is_empty());
        assert!(w2.nodes.iter().any(|s| s.is_primary));
    }

    #[test]
    fn sync_put_acks_only_after_replica_ack() {
        let spec = Spec::correct(Protocol::PbSync);
        let b = small_bounds();
        let mut w = World::initial(&spec, &b);
        // Settle bootstrap.
        while let Some(m) = w.net.first().cloned() {
            w = w.apply(&spec, &Action::Deliver(m)).0;
        }
        let (w, _) = w.apply(&spec, &Action::InjectPut { node: 0, key: 0 });
        assert!(w.acked.is_empty(), "sync put acked before replication");
        assert_eq!(w.pending.len(), 1);
        let repl = w.net[0].clone();
        let (w, _) = w.apply(&spec, &Action::Deliver(repl));
        let ack = w.net[0].clone();
        let (w, _) = w.apply(&spec, &Action::Deliver(ack));
        assert_eq!(w.acked, vec![(0, 1)]);
        assert!(w.pending.is_empty());
    }

    #[test]
    fn ack_before_commit_crash_loses_acked_write() {
        let mut spec = Spec::correct(Protocol::PbSync);
        spec.ack_before_commit = true;
        let b = Bounds {
            crashes: 1,
            ..small_bounds()
        };
        let mut w = World::initial(&spec, &b);
        while let Some(m) = w.net.first().cloned() {
            w = w.apply(&spec, &Action::Deliver(m)).0;
        }
        let (w, ev) = w.apply(&spec, &Action::InjectPut { node: 0, key: 0 });
        assert!(ev.is_empty());
        assert_eq!(w.acked, vec![(0, 1)]);
        // Crash the server before the replicate lands: ack is lost.
        let (_, ev) = w.apply(&spec, &Action::Crash { node: 0 });
        assert!(
            ev.iter()
                .any(|e| matches!(e, StepEvent::AckedWriteLost { key: 0, ver: 1 })),
            "{ev:?}"
        );
    }

    #[test]
    fn unfenced_stale_changeprimary_rolls_epoch_back() {
        let mut spec = Spec::correct(Protocol::PbSync);
        spec.cp_fenced = false;
        let b = Bounds {
            crashes: 1,
            elections: 1,
            ..small_bounds()
        };
        let mut w = World::initial(&spec, &b);
        // Hold N0's bootstrap copy; deliver N1's.
        let stale = w.net.iter().find(|m| m.dst == 0).cloned().expect("cp");
        let n1_cp = w.net.iter().find(|m| m.dst == 1).cloned().expect("cp");
        w = w.apply(&spec, &Action::Deliver(n1_cp)).0;
        // N1's lease view: no live primary (N0 never heard). Elect N1.
        w.nodes[1].is_primary = false; // bootstrap named N0, so already false
        let (mut w, _) = w.apply(&spec, &Action::Elect { node: 1 });
        assert_eq!(w.nodes[1].epoch, 2);
        // Deliver election CP to N0, then the stale bootstrap CP.
        let cp2 = w
            .net
            .iter()
            .find(|m| matches!(m.kind, MsgKind::ChangePrimary { epoch: 2, .. }))
            .cloned()
            .expect("cp2");
        w = w.apply(&spec, &Action::Deliver(cp2)).0;
        assert_eq!(w.nodes[0].epoch, 2);
        let (w, ev) = w.apply(&spec, &Action::Deliver(stale));
        assert!(
            ev.iter().any(|e| matches!(
                e,
                StepEvent::EpochRollback {
                    node: 0,
                    from: 2,
                    to: 1
                }
            )),
            "{ev:?}"
        );
        assert_eq!(w.nodes[0].epoch, 1, "blind apply rolled the epoch back");
    }

    #[test]
    fn fenced_stale_changeprimary_is_refused() {
        let spec = Spec::correct(Protocol::PbSync);
        let b = Bounds {
            elections: 1,
            ..small_bounds()
        };
        let mut w = World::initial(&spec, &b);
        let stale = w.net.iter().find(|m| m.dst == 0).cloned().expect("cp");
        let n1_cp = w.net.iter().find(|m| m.dst == 1).cloned().expect("cp");
        w = w.apply(&spec, &Action::Deliver(n1_cp)).0;
        let (mut w, _) = w.apply(&spec, &Action::Elect { node: 1 });
        let cp2 = w
            .net
            .iter()
            .find(|m| matches!(m.kind, MsgKind::ChangePrimary { epoch: 2, .. }))
            .cloned()
            .expect("cp2");
        w = w.apply(&spec, &Action::Deliver(cp2)).0;
        let (w, ev) = w.apply(&spec, &Action::Deliver(stale));
        assert!(ev.is_empty(), "{ev:?}");
        assert_eq!(w.nodes[0].epoch, 2, "fence must refuse the stale epoch");
    }

    #[test]
    fn canon_distinguishes_states() {
        let spec = Spec::correct(Protocol::Eventual);
        let b = small_bounds();
        let w = World::initial(&spec, &b);
        let (w2, _) = w.apply(&spec, &Action::InjectPut { node: 0, key: 0 });
        assert_ne!(w.canon(), w2.canon());
        assert_eq!(w.canon(), w.clone().canon());
    }
}
