//! `wiera-model` — extract the replication/failover protocol from
//! source and exhaustively model-check it.
//!
//! ```text
//! wiera-model [--protocol all|pb-sync|multi-primary|eventual]
//!             [--nodes N] [--keys K] [--puts P] [--crashes C]
//!             [--elections E] [--max-states S] [--naive] [--json]
//!             [--report FILE] [--root DIR] [PATHS...]
//! ```
//!
//! With no PATHS, extracts from every crate under the enclosing
//! workspace (walking up from the current directory, or `--root`).
//! PATHS restrict extraction to explicit files/directories — the
//! planted-defect harness uses this.
//!
//! Exit status: `0` all explored protocols clean, `1` extraction too
//! incomplete to model (no handler transitions found), `2` invariant
//! violations (or usage/I/O errors).

use std::path::PathBuf;
use std::process::ExitCode;
use wiera_audit::callgraph::{Config, Model};
use wiera_audit::items::SourceFile;
use wiera_audit::protocol::{self, ProtocolModel};
use wiera_audit::workspace;
use wiera_model::trace::render_msc;
use wiera_model::{explore, Bounds, Protocol, Spec};

const USAGE: &str = "\
usage: wiera-model [--protocol all|pb-sync|multi-primary|eventual]
                   [--nodes N] [--keys K] [--puts P] [--crashes C]
                   [--elections E] [--max-states S] [--naive] [--json]
                   [--report FILE] [--root DIR] [PATHS...]

  --protocol MODE   replication mode(s) to explore (default: all)
  --nodes N         nodes in the small world        (default: 3)
  --keys K          distinct keys                   (default: 2)
  --puts P          client puts per trace           (default: 2)
  --crashes C       crash events per trace          (default: 1)
  --elections E     elections per trace             (default: 1)
  --max-states S    abort beyond S distinct states  (default: 4000000)
  --naive           disable the partial-order reduction
  --json            print the run report as JSON to stdout
  --report FILE     also write the JSON report to FILE
  --root DIR        workspace root (default: walk up from the cwd)
";

struct Options {
    protocols: Vec<Protocol>,
    bounds: Bounds,
    naive: bool,
    json: bool,
    report: Option<PathBuf>,
    root: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        protocols: Protocol::ALL.to_vec(),
        bounds: Bounds::default(),
        naive: false,
        json: false,
        report: None,
        root: None,
        paths: Vec::new(),
    };
    let mut i = 0usize;
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "--naive" => opts.naive = true,
            "--json" => opts.json = true,
            "--help" | "-h" => return Err(String::new()),
            "--protocol" | "--nodes" | "--keys" | "--puts" | "--crashes" | "--elections"
            | "--max-states" | "--report" | "--root" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return Err(format!("{a} requires a value"));
                };
                match a {
                    "--protocol" => {
                        if v == "all" {
                            opts.protocols = Protocol::ALL.to_vec();
                        } else {
                            let p = Protocol::parse(v)
                                .ok_or_else(|| format!("unknown protocol '{v}'"))?;
                            opts.protocols = vec![p];
                        }
                    }
                    "--report" => opts.report = Some(PathBuf::from(v)),
                    "--root" => opts.root = Some(PathBuf::from(v)),
                    _ => {
                        let n: usize = v
                            .parse()
                            .map_err(|_| format!("{a} expects a number, got '{v}'"))?;
                        match a {
                            "--nodes" => opts.bounds.nodes = n.clamp(1, 4),
                            "--keys" => opts.bounds.keys = n.clamp(1, 3),
                            "--puts" => opts.bounds.puts = n.min(3),
                            "--crashes" => opts.bounds.crashes = n.min(3),
                            "--elections" => opts.bounds.elections = n.min(2),
                            _ => opts.bounds.max_states = n.max(1),
                        }
                    }
                }
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    Ok(opts)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn extract_model(opts: &Options) -> Result<(Model, ProtocolModel), String> {
    let inputs = if opts.paths.is_empty() {
        let root = opts
            .root
            .clone()
            .or_else(|| {
                std::env::current_dir()
                    .ok()
                    .and_then(|d| workspace::find_root(&d))
            })
            .ok_or("no workspace root found (pass --root or PATHS)")?;
        workspace::discover_workspace(&root)
    } else {
        workspace::discover_paths(&opts.paths)
    };
    if inputs.is_empty() {
        return Err("no .rs sources found".to_string());
    }
    let files: Vec<SourceFile> = inputs
        .into_iter()
        .map(|i| SourceFile::new(i.origin, i.crate_name, i.src))
        .collect();
    let model = Model::build(files, Config::default());
    let pm = protocol::extract(&model);
    Ok((model, pm))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("wiera-model: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let (_, pm) = match extract_model(&opts) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("wiera-model: {msg}");
            return ExitCode::from(2);
        }
    };
    if pm.transitions.is_empty() {
        eprintln!("wiera-model: extraction found no handler transitions; nothing to model-check");
        return ExitCode::from(1);
    }

    let mut runs_json: Vec<String> = Vec::new();
    let mut total_violations = 0usize;
    let mut truncated = false;

    for protocol in &opts.protocols {
        let spec = Spec::from_protocol_model(&pm, *protocol);
        let start = std::time::Instant::now();
        let result = explore(&spec, &opts.bounds, !opts.naive);
        let elapsed_ms = start.elapsed().as_millis();
        total_violations += result.violations.len();
        truncated |= result.truncated;

        if !opts.json {
            println!(
                "{}: {} states explored in {}ms (cp_fenced={}, repl_fenced={}, \
                 ack_before_commit={}): {}{}",
                protocol.as_str(),
                result.states,
                elapsed_ms,
                spec.cp_fenced,
                spec.repl_fenced,
                spec.ack_before_commit,
                if result.violations.is_empty() {
                    "no violations".to_string()
                } else {
                    format!("{} violation(s)", result.violations.len())
                },
                if result.truncated { " [TRUNCATED]" } else { "" },
            );
            for v in &result.violations {
                println!("\n{} deny: {}", v.code.as_str(), v.message);
                println!("minimal counterexample ({} steps):", v.trace.len());
                print!("{}", render_msc(&v.trace, opts.bounds.nodes));
            }
        }

        let violations_json: Vec<String> = result
            .violations
            .iter()
            .map(|v| {
                let steps: Vec<String> = v
                    .trace
                    .iter()
                    .map(|a| json_escape(&format!("{a:?}")))
                    .collect();
                format!(
                    "{{\"code\":{},\"message\":{},\"steps\":[{}]}}",
                    json_escape(v.code.as_str()),
                    json_escape(&v.message),
                    steps.join(",")
                )
            })
            .collect();
        runs_json.push(format!(
            "{{\"protocol\":{},\"states\":{},\"elapsed_ms\":{},\"truncated\":{},\
             \"spec\":{{\"cp_fenced\":{},\"repl_fenced\":{},\"ack_before_commit\":{}}},\
             \"violations\":[{}]}}",
            json_escape(protocol.as_str()),
            result.states,
            elapsed_ms,
            result.truncated,
            spec.cp_fenced,
            spec.repl_fenced,
            spec.ack_before_commit,
            violations_json.join(",")
        ));
    }

    let report = format!(
        "{{\"bounds\":{{\"nodes\":{},\"keys\":{},\"puts\":{},\"crashes\":{},\
         \"elections\":{}}},\"reduction\":{},\"transitions\":{},\"runs\":[\n{}\n]}}",
        opts.bounds.nodes,
        opts.bounds.keys,
        opts.bounds.puts,
        opts.bounds.crashes,
        opts.bounds.elections,
        !opts.naive,
        pm.transitions.len(),
        runs_json.join(",\n")
    );
    if opts.json {
        println!("{report}");
    }
    if let Some(path) = &opts.report {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("wiera-model: cannot write '{}': {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if total_violations > 0 || truncated {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
