//! Counterexample rendering: an action trace as an ASCII
//! message-sequence diagram plus a numbered step narration.

use crate::world::{Action, Msg, MsgKind};

fn kind_label(kind: &MsgKind) -> String {
    match kind {
        MsgKind::Replicate { key, ver, epoch } => format!("Replicate(k{key},v{ver},e{epoch})"),
        MsgKind::ReplicateAck { key, ver } => format!("ReplAck(k{key},v{ver})"),
        MsgKind::ChangePrimary { epoch, leader } => format!("ChangePrimary(e{epoch},N{leader})"),
    }
}

fn narrate(a: &Action) -> String {
    match a {
        Action::Deliver(Msg { src, dst, kind }) => {
            format!("deliver {} from N{src} to N{dst}", kind_label(kind))
        }
        Action::InjectPut { node, key } => {
            format!("client put on k{key} arrives at N{node}")
        }
        Action::Crash { node } => {
            format!("N{node} crashes (volatile store wiped, in-flight sends lost)")
        }
        Action::Restart { node } => format!("N{node} restarts empty with its durable epoch"),
        Action::Elect { node } => {
            format!("coordinator elects N{node} primary with a fresh epoch")
        }
    }
}

/// One lane per node; message arrows between lanes, local events on the
/// lane itself.
pub fn render_msc(trace: &[Action], nodes: usize) -> String {
    const LANE: usize = 13;
    let mut out = String::new();
    let mut header = String::from("      ");
    for n in 0..nodes {
        header.push_str(&format!("{:^LANE$}", format!("N{n}")));
    }
    out.push_str(&header);
    out.push('\n');

    for (i, a) in trace.iter().enumerate() {
        let mut line = format!("{:>4}  ", i + 1);
        let lane_mid = |n: usize| n * LANE + LANE / 2;
        match a {
            Action::Deliver(Msg { src, dst, kind }) => {
                let (s, d) = (*src as usize, *dst as usize);
                let (lo, hi) = (lane_mid(s.min(d)), lane_mid(s.max(d)));
                let mut row: Vec<char> = vec![' '; nodes * LANE];
                for cell in row.iter_mut().take(hi).skip(lo + 1) {
                    *cell = '-';
                }
                row[lane_mid(s)] = '+';
                row[lane_mid(d)] = if d > s { '>' } else { '<' };
                if s == d {
                    row[lane_mid(s)] = '@';
                }
                let label = kind_label(kind);
                line.push_str(&row.iter().collect::<String>());
                line.push_str("  ");
                line.push_str(&label);
            }
            Action::InjectPut { node, key } => {
                let mut row: Vec<char> = vec![' '; nodes * LANE];
                row[lane_mid(*node as usize)] = '*';
                line.push_str(&row.iter().collect::<String>());
                line.push_str(&format!("  put k{key}"));
            }
            Action::Crash { node } | Action::Restart { node } | Action::Elect { node } => {
                let mut row: Vec<char> = vec![' '; nodes * LANE];
                row[lane_mid(*node as usize)] = 'X';
                let tag = match a {
                    Action::Crash { .. } => "CRASH",
                    Action::Restart { .. } => "RESTART",
                    _ => "ELECT",
                };
                line.push_str(&row.iter().collect::<String>());
                line.push_str("  ");
                line.push_str(tag);
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }

    out.push('\n');
    for (i, a) in trace.iter().enumerate() {
        out.push_str(&format!("{:>4}. {}\n", i + 1, narrate(a)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msc_renders_arrows_and_narration() {
        let trace = vec![
            Action::InjectPut { node: 0, key: 0 },
            Action::Deliver(Msg {
                src: 0,
                dst: 1,
                kind: MsgKind::Replicate {
                    key: 0,
                    ver: 1,
                    epoch: 1,
                },
            }),
            Action::Crash { node: 0 },
        ];
        let msc = render_msc(&trace, 2);
        assert!(msc.contains("N0"), "{msc}");
        assert!(msc.contains("Replicate(k0,v1,e1)"), "{msc}");
        assert!(msc.contains("CRASH"), "{msc}");
        assert!(msc.contains("client put on k0 arrives at N0"), "{msc}");
        assert!(msc.contains('>'), "{msc}");
    }
}
