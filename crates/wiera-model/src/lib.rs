//! wiera-model: bounded explicit-state model checking of the extracted
//! replication/failover protocol.
//!
//! wiera-audit's `protocol` module extracts every `DataMsg`/`CoordMsg`
//! handler arm into a guarded transition (epoch fences and primary
//! checks read, store/epoch/primary state mutated, messages emitted).
//! This crate closes the loop: it compiles those extracted facts into a
//! small-world operational semantics — a few nodes with volatile
//! stores and durable epochs, an in-flight message multiset, bounded
//! crash/restart/election budgets — and exhaustively explores every
//! interleaving, checking four global invariants the static layer
//! cannot see:
//!
//! * **WM001** at-most-one-primary-per-epoch (split-brain),
//! * **WM002** per-node epoch monotonicity (rollback),
//! * **WM003** no acked-write loss across failover,
//! * **WM004** post-quiescence digest convergence.
//!
//! Violations come back as minimal traces rendered as message-sequence
//! diagrams. A persistent-set reduction prunes commuting delivery
//! interleavings once failure budgets are spent; `--naive` disables it,
//! and the equivalence test keeps both modes honest against each other.
//!
//! The checker is deliberately small-world: 2–3 nodes, 1–2 keys, a
//! couple of writes and failures per trace. That is where every
//! replication bug class this codebase has seen actually manifests, and
//! it keeps exhaustive exploration in CI budget. See DESIGN.md §13 for
//! the soundness caveats inherited from lexical extraction.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod explore;
pub mod spec;
pub mod trace;
pub mod world;

pub use explore::{explore, ExploreResult, Violation};
pub use spec::{Bounds, Protocol, Spec};
