//! Protocol specification: the handful of extracted facts the explorer
//! branches on, plus the protocol mode and exploration bounds.
//!
//! The extraction layer (wiera-audit's `protocol` module) reduces each
//! handler arm to guards/effects/emits; this module reduces *that* to the
//! flags that change reachable behavior in the small-world semantics:
//! whether `ChangePrimary` and `Replicate` are epoch-fenced, and whether
//! the `Put` arm acknowledges before its mutation commits. The protocol
//! *mode* (primary-backup sync, multi-primary, eventual) is configuration
//! — Wiera instances pick it per policy at runtime — so the checker
//! explores each requested mode against the same extracted flags.

use wiera_audit::protocol::ProtocolModel;

/// Replication mode under exploration (Wiera consistency policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Primary-backup, synchronous replication: the primary acks a put
    /// only once every peer acked the replicate.
    PbSync,
    /// Multiple writers, synchronous replication, no failover epochs.
    MultiPrimary,
    /// Any writer, asynchronous replication, ack at accept time.
    Eventual,
}

impl Protocol {
    pub fn as_str(self) -> &'static str {
        match self {
            Protocol::PbSync => "pb-sync",
            Protocol::MultiPrimary => "multi-primary",
            Protocol::Eventual => "eventual",
        }
    }

    pub fn parse(s: &str) -> Option<Protocol> {
        match s {
            "pb-sync" | "pb_sync" | "pbsync" => Some(Protocol::PbSync),
            "multi-primary" | "multi_primary" => Some(Protocol::MultiPrimary),
            "eventual" => Some(Protocol::Eventual),
            _ => None,
        }
    }

    /// Writes wait for replica acks before the client sees success.
    pub fn sync_replication(self) -> bool {
        !matches!(self, Protocol::Eventual)
    }

    /// The mode designates a single primary and runs epoch failover.
    pub fn has_primary(self) -> bool {
        matches!(self, Protocol::PbSync)
    }

    pub const ALL: [Protocol; 3] = [Protocol::PbSync, Protocol::MultiPrimary, Protocol::Eventual];
}

/// Extracted behavior flags the small-world semantics branches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Spec {
    pub protocol: Protocol,
    /// `ChangePrimary` refuses strictly-stale epochs (`epoch >= s.epoch`
    /// write guard in the real handler — equality is idempotent).
    pub cp_fenced: bool,
    /// `Replicate` refuses strictly-stale epochs before applying.
    pub repl_fenced: bool,
    /// The `Put` arm emits its ack before the mutation/replication
    /// commits (the WS112 defect class).
    pub ack_before_commit: bool,
}

impl Spec {
    /// Derive the behavior flags from an extracted protocol model.
    pub fn from_protocol_model(pm: &ProtocolModel, protocol: Protocol) -> Spec {
        Spec {
            protocol,
            cp_fenced: pm.fenced("ChangePrimary"),
            repl_fenced: pm.fenced("Replicate") || pm.fenced("ReplicateBatch"),
            ack_before_commit: pm.acks_before_mutation("Put").unwrap_or(false),
        }
    }

    /// The correctly-fenced reference spec for a mode.
    pub fn correct(protocol: Protocol) -> Spec {
        Spec {
            protocol,
            cp_fenced: true,
            repl_fenced: true,
            ack_before_commit: false,
        }
    }
}

/// Exploration bounds: world size and failure budget per trace.
#[derive(Debug, Clone, Copy)]
pub struct Bounds {
    pub nodes: usize,
    pub keys: usize,
    /// Client puts injected per trace.
    pub puts: usize,
    /// Crash events per trace (each crashed node may restart once per
    /// crash). Keep `crashes < nodes` or sync acks degenerate to
    /// single-copy commits and Wm003 loses meaning.
    pub crashes: usize,
    /// Elections per trace (primary-backup mode only).
    pub elections: usize,
    /// Abort exploration beyond this many distinct states.
    pub max_states: usize,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            nodes: 3,
            keys: 2,
            puts: 2,
            crashes: 1,
            elections: 1,
            max_states: 4_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_parse_round_trips() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::parse(p.as_str()), Some(p));
        }
        assert_eq!(Protocol::parse("nope"), None);
    }

    #[test]
    fn correct_spec_is_fully_fenced() {
        let s = Spec::correct(Protocol::PbSync);
        assert!(s.cp_fenced && s.repl_fenced && !s.ack_before_commit);
    }
}
