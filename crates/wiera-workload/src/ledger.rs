//! Staleness ground truth.
//!
//! Fig. 8 reports "the chance that the clients will see the latest data
//! (Strong) and outdated data (Eventual)". To measure it we keep a global
//! ledger of the highest version ever *acknowledged* for each key; a read
//! that returns a lower version than the ledger held when the read started
//! observed outdated data.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Global (cross-client) version ledger.
#[derive(Default)]
pub struct Ledger {
    latest: Mutex<HashMap<String, u64>>,
}

impl Ledger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an acknowledged write.
    pub fn on_put(&self, key: &str, version: u64) {
        let mut m = self.latest.lock();
        let e = m.entry(key.to_string()).or_insert(0);
        if version > *e {
            *e = version;
        }
    }

    /// Highest acked version for `key` (0 if never written).
    pub fn latest(&self, key: &str) -> u64 {
        self.latest.lock().get(key).copied().unwrap_or(0)
    }

    /// Was a read returning `seen` fresh, given the ledger state sampled at
    /// read start (`expected`)?
    pub fn is_fresh(seen: u64, expected: u64) -> bool {
        seen >= expected
    }

    pub fn tracked_keys(&self) -> usize {
        self.latest.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_monotone_max() {
        let l = Ledger::new();
        assert_eq!(l.latest("k"), 0);
        l.on_put("k", 3);
        l.on_put("k", 2); // lower ack never regresses the ledger
        assert_eq!(l.latest("k"), 3);
        l.on_put("k", 5);
        assert_eq!(l.latest("k"), 5);
        assert_eq!(l.tracked_keys(), 1);
    }

    #[test]
    fn freshness_rule() {
        assert!(Ledger::is_fresh(5, 5));
        assert!(Ledger::is_fresh(6, 5), "newer than expected is fresh");
        assert!(!Ledger::is_fresh(4, 5));
        assert!(Ledger::is_fresh(0, 0), "unwritten key reads are fresh");
    }
}
