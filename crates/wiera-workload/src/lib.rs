#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! Workload generation — the YCSB stand-in plus the paper's custom drivers.
//!
//! §5 generates client load with the Yahoo Cloud Serving Benchmark and "our
//! own benchmarks". This crate reproduces the pieces the evaluation uses:
//!
//! * [`keychooser`] — YCSB's request distributions: uniform, zipfian
//!   (Facebook-style skew, §3.3.3/§5.3) and latest.
//! * [`spec`] — workload mixes: the standard YCSB A–D/F presets plus the
//!   read-mostly (95 % get / 5 % put) mix §5.2 calls "workload A".
//! * [`ledger`] — the staleness ground truth: tracks the globally latest
//!   acked version per key so Fig. 8's "saw latest (Strong) vs outdated
//!   (Eventual)" percentages can be measured.
//! * [`driver`] — closed-loop client drivers against any [`KvStore`]
//!   (implemented for `WieraClient`), with latency recording and staleness
//!   probes.
//! * [`diurnal`] — the §5.2 active-client model: per-region client counts
//!   following a normal distribution over time, peaks staggered
//!   Asia-East → EU-West → US-West "to mimic the workload in different
//!   regions of the world".

pub mod diurnal;
pub mod driver;
pub mod keychooser;
pub mod ledger;
pub mod spec;

pub use diurnal::ActiveSchedule;
pub use driver::{ClientDriver, DriverReport, KvError, KvStore, OpSample};
pub use keychooser::KeyChooser;
pub use ledger::Ledger;
pub use spec::{OpKind, WorkloadSpec};
