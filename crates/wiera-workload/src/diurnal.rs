//! The §5.2 active-client model.
//!
//! "10 clients are running per each region and the number of active clients
//! are modeled with a normal distribution to mimic the workload in
//! different regions of the world. The mean of the normal distribution is
//! 7.5 minutes and variance is set to 5 minutes. The number of active
//! clients will increase and decrease in the following order: Asia East,
//! EU West and US West."

use wiera_sim::{SimDuration, SimInstant};

/// Gaussian activity curve for one region's client population.
#[derive(Debug, Clone)]
pub struct ActiveSchedule {
    pub max_clients: usize,
    /// When this region's activity peaks.
    pub peak: SimInstant,
    /// Spread of the activity bell.
    pub sigma: SimDuration,
}

impl ActiveSchedule {
    pub fn new(max_clients: usize, peak: SimInstant, sigma: SimDuration) -> Self {
        ActiveSchedule {
            max_clients,
            peak,
            sigma,
        }
    }

    /// The paper's parameters: peak at `offset + 7.5 min`, σ derived from a
    /// "variance of 5 minutes" (read as σ = 5 min for a visible bell).
    pub fn paper(max_clients: usize, offset: SimDuration) -> Self {
        ActiveSchedule {
            max_clients,
            peak: SimInstant::EPOCH + offset + SimDuration::from_secs(450),
            sigma: SimDuration::from_mins(5),
        }
    }

    /// Staggered schedules in the paper's order (Asia-East first, then
    /// EU-West, then US-West), one peak every `stagger`.
    pub fn staggered(max_clients: usize, regions: usize, stagger: SimDuration) -> Vec<Self> {
        (0..regions)
            .map(|i| Self::paper(max_clients, stagger * i as u64))
            .collect()
    }

    /// How many clients are active at time `t`.
    pub fn active_at(&self, t: SimInstant) -> usize {
        let sigma_s = self.sigma.as_secs_f64().max(1e-9);
        let dt = if t >= self.peak {
            t.elapsed_since(self.peak).as_secs_f64()
        } else {
            self.peak.elapsed_since(t).as_secs_f64()
        };
        let f = (-0.5 * (dt / sigma_s).powi(2)).exp();
        (self.max_clients as f64 * f).round() as usize
    }

    /// Is client index `i` (0-based) active at `t`? Clients activate in
    /// index order, so client 0 is active the longest.
    pub fn client_active(&self, i: usize, t: SimInstant) -> bool {
        i < self.active_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_mins(m)
    }

    #[test]
    fn bell_peaks_at_peak() {
        let s = ActiveSchedule::paper(10, SimDuration::ZERO);
        let at_peak = s.active_at(s.peak);
        assert_eq!(at_peak, 10);
        assert!(
            s.active_at(mins(40)) < 3,
            "long after the peak, few clients"
        );
        // Symmetric-ish rise and fall.
        let before = s.active_at(s.peak - SimDuration::from_mins(5));
        let after = s.active_at(s.peak + SimDuration::from_mins(5));
        assert_eq!(before, after);
        assert!(before < 10 && before > 0);
    }

    #[test]
    fn staggered_order_matches_paper() {
        let scheds = ActiveSchedule::staggered(10, 3, SimDuration::from_mins(10));
        // Asia peaks first, then EU, then US.
        assert!(scheds[0].peak < scheds[1].peak);
        assert!(scheds[1].peak < scheds[2].peak);
        // At Asia's peak, Asia dominates.
        let t = scheds[0].peak;
        assert!(scheds[0].active_at(t) > scheds[1].active_at(t));
        assert!(scheds[1].active_at(t) > scheds[2].active_at(t));
        // At US's peak, the order is reversed.
        let t = scheds[2].peak;
        assert!(scheds[2].active_at(t) > scheds[0].active_at(t));
    }

    #[test]
    fn client_activation_is_ordered() {
        let s = ActiveSchedule::paper(10, SimDuration::ZERO);
        let t = s.peak + SimDuration::from_mins(5);
        let active = s.active_at(t);
        assert!(active > 0 && active < 10);
        for i in 0..10 {
            assert_eq!(s.client_active(i, t), i < active);
        }
    }
}
