//! Workload mixes (the YCSB core workloads plus the paper's variants).

use crate::keychooser::KeyChooser;
use wiera_sim::SimRng;

/// One operation kind drawn from a mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Get,
    Put,
    /// Read-modify-write (YCSB F): a get followed by a put of the same key.
    Rmw,
}

/// A workload: operation mix + key distribution + record shape.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    pub name: &'static str,
    /// Probabilities; must sum to 1.
    pub get_prop: f64,
    pub put_prop: f64,
    pub rmw_prop: f64,
    pub keys: KeyChooser,
    pub value_bytes: usize,
}

impl WorkloadSpec {
    fn mix(
        name: &'static str,
        get: f64,
        put: f64,
        rmw: f64,
        keys: KeyChooser,
        value_bytes: usize,
    ) -> Self {
        debug_assert!((get + put + rmw - 1.0).abs() < 1e-9);
        WorkloadSpec {
            name,
            get_prop: get,
            put_prop: put,
            rmw_prop: rmw,
            keys,
            value_bytes,
        }
    }

    /// YCSB A: update heavy, 50 % read / 50 % update, zipfian (§5.1).
    pub fn ycsb_a(records: usize, value_bytes: usize) -> Self {
        Self::mix(
            "ycsb-a",
            0.5,
            0.5,
            0.0,
            KeyChooser::zipfian(records),
            value_bytes,
        )
    }

    /// YCSB B: read mostly, 95 % read / 5 % update, zipfian.
    pub fn ycsb_b(records: usize, value_bytes: usize) -> Self {
        Self::mix(
            "ycsb-b",
            0.95,
            0.05,
            0.0,
            KeyChooser::zipfian(records),
            value_bytes,
        )
    }

    /// YCSB C: read only.
    pub fn ycsb_c(records: usize, value_bytes: usize) -> Self {
        Self::mix(
            "ycsb-c",
            1.0,
            0.0,
            0.0,
            KeyChooser::zipfian(records),
            value_bytes,
        )
    }

    /// YCSB D: read latest, 95 % read / 5 % insert.
    pub fn ycsb_d(records: usize, value_bytes: usize) -> Self {
        Self::mix(
            "ycsb-d",
            0.95,
            0.05,
            0.0,
            KeyChooser::latest(records),
            value_bytes,
        )
    }

    /// YCSB F: read-modify-write.
    pub fn ycsb_f(records: usize, value_bytes: usize) -> Self {
        Self::mix(
            "ycsb-f",
            0.5,
            0.0,
            0.5,
            KeyChooser::zipfian(records),
            value_bytes,
        )
    }

    /// §5.2's mix: "Read mostly workload (5 % put and 95 % get)".
    pub fn read_mostly(records: usize, value_bytes: usize) -> Self {
        Self::mix(
            "read-mostly",
            0.95,
            0.05,
            0.0,
            KeyChooser::zipfian(records),
            value_bytes,
        )
    }

    /// Draw the next operation kind.
    pub fn next_op(&self, rng: &mut SimRng) -> OpKind {
        let u = rng.gen_range_f64(0.0, 1.0);
        if u < self.get_prop {
            OpKind::Get
        } else if u < self.get_prop + self.put_prop {
            OpKind::Put
        } else {
            OpKind::Rmw
        }
    }

    /// Draw the next key.
    pub fn next_key(&self, rng: &mut SimRng) -> String {
        format!("user{:08}", self.keys.next(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_respect_proportions() {
        let spec = WorkloadSpec::read_mostly(100, 64);
        let mut rng = SimRng::new(5);
        let mut puts = 0;
        let n = 20_000;
        for _ in 0..n {
            if spec.next_op(&mut rng) == OpKind::Put {
                puts += 1;
            }
        }
        let frac = puts as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.01, "put fraction {frac}");
    }

    #[test]
    fn ycsb_a_is_half_and_half() {
        let spec = WorkloadSpec::ycsb_a(100, 64);
        let mut rng = SimRng::new(6);
        let mut gets = 0;
        let n = 20_000;
        for _ in 0..n {
            if spec.next_op(&mut rng) == OpKind::Get {
                gets += 1;
            }
        }
        let frac = gets as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "get fraction {frac}");
    }

    #[test]
    fn ycsb_c_never_writes() {
        let spec = WorkloadSpec::ycsb_c(10, 64);
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(spec.next_op(&mut rng), OpKind::Get);
        }
    }

    #[test]
    fn ycsb_f_mixes_rmw() {
        let spec = WorkloadSpec::ycsb_f(10, 64);
        let mut rng = SimRng::new(8);
        assert!((0..1000).any(|_| spec.next_op(&mut rng) == OpKind::Rmw));
    }

    #[test]
    fn keys_are_stable_format() {
        let spec = WorkloadSpec::ycsb_a(10, 64);
        let mut rng = SimRng::new(9);
        let k = spec.next_key(&mut rng);
        assert!(k.starts_with("user"));
        assert_eq!(k.len(), 12);
    }
}
