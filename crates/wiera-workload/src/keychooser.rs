//! Request-key distributions, following YCSB's generators.

use wiera_sim::SimRng;

/// How a client picks which record to operate on.
#[derive(Debug, Clone)]
pub enum KeyChooser {
    /// Every record equally likely.
    Uniform { records: usize },
    /// YCSB's zipfian generator: popularity follows a Zipf law with
    /// exponent `theta` (YCSB default 0.99). "Huge fraction of data is
    /// accessed infrequently or not at all" — §5.3's Facebook observation.
    Zipfian {
        records: usize,
        theta: f64,
        zeta_n: f64,
    },
    /// Skewed toward the most recently inserted records.
    Latest {
        records: usize,
        theta: f64,
        zeta_n: f64,
    },
}

fn zeta(n: usize, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl KeyChooser {
    pub fn uniform(records: usize) -> Self {
        KeyChooser::Uniform {
            records: records.max(1),
        }
    }

    pub fn zipfian(records: usize) -> Self {
        Self::zipfian_theta(records, 0.99)
    }

    pub fn zipfian_theta(records: usize, theta: f64) -> Self {
        let n = records.max(1);
        KeyChooser::Zipfian {
            records: n,
            theta,
            zeta_n: zeta(n, theta),
        }
    }

    pub fn latest(records: usize) -> Self {
        let n = records.max(1);
        KeyChooser::Latest {
            records: n,
            theta: 0.99,
            zeta_n: zeta(n, theta_default()),
        }
    }

    pub fn records(&self) -> usize {
        match self {
            KeyChooser::Uniform { records }
            | KeyChooser::Zipfian { records, .. }
            | KeyChooser::Latest { records, .. } => *records,
        }
    }

    /// Draw a record index in `[0, records)`. Rank 0 is the most popular
    /// (zipfian) / most recent (latest).
    pub fn next(&self, rng: &mut SimRng) -> usize {
        match self {
            KeyChooser::Uniform { records } => rng.gen_range_usize(0, *records),
            KeyChooser::Zipfian {
                records,
                theta,
                zeta_n,
            }
            | KeyChooser::Latest {
                records,
                theta,
                zeta_n,
            } => zipf_sample(rng, *records, *theta, *zeta_n),
        }
    }
}

fn theta_default() -> f64 {
    0.99
}

/// Inverse-CDF zipf sampling (the YCSB algorithm, simplified).
fn zipf_sample(rng: &mut SimRng, n: usize, theta: f64, zeta_n: f64) -> usize {
    let u = rng.gen_range_f64(0.0, 1.0);
    let target = u * zeta_n;
    let mut acc = 0.0;
    // Popular ranks are hit with high probability, so the linear scan's
    // expected cost is tiny; fall through to the tail rarely.
    for i in 0..n {
        acc += 1.0 / ((i + 1) as f64).powf(theta);
        if acc >= target {
            return i;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_the_space() {
        let c = KeyChooser::uniform(100);
        let mut rng = SimRng::new(1);
        let mut seen = [false; 100];
        for _ in 0..5000 {
            seen[c.next(&mut rng)] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(covered > 95, "covered {covered}/100");
    }

    #[test]
    fn zipfian_is_heavily_skewed() {
        let c = KeyChooser::zipfian(1000);
        let mut rng = SimRng::new(2);
        let mut counts = vec![0usize; 1000];
        let draws = 20_000;
        for _ in 0..draws {
            counts[c.next(&mut rng)] += 1;
        }
        let top10: usize = counts[..10].iter().sum();
        assert!(
            top10 as f64 > draws as f64 * 0.3,
            "top-10 records should take >30% of accesses, got {top10}/{draws}"
        );
        // And a long cold tail: the bottom half of the records carries only
        // a small share of accesses — the premise of §5.3's cold-data policy.
        let bottom_half: usize = counts[500..].iter().sum();
        assert!(
            (bottom_half as f64) < draws as f64 * 0.25,
            "bottom half took {bottom_half}/{draws}"
        );
    }

    #[test]
    fn zipf_rank_ordering() {
        let c = KeyChooser::zipfian(100);
        let mut rng = SimRng::new(3);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[c.next(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[50]);
    }

    #[test]
    fn draws_stay_in_range() {
        for c in [
            KeyChooser::uniform(7),
            KeyChooser::zipfian(7),
            KeyChooser::latest(7),
        ] {
            let mut rng = SimRng::new(4);
            for _ in 0..1000 {
                assert!(c.next(&mut rng) < 7);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = KeyChooser::zipfian(500);
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        for _ in 0..100 {
            assert_eq!(c.next(&mut a), c.next(&mut b));
        }
    }
}
