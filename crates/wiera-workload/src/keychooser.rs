//! Request-key distributions, following YCSB's generators.

use std::sync::Arc;
use wiera_sim::SimRng;

/// How a client picks which record to operate on.
#[derive(Debug, Clone)]
pub enum KeyChooser {
    /// Every record equally likely.
    Uniform { records: usize },
    /// YCSB's zipfian generator: popularity follows a Zipf law with
    /// exponent `theta` (YCSB default 0.99). "Huge fraction of data is
    /// accessed infrequently or not at all" — §5.3's Facebook observation.
    /// Sampled by inverse CDF over a precomputed cumulative table, so a
    /// draw is a binary search, not a linear scan — large keyspaces
    /// (100k+ records) stay cheap even for big closed-loop client pools.
    Zipfian { records: usize, cdf: Arc<[f64]> },
    /// Skewed toward the most recently inserted records.
    Latest { records: usize, cdf: Arc<[f64]> },
}

/// Cumulative (unnormalized) Zipf mass: `cdf[i]` = Σ_{j≤i} 1/(j+1)^theta.
fn zipf_cdf(n: usize, theta: f64) -> Arc<[f64]> {
    let mut acc = 0.0;
    let cdf: Vec<f64> = (0..n)
        .map(|i| {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            acc
        })
        .collect();
    cdf.into()
}

impl KeyChooser {
    pub fn uniform(records: usize) -> Self {
        KeyChooser::Uniform {
            records: records.max(1),
        }
    }

    pub fn zipfian(records: usize) -> Self {
        Self::zipfian_theta(records, 0.99)
    }

    pub fn zipfian_theta(records: usize, theta: f64) -> Self {
        let n = records.max(1);
        KeyChooser::Zipfian {
            records: n,
            cdf: zipf_cdf(n, theta),
        }
    }

    pub fn latest(records: usize) -> Self {
        let n = records.max(1);
        KeyChooser::Latest {
            records: n,
            cdf: zipf_cdf(n, 0.99),
        }
    }

    pub fn records(&self) -> usize {
        match self {
            KeyChooser::Uniform { records }
            | KeyChooser::Zipfian { records, .. }
            | KeyChooser::Latest { records, .. } => *records,
        }
    }

    /// Draw a record index in `[0, records)`. Rank 0 is the most popular
    /// (zipfian) / most recent (latest).
    pub fn next(&self, rng: &mut SimRng) -> usize {
        match self {
            KeyChooser::Uniform { records } => rng.gen_range_usize(0, *records),
            KeyChooser::Zipfian { records, cdf } | KeyChooser::Latest { records, cdf } => {
                let total = cdf[cdf.len() - 1];
                let target = rng.gen_range_f64(0.0, 1.0) * total;
                // First rank whose cumulative mass reaches the target.
                cdf.partition_point(|&c| c < target).min(records - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_the_space() {
        let c = KeyChooser::uniform(100);
        let mut rng = SimRng::new(1);
        let mut seen = [false; 100];
        for _ in 0..5000 {
            seen[c.next(&mut rng)] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(covered > 95, "covered {covered}/100");
    }

    #[test]
    fn zipfian_is_heavily_skewed() {
        let c = KeyChooser::zipfian(1000);
        let mut rng = SimRng::new(2);
        let mut counts = vec![0usize; 1000];
        let draws = 20_000;
        for _ in 0..draws {
            counts[c.next(&mut rng)] += 1;
        }
        let top10: usize = counts[..10].iter().sum();
        assert!(
            top10 as f64 > draws as f64 * 0.3,
            "top-10 records should take >30% of accesses, got {top10}/{draws}"
        );
        // And a long cold tail: the bottom half of the records carries only
        // a small share of accesses — the premise of §5.3's cold-data policy.
        let bottom_half: usize = counts[500..].iter().sum();
        assert!(
            (bottom_half as f64) < draws as f64 * 0.25,
            "bottom half took {bottom_half}/{draws}"
        );
    }

    #[test]
    fn zipf_rank_ordering() {
        let c = KeyChooser::zipfian(100);
        let mut rng = SimRng::new(3);
        let mut counts = vec![0usize; 100];
        for _ in 0..50_000 {
            counts[c.next(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[50]);
    }

    #[test]
    fn zipf_rank_share_matches_the_law() {
        // The CDF-table sampler must reproduce the analytic Zipf shares:
        // rank 0 of 1000 at θ=0.99 carries ~1/ζ of the mass.
        let n = 1000;
        let c = KeyChooser::zipfian(n);
        let zeta: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(0.99)).sum();
        let want = 1.0 / zeta;
        let mut rng = SimRng::new(11);
        let draws = 100_000;
        let mut top = 0usize;
        for _ in 0..draws {
            if c.next(&mut rng) == 0 {
                top += 1;
            }
        }
        let got = top as f64 / draws as f64;
        assert!(
            (got - want).abs() < want * 0.15,
            "rank-0 share {got:.4}, analytic {want:.4}"
        );
    }

    #[test]
    fn draws_stay_in_range() {
        for c in [
            KeyChooser::uniform(7),
            KeyChooser::zipfian(7),
            KeyChooser::latest(7),
        ] {
            let mut rng = SimRng::new(4);
            for _ in 0..1000 {
                assert!(c.next(&mut rng) < 7);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = KeyChooser::zipfian(500);
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        for _ in 0..100 {
            assert_eq!(c.next(&mut a), c.next(&mut b));
        }
    }
}
