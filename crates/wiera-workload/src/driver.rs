//! Closed-loop client drivers.

use crate::ledger::Ledger;
use crate::spec::{OpKind, WorkloadSpec};
use bytes::Bytes;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wiera_sim::{LatencyRecorder, SharedClock, SimDuration, SimRng};

/// What one operation observed.
#[derive(Debug, Clone)]
pub struct OpSample {
    pub latency: SimDuration,
    pub version: u64,
}

/// Why a store operation failed. Historically the driver had its own
/// error struct; it is now the unified [`wiera::WieraError`] — a missing
/// key is workload noise ([`WieraError::is_not_found`]), anything else is
/// a real error. Substrate adapters construct it with
/// [`WieraError::not_found`] / [`WieraError::other`].
pub use wiera::WieraError as KvError;

/// Anything a driver can load: `WieraClient` implements this, and the app
/// substrates provide their own adapters.
pub trait KvStore: Send + Sync {
    fn kv_put(&self, key: &str, value: Bytes) -> Result<OpSample, KvError>;
    fn kv_get(&self, key: &str) -> Result<OpSample, KvError>;
    /// Get that also returns the object bytes (used by the file layer).
    fn kv_get_value(&self, key: &str) -> Result<(Bytes, OpSample), KvError>;

    /// Batched writes, one result per item. The default loops per-op so
    /// substrates without a native bulk path still work; stores with real
    /// batch support (WieraClient) override it.
    fn kv_put_batch(&self, items: &[(String, Bytes)]) -> Vec<Result<OpSample, KvError>> {
        items
            .iter()
            .map(|(k, v)| self.kv_put(k, v.clone()))
            .collect()
    }

    /// Batched reads, one result per item; same contract as
    /// [`Self::kv_put_batch`].
    fn kv_get_batch(&self, keys: &[String]) -> Vec<Result<OpSample, KvError>> {
        keys.iter().map(|k| self.kv_get(k)).collect()
    }
}

fn view_sample(view: &wiera::replica::OpView) -> OpSample {
    OpSample {
        latency: view.latency,
        version: view.version,
    }
}

impl KvStore for wiera::client::WieraClient {
    fn kv_put(&self, key: &str, value: Bytes) -> Result<OpSample, KvError> {
        self.put(key, value).map(|v| view_sample(&v))
    }

    fn kv_get(&self, key: &str) -> Result<OpSample, KvError> {
        self.get(key).map(|v| view_sample(&v))
    }

    fn kv_get_value(&self, key: &str) -> Result<(Bytes, OpSample), KvError> {
        let view = self.get(key)?;
        let sample = view_sample(&view);
        Ok((view.value.unwrap_or_default(), sample))
    }

    fn kv_put_batch(&self, items: &[(String, Bytes)]) -> Vec<Result<OpSample, KvError>> {
        match self.put_batch(items) {
            Ok(results) => results
                .into_iter()
                .map(|r| r.map(|v| view_sample(&v)))
                .collect(),
            Err(shared) => items.iter().map(|_| Err(shared.clone())).collect(),
        }
    }

    fn kv_get_batch(&self, keys: &[String]) -> Vec<Result<OpSample, KvError>> {
        match self.get_batch(keys) {
            Ok(results) => results
                .into_iter()
                .map(|r| r.map(|v| view_sample(&v)))
                .collect(),
            Err(shared) => keys.iter().map(|_| Err(shared.clone())).collect(),
        }
    }
}

/// Aggregated results of a driver run.
#[derive(Debug, Clone)]
pub struct DriverReport {
    pub ops: u64,
    pub errors: u64,
    pub put_latency: wiera_sim::Summary,
    pub get_latency: wiera_sim::Summary,
    pub fresh_reads: u64,
    pub stale_reads: u64,
}

impl DriverReport {
    /// Fraction of reads that returned outdated data (Fig. 8's "Eventual").
    pub fn stale_fraction(&self) -> f64 {
        let total = self.fresh_reads + self.stale_reads;
        if total == 0 {
            0.0
        } else {
            self.stale_reads as f64 / total as f64
        }
    }
}

/// A closed-loop client issuing one operation after another, with optional
/// modeled think time between operations.
pub struct ClientDriver {
    pub spec: WorkloadSpec,
    pub ledger: Arc<Ledger>,
    pub think: SimDuration,
    put_rec: LatencyRecorder,
    get_rec: LatencyRecorder,
    ops: AtomicU64,
    errors: AtomicU64,
    fresh: AtomicU64,
    stale: AtomicU64,
}

impl ClientDriver {
    pub fn new(spec: WorkloadSpec, ledger: Arc<Ledger>, think: SimDuration) -> Arc<Self> {
        Arc::new(ClientDriver {
            spec,
            ledger,
            think,
            put_rec: LatencyRecorder::new(),
            get_rec: LatencyRecorder::new(),
            ops: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
            stale: AtomicU64::new(0),
        })
    }

    /// Issue exactly `n` operations against `store`.
    pub fn run_ops(&self, store: &dyn KvStore, clock: &SharedClock, rng: &mut SimRng, n: u64) {
        for _ in 0..n {
            self.step(store, rng);
            if !self.think.is_zero() {
                clock.sleep(self.think);
            }
        }
    }

    /// Keep issuing operations until `stop` is set.
    pub fn run_until(
        &self,
        store: &dyn KvStore,
        clock: &SharedClock,
        rng: &mut SimRng,
        stop: &AtomicBool,
    ) {
        while !stop.load(Ordering::Acquire) {
            self.step(store, rng);
            if !self.think.is_zero() {
                clock.sleep(self.think);
            }
        }
    }

    /// Issue `n` operations in batches of `batch`: each round draws `batch`
    /// ops from the mix, groups the reads into one `kv_get_batch` and the
    /// writes into one `kv_put_batch`, and records per-item samples exactly
    /// like the per-op path (an RMW contributes to both groups).
    pub fn run_batched_ops(
        &self,
        store: &dyn KvStore,
        clock: &SharedClock,
        rng: &mut SimRng,
        n: u64,
        batch: usize,
    ) {
        let batch = batch.max(1);
        let mut remaining = n;
        while remaining > 0 {
            let round = remaining.min(batch as u64);
            self.step_batch(store, rng, round as usize);
            remaining -= round;
            if !self.think.is_zero() {
                clock.sleep(self.think);
            }
        }
    }

    fn step_batch(&self, store: &dyn KvStore, rng: &mut SimRng, batch: usize) {
        let mut get_keys: Vec<String> = Vec::new();
        let mut put_items: Vec<(String, Bytes)> = Vec::new();
        for _ in 0..batch {
            let kind = self.spec.next_op(rng);
            let key = self.spec.next_key(rng);
            if matches!(kind, OpKind::Get | OpKind::Rmw) {
                get_keys.push(key.clone());
            }
            if matches!(kind, OpKind::Put | OpKind::Rmw) {
                let mut buf = vec![0u8; self.spec.value_bytes];
                rng.fill(&mut buf);
                put_items.push((key, Bytes::from(buf)));
            }
        }
        if !get_keys.is_empty() {
            let expected: Vec<u64> = get_keys.iter().map(|k| self.ledger.latest(k)).collect();
            for (want, r) in expected.into_iter().zip(store.kv_get_batch(&get_keys)) {
                self.record_get(want, r);
            }
        }
        if !put_items.is_empty() {
            for ((key, _), r) in put_items.iter().zip(store.kv_put_batch(&put_items)) {
                match r {
                    Ok(s) => {
                        self.put_rec.record(s.latency);
                        self.ledger.on_put(key, s.version);
                    }
                    Err(_) => {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        self.ops.fetch_add(batch as u64, Ordering::Relaxed);
    }

    fn record_get(&self, expected: u64, r: Result<OpSample, KvError>) {
        match r {
            Ok(s) => {
                self.get_rec.record(s.latency);
                if expected > 0 {
                    if Ledger::is_fresh(s.version, expected) {
                        self.fresh.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.stale.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) => {
                // Reading a key nobody has written yet is not an error of
                // interest for the workload.
                if !e.is_not_found() {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// One operation: draw kind + key, execute, record.
    pub fn step(&self, store: &dyn KvStore, rng: &mut SimRng) {
        let kind = self.spec.next_op(rng);
        let key = self.spec.next_key(rng);
        match kind {
            OpKind::Put => self.do_put(store, rng, &key),
            OpKind::Get => self.do_get(store, &key),
            OpKind::Rmw => {
                self.do_get(store, &key);
                self.do_put(store, rng, &key);
            }
        }
        self.ops.fetch_add(1, Ordering::Relaxed);
    }

    fn do_put(&self, store: &dyn KvStore, rng: &mut SimRng, key: &str) {
        let mut buf = vec![0u8; self.spec.value_bytes];
        rng.fill(&mut buf);
        match store.kv_put(key, Bytes::from(buf)) {
            Ok(s) => {
                self.put_rec.record(s.latency);
                self.ledger.on_put(key, s.version);
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn do_get(&self, store: &dyn KvStore, key: &str) {
        let expected = self.ledger.latest(key);
        self.record_get(expected, store.kv_get(key));
    }

    pub fn report(&self) -> DriverReport {
        DriverReport {
            ops: self.ops.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            put_latency: self.put_rec.summary(),
            get_latency: self.get_rec.summary(),
            fresh_reads: self.fresh.load(Ordering::Relaxed),
            stale_reads: self.stale.load(Ordering::Relaxed),
        }
    }

    /// Merge several drivers' reports (e.g. one per region).
    pub fn merged_report(drivers: &[Arc<ClientDriver>]) -> DriverReport {
        let mut put = wiera_sim::Histogram::new();
        let mut get = wiera_sim::Histogram::new();
        let mut ops = 0;
        let mut errors = 0;
        let mut fresh = 0;
        let mut stale = 0;
        for d in drivers {
            put.merge(&d.put_rec.snapshot());
            get.merge(&d.get_rec.snapshot());
            ops += d.ops.load(Ordering::Relaxed);
            errors += d.errors.load(Ordering::Relaxed);
            fresh += d.fresh.load(Ordering::Relaxed);
            stale += d.stale.load(Ordering::Relaxed);
        }
        DriverReport {
            ops,
            errors,
            put_latency: put.summary(),
            get_latency: get.summary(),
            fresh_reads: fresh,
            stale_reads: stale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use wiera_sim::ManualClock;

    /// A KvStore that stores locally but serves stale versions on demand.
    struct FakeStore {
        data: Mutex<HashMap<String, u64>>,
        lag: u64,
    }

    impl KvStore for FakeStore {
        fn kv_put(&self, key: &str, _value: Bytes) -> Result<OpSample, KvError> {
            let mut m = self.data.lock();
            let v = m.entry(key.to_string()).or_insert(0);
            *v += 1;
            Ok(OpSample {
                latency: SimDuration::from_millis(2),
                version: *v,
            })
        }

        fn kv_get(&self, key: &str) -> Result<OpSample, KvError> {
            let m = self.data.lock();
            match m.get(key) {
                Some(&v) => Ok(OpSample {
                    latency: SimDuration::from_millis(1),
                    version: v.saturating_sub(self.lag),
                }),
                None => Err(KvError::not_found(format!("object '{key}' not found"))),
            }
        }

        fn kv_get_value(&self, key: &str) -> Result<(Bytes, OpSample), KvError> {
            self.kv_get(key).map(|s| (Bytes::new(), s))
        }
    }

    #[test]
    fn driver_runs_mix_and_reports() {
        let clock: SharedClock = ManualClock::new();
        let store = FakeStore {
            data: Mutex::new(HashMap::new()),
            lag: 0,
        };
        let ledger = Arc::new(Ledger::new());
        let driver = ClientDriver::new(WorkloadSpec::ycsb_a(50, 32), ledger, SimDuration::ZERO);
        let mut rng = SimRng::new(1);
        driver.run_ops(&store, &clock, &mut rng, 500);
        let r = driver.report();
        assert_eq!(r.ops, 500);
        assert_eq!(r.errors, 0);
        assert!(r.put_latency.count > 150, "puts {}", r.put_latency.count);
        assert!(r.get_latency.count > 0);
        assert_eq!(r.stale_reads, 0, "no lag → no staleness");
    }

    #[test]
    fn staleness_detected_with_lagging_store() {
        let clock: SharedClock = ManualClock::new();
        let store = FakeStore {
            data: Mutex::new(HashMap::new()),
            lag: 1,
        };
        let ledger = Arc::new(Ledger::new());
        let driver = ClientDriver::new(WorkloadSpec::ycsb_a(10, 32), ledger, SimDuration::ZERO);
        let mut rng = SimRng::new(2);
        driver.run_ops(&store, &clock, &mut rng, 1000);
        let r = driver.report();
        assert!(r.stale_reads > 0, "lagging store must show stale reads");
        assert!(
            r.stale_fraction() > 0.5,
            "every versioned read lags: {}",
            r.stale_fraction()
        );
    }

    #[test]
    fn missing_keys_are_not_errors() {
        let clock: SharedClock = ManualClock::new();
        let store = FakeStore {
            data: Mutex::new(HashMap::new()),
            lag: 0,
        };
        let ledger = Arc::new(Ledger::new());
        // Read-only workload on an empty store: all gets miss.
        let driver = ClientDriver::new(WorkloadSpec::ycsb_c(10, 32), ledger, SimDuration::ZERO);
        let mut rng = SimRng::new(3);
        driver.run_ops(&store, &clock, &mut rng, 100);
        assert_eq!(driver.report().errors, 0);
    }

    #[test]
    fn batched_driving_matches_per_op_accounting() {
        let clock: SharedClock = ManualClock::new();
        let store = FakeStore {
            data: Mutex::new(HashMap::new()),
            lag: 0,
        };
        let ledger = Arc::new(Ledger::new());
        let driver = ClientDriver::new(WorkloadSpec::ycsb_a(50, 32), ledger, SimDuration::ZERO);
        let mut rng = SimRng::new(5);
        driver.run_batched_ops(&store, &clock, &mut rng, 500, 64);
        let r = driver.report();
        assert_eq!(r.ops, 500);
        assert_eq!(r.errors, 0, "missing keys must not count as errors");
        assert!(r.put_latency.count > 150, "puts {}", r.put_latency.count);
        assert!(r.get_latency.count > 0);
    }

    #[test]
    fn merged_report_combines() {
        let clock: SharedClock = ManualClock::new();
        let store = FakeStore {
            data: Mutex::new(HashMap::new()),
            lag: 0,
        };
        let ledger = Arc::new(Ledger::new());
        let d1 = ClientDriver::new(
            WorkloadSpec::ycsb_a(10, 32),
            ledger.clone(),
            SimDuration::ZERO,
        );
        let d2 = ClientDriver::new(WorkloadSpec::ycsb_a(10, 32), ledger, SimDuration::ZERO);
        let mut rng = SimRng::new(4);
        d1.run_ops(&store, &clock, &mut rng, 100);
        d2.run_ops(&store, &clock, &mut rng, 100);
        let merged = ClientDriver::merged_report(&[d1, d2]);
        assert_eq!(merged.ops, 200);
    }
}
