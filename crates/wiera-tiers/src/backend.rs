//! The live tier backend.
//!
//! A [`SimTier`] behaves like one storage service inside one DC: it stores
//! real bytes, charges modeled latency per operation (sampled from the
//! tier's [`TierSpec`]), enforces capacity (with LRU eviction for volatile
//! cache tiers, like Memcached does), applies IOPS token-bucket throttling
//! (Azure's 500-IOPS disk), meters cost, and supports the failure and
//! degradation injection the Wiera monitors react to.
//!
//! Operations return their modeled duration; callers (the Tiera instance)
//! decide whether to also sleep the scaled wall time.

use crate::cost::CostMeter;
use crate::spec::TierSpec;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wiera_sim::lockreg::TrackedRwLock;
use wiera_sim::{MetricsRegistry, SharedClock, SimDuration, SimInstant, SimRng};

/// Number of independently locked key partitions per tier.
const TIER_SHARDS: usize = 16;

/// Stable key → shard mapping (FNV-1a, endian-independent).
fn shard_of(key: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % TIER_SHARDS as u64) as usize
}

/// Errors a storage tier can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierError {
    /// Object absent.
    NotFound(String),
    /// Non-evicting tier has no room for the object.
    Full { capacity: u64, used: u64, need: u64 },
    /// Object larger than the whole tier.
    TooLarge { capacity: u64, need: u64 },
    /// Service is down (crash / maintenance injection).
    Down,
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::NotFound(k) => write!(f, "object '{k}' not found"),
            TierError::Full {
                capacity,
                used,
                need,
            } => {
                write!(f, "tier full: capacity={capacity} used={used} need={need}")
            }
            TierError::TooLarge { capacity, need } => {
                write!(f, "object ({need}B) exceeds tier capacity ({capacity}B)")
            }
            TierError::Down => write!(f, "tier is down"),
        }
    }
}

impl std::error::Error for TierError {}

pub type TierResult<T> = Result<T, TierError>;

/// Operation counters for one tier.
#[derive(Debug, Default)]
pub struct TierStats {
    pub puts: AtomicU64,
    pub gets: AtomicU64,
    pub deletes: AtomicU64,
    pub evictions: AtomicU64,
    pub cache_hits: AtomicU64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierStatsSnapshot {
    pub puts: u64,
    pub gets: u64,
    pub deletes: u64,
    pub evictions: u64,
    pub cache_hits: u64,
}

impl TierStats {
    pub fn snapshot(&self) -> TierStatsSnapshot {
        TierStatsSnapshot {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
        }
    }
}

struct Slot {
    data: Bytes,
    last_access: SimInstant,
}

/// One simulated storage service instance.
///
/// Since the hot-path overhaul the slot map is **sharded** ([`TIER_SHARDS`]
/// independently locked partitions) and `used` is maintained incrementally
/// with a compare-and-swap reservation per put — the pre-refactor code
/// re-summed every slot under one tier-wide lock on every put and delete,
/// which made the put path O(slots) and serialized all writers.
pub struct SimTier {
    spec: TierSpec,
    capacity: AtomicU64,
    clock: SharedClock,
    rng: Mutex<SimRng>,
    shards: Vec<TrackedRwLock<HashMap<Arc<str>, Slot>>>,
    used: AtomicU64,
    /// Token-bucket state for IOPS throttling: earliest time the next
    /// operation may start.
    next_free: Mutex<SimInstant>,
    /// Latency multiplier ≥ 1.0 for degradation injection.
    degraded: Mutex<f64>,
    down: AtomicBool,
    /// Runtime page-cache toggle (in addition to the spec's static flag):
    /// models freeing/consuming the VM's memory at run time.
    page_cache_on: AtomicBool,
    pub stats: TierStats,
    meter: CostMeter,
    /// Cached `{tier=<kind>}` label value for registry recording.
    kind_label: String,
}

impl SimTier {
    pub fn new(spec: TierSpec, capacity: u64, clock: SharedClock, seed: u64) -> Arc<Self> {
        let now = clock.now();
        let spec_page_cache = spec.page_cache;
        Arc::new(SimTier {
            rng: Mutex::new(SimRng::new(seed).child(&format!("tier:{}", spec.kind))),
            kind_label: spec.kind.to_string(),
            spec,
            capacity: AtomicU64::new(capacity),
            clock: clock.clone(),
            shards: (0..TIER_SHARDS)
                .map(|_| TrackedRwLock::new("tiers.slots", HashMap::new()))
                .collect(),
            used: AtomicU64::new(0),
            next_free: Mutex::new(now),
            degraded: Mutex::new(1.0),
            down: AtomicBool::new(false),
            page_cache_on: AtomicBool::new(spec_page_cache),
            stats: TierStats::default(),
            meter: CostMeter::new(now),
        })
    }

    pub fn spec(&self) -> &TierSpec {
        &self.spec
    }

    pub fn capacity(&self) -> u64 {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Enlarge the tier (the `grow` response from the Tiera vocabulary).
    pub fn grow(&self, by: u64) {
        self.capacity.fetch_add(by, Ordering::Relaxed);
    }

    /// Toggle the OS page cache at run time (the paper throttles VM memory
    /// to turn it off; freeing memory turns it back on).
    pub fn set_page_cache(&self, on: bool) {
        self.page_cache_on.store(on, Ordering::Relaxed);
    }

    pub fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    pub fn filled_fraction(&self) -> f64 {
        if self.capacity() == 0 {
            0.0
        } else {
            self.used_bytes() as f64 / self.capacity() as f64
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    pub fn meter(&self) -> &CostMeter {
        &self.meter
    }

    /// Sampled native latency for an op of `bytes`, including degradation.
    fn native_latency(&self, read: bool, bytes: u64) -> SimDuration {
        let dist = if read {
            &self.spec.get_latency
        } else {
            &self.spec.put_latency
        };
        let base = dist.sample(&mut self.rng.lock());
        let xfer =
            SimDuration::from_millis_f64(self.spec.per_mib_ms * bytes as f64 / (1024.0 * 1024.0));
        (base + xfer) * *self.degraded.lock()
    }

    /// Apply the IOPS token bucket; returns queueing delay.
    fn throttle(&self) -> SimDuration {
        let Some(iops) = self.spec.iops_cap else {
            return SimDuration::ZERO;
        };
        let gap = SimDuration::from_secs_f64(1.0 / iops.max(1e-9));
        let now = self.clock.now();
        let mut nf = self.next_free.lock();
        let start = if *nf > now { *nf } else { now };
        *nf = start + gap;
        let wait = start - now;
        if wait > SimDuration::ZERO {
            MetricsRegistry::global().observe(
                "tier_throttle_wait",
                &[("tier", &self.kind_label)],
                wait,
            );
        }
        wait
    }

    fn check_up(&self) -> TierResult<()> {
        if self.down.load(Ordering::Acquire) {
            Err(TierError::Down)
        } else {
            Ok(())
        }
    }

    /// Record one completed operation into the shared registry.
    fn note_op(&self, op: &str, lat: SimDuration) {
        let metrics = MetricsRegistry::global();
        let labels = [("tier", self.kind_label.as_str()), ("op", op)];
        metrics.inc("tier_ops_total", &labels);
        metrics.observe("tier_op_latency", &labels, lat);
    }

    fn note_capacity_rejection(&self) {
        MetricsRegistry::global().inc("tier_capacity_rejections", &[("tier", &self.kind_label)]);
    }

    /// Store an object (overwrite allowed). Returns modeled latency.
    ///
    /// Capacity is reserved with a compare-and-swap on the incremental
    /// `used` counter while the key's shard is locked (the overwritten
    /// slot's size cannot change underneath the reservation), so the path
    /// is O(1) in stored objects. When a volatile tier is over capacity the
    /// shard lock is released and globally-LRU victims are evicted one at a
    /// time — at most one shard lock is ever held.
    pub fn put(&self, key: &str, val: Bytes) -> TierResult<SimDuration> {
        self.check_up()?;
        let need = val.len() as u64;
        let capacity = self.capacity();
        if need > capacity {
            self.note_capacity_rejection();
            return Err(TierError::TooLarge { capacity, need });
        }
        let lat = self.throttle() + self.native_latency(false, need);
        let now = self.clock.now();
        let shard = shard_of(key);
        loop {
            let over = {
                let mut slots = self.shards[shard].write();
                let freed = slots.get(key).map(|s| s.data.len() as u64).unwrap_or(0);
                match self.try_reserve(freed, need, capacity) {
                    Ok(new_used) => {
                        slots.insert(
                            Arc::from(key),
                            Slot {
                                data: val,
                                last_access: now,
                            },
                        );
                        self.meter.set_bytes(new_used, now);
                        self.stats.puts.fetch_add(1, Ordering::Relaxed);
                        self.meter.note_put();
                        self.note_op("put", lat);
                        return Ok(lat);
                    }
                    Err(used) => used,
                }
            };
            // Over capacity. Durable tiers reject; volatile tiers evict the
            // globally least-recently-used object and retry (shard lock is
            // released first — eviction scans lock one shard at a time).
            if !self.spec.kind.volatile() || !self.evict_one_lru(key) {
                self.note_capacity_rejection();
                return Err(TierError::Full {
                    capacity,
                    used: over,
                    need,
                });
            }
        }
    }

    /// Atomically reserve `need - freed` bytes against `capacity`. Returns
    /// the new used total, or `Err(used excluding freed)` when it does not
    /// fit. Call with the shard owning `freed`'s slot locked.
    fn try_reserve(&self, freed: u64, need: u64, capacity: u64) -> Result<u64, u64> {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let without = cur - freed;
            if without + need > capacity {
                return Err(without);
            }
            match self.used.compare_exchange_weak(
                cur,
                without + need,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(without + need),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Evict the globally least-recently-used slot (excluding `protect`).
    /// Scans shards one at a time, then removes the victim under its own
    /// shard lock; never holds two shard locks. Returns false when there is
    /// nothing to evict.
    fn evict_one_lru(&self, protect: &str) -> bool {
        let mut victim: Option<(usize, Arc<str>, SimInstant)> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let slots = shard.read();
            for (k, s) in slots.iter() {
                if k.as_ref() == protect {
                    continue;
                }
                if victim
                    .as_ref()
                    .map(|(_, _, at)| s.last_access < *at)
                    .unwrap_or(true)
                {
                    victim = Some((i, k.clone(), s.last_access));
                }
            }
        }
        let Some((i, vk, _)) = victim else {
            return false;
        };
        let mut slots = self.shards[i].write();
        if let Some(slot) = slots.remove(&vk) {
            self.used
                .fetch_sub(slot.data.len() as u64, Ordering::Relaxed);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            // Lost a race: someone else removed it; report progress anyway
            // so the caller re-checks capacity.
            true
        }
    }

    /// Fetch an object. Returns the bytes and modeled latency.
    pub fn get(&self, key: &str) -> TierResult<(Bytes, SimDuration)> {
        self.check_up()?;
        let now = self.clock.now();
        let data = {
            let mut slots = self.shards[shard_of(key)].write();
            let slot = slots
                .get_mut(key)
                .ok_or_else(|| TierError::NotFound(key.into()))?;
            slot.last_access = now;
            slot.data.clone()
        };
        let lat = if self.page_cache_on.load(Ordering::Relaxed) {
            self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.spec.cache_hit_latency.sample(&mut self.rng.lock())
        } else {
            self.throttle() + self.native_latency(true, data.len() as u64)
        };
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        self.meter.note_get();
        self.note_op("get", lat);
        Ok((data, lat))
    }

    /// Remove an object. Removing a missing key is not an error (idempotent,
    /// like S3 DELETE).
    pub fn delete(&self, key: &str) -> TierResult<SimDuration> {
        self.check_up()?;
        let now = self.clock.now();
        {
            let mut slots = self.shards[shard_of(key)].write();
            if let Some(slot) = slots.remove(key) {
                let new_used = self
                    .used
                    .fetch_sub(slot.data.len() as u64, Ordering::Relaxed)
                    - slot.data.len() as u64;
                self.meter.set_bytes(new_used, now);
            }
        }
        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        let lat = self.native_latency(false, 0) * 0.5;
        self.note_op("delete", lat);
        Ok(lat)
    }

    pub fn contains(&self, key: &str) -> bool {
        self.shards[shard_of(key)].read().contains_key(key)
    }

    /// Keys currently stored (unordered).
    pub fn keys(&self) -> Vec<Arc<str>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.read().keys().cloned());
        }
        out
    }

    /// Modeled time the object at `key` was last read or written.
    pub fn last_access(&self, key: &str) -> Option<SimInstant> {
        self.shards[shard_of(key)]
            .read()
            .get(key)
            .map(|s| s.last_access)
    }

    // ---- failure / degradation injection ---------------------------------

    /// Take the service down (ops fail with [`TierError::Down`]). Volatile
    /// tiers lose their contents, like a crashed Memcached node.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Release);
        if down && self.spec.kind.volatile() {
            self.wipe();
        }
    }

    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    /// Multiply all native latencies by `factor` (≥ 1.0): a "poorly
    /// performing data tier" for dynamic policies to react to.
    pub fn set_degraded(&self, factor: f64) {
        *self.degraded.lock() = factor.max(1.0);
    }

    /// Drop all contents (volatile-tier crash, or test reset). Shards are
    /// cleared one at a time; `used` shrinks by exactly the bytes freed so
    /// concurrent puts keep accurate accounting.
    pub fn wipe(&self) {
        let now = self.clock.now();
        for shard in &self.shards {
            let mut slots = shard.write();
            let freed: u64 = slots.values().map(|s| s.data.len() as u64).sum();
            slots.clear();
            drop(slots);
            self.used.fetch_sub(freed, Ordering::Relaxed);
        }
        self.meter.set_bytes(self.used.load(Ordering::Relaxed), now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::TierKind;
    use wiera_sim::{Clock, ManualClock};

    fn mem(capacity: u64) -> Arc<SimTier> {
        SimTier::new(
            TierSpec::of(TierKind::Memcached),
            capacity,
            ManualClock::new(),
            1,
        )
    }

    fn ssd(capacity: u64) -> Arc<SimTier> {
        SimTier::new(
            TierSpec::of(TierKind::EbsSsd),
            capacity,
            ManualClock::new(),
            1,
        )
    }

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![0xABu8; n])
    }

    #[test]
    fn put_get_roundtrip() {
        let t = ssd(1 << 20);
        let lat = t.put("k1", payload(4096)).unwrap();
        assert!(lat > SimDuration::ZERO);
        let (data, glat) = t.get("k1").unwrap();
        assert_eq!(data.len(), 4096);
        assert!(glat > SimDuration::ZERO);
        assert_eq!(t.used_bytes(), 4096);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_missing_is_not_found() {
        let t = ssd(1 << 20);
        assert!(matches!(t.get("nope"), Err(TierError::NotFound(_))));
    }

    #[test]
    fn overwrite_replaces_and_accounts() {
        let t = ssd(1 << 20);
        t.put("k", payload(1000)).unwrap();
        t.put("k", payload(500)).unwrap();
        assert_eq!(t.used_bytes(), 500);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_is_idempotent() {
        let t = ssd(1 << 20);
        t.put("k", payload(100)).unwrap();
        t.delete("k").unwrap();
        assert_eq!(t.used_bytes(), 0);
        t.delete("k").unwrap(); // no error
        assert!(!t.contains("k"));
    }

    #[test]
    fn durable_tier_rejects_when_full() {
        let t = ssd(1000);
        t.put("a", payload(800)).unwrap();
        match t.put("b", payload(400)) {
            Err(TierError::Full { used, need, .. }) => {
                assert_eq!(used, 800);
                assert_eq!(need, 400);
            }
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn oversized_object_rejected() {
        let t = ssd(1000);
        assert!(matches!(
            t.put("a", payload(2000)),
            Err(TierError::TooLarge { .. })
        ));
    }

    #[test]
    fn volatile_tier_evicts_lru() {
        let clock = ManualClock::new();
        let t = SimTier::new(TierSpec::of(TierKind::Memcached), 1000, clock.clone(), 1);
        t.put("old", payload(400)).unwrap();
        clock.advance(SimDuration::from_secs(1));
        t.put("newer", payload(400)).unwrap();
        clock.advance(SimDuration::from_secs(1));
        // Touch "old" so "newer" becomes the LRU victim.
        t.get("old").unwrap();
        clock.advance(SimDuration::from_secs(1));
        t.put("third", payload(400)).unwrap();
        assert!(t.contains("old"));
        assert!(!t.contains("newer"), "LRU victim should be evicted");
        assert!(t.contains("third"));
        assert_eq!(t.stats.snapshot().evictions, 1);
    }

    #[test]
    fn latency_ordering_matches_fig9() {
        let clock = ManualClock::new();
        let mk = |k: TierKind| SimTier::new(TierSpec::of(k), 1 << 30, clock.clone(), 7);
        let tiers = [
            mk(TierKind::EbsSsd),
            mk(TierKind::EbsHdd),
            mk(TierKind::S3),
            mk(TierKind::S3Ia),
        ];
        let mut means = Vec::new();
        for t in &tiers {
            let mut total = SimDuration::ZERO;
            for i in 0..200 {
                let key = format!("k{i}");
                t.put(&key, payload(4096)).unwrap();
                let (_, lat) = t.get(&key).unwrap();
                total += lat;
            }
            means.push(total.as_millis_f64() / 200.0);
        }
        assert!(means[0] < means[1], "SSD {} < HDD {}", means[0], means[1]);
        assert!(means[1] < means[2], "HDD {} < S3 {}", means[1], means[2]);
        assert!(
            means[2] <= means[3] * 1.2,
            "S3 {} ~<= S3-IA {}",
            means[2],
            means[3]
        );
    }

    #[test]
    fn page_cache_short_circuits_reads() {
        let clock = ManualClock::new();
        let spec = TierSpec::of(TierKind::EbsHdd).with_page_cache(true);
        let t = SimTier::new(spec, 1 << 20, clock, 3);
        t.put("k", payload(4096)).unwrap();
        let (_, lat) = t.get("k").unwrap();
        assert!(
            lat.as_millis_f64() < 1.0,
            "cached read {lat} should be <1ms"
        );
        assert_eq!(t.stats.snapshot().cache_hits, 1);
    }

    #[test]
    fn iops_cap_throttles_throughput() {
        let clock = ManualClock::new();
        let t = SimTier::new(TierSpec::of(TierKind::AzureDisk), 1 << 30, clock.clone(), 5);
        // Issue 100 back-to-back ops at the same modeled instant: the token
        // bucket must spread them at 1/500s intervals, so total queue delay
        // for the Nth op approaches N * 2ms.
        let mut last = SimDuration::ZERO;
        for i in 0..100 {
            let lat = t.put(&format!("k{i}"), payload(128)).unwrap();
            last = lat;
        }
        // 99 ops ahead in the queue → ≥ 99 * 2ms of queueing.
        assert!(last.as_millis_f64() > 99.0 * 2.0, "100th op latency {last}");
    }

    #[test]
    fn down_tier_fails_and_volatile_loses_data() {
        let t = mem(1 << 20);
        t.put("k", payload(10)).unwrap();
        t.set_down(true);
        assert!(matches!(t.get("k"), Err(TierError::Down)));
        assert!(matches!(t.put("x", payload(1)), Err(TierError::Down)));
        t.set_down(false);
        assert!(!t.contains("k"), "memcached crash loses contents");
    }

    #[test]
    fn durable_tier_survives_downtime() {
        let t = ssd(1 << 20);
        t.put("k", payload(10)).unwrap();
        t.set_down(true);
        t.set_down(false);
        assert!(t.contains("k"));
    }

    #[test]
    fn degradation_multiplies_latency() {
        let t = ssd(1 << 20);
        t.put("k", payload(4096)).unwrap();
        let (_, base) = t.get("k").unwrap();
        t.set_degraded(10.0);
        let (_, slow) = t.get("k").unwrap();
        assert!(
            slow.as_millis_f64() > base.as_millis_f64() * 3.0,
            "{base} -> {slow}"
        );
    }

    #[test]
    fn filled_fraction_tracks_usage() {
        let t = ssd(1000);
        assert_eq!(t.filled_fraction(), 0.0);
        t.put("a", payload(500)).unwrap();
        assert!((t.filled_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn meter_counts_requests() {
        let clock = ManualClock::new();
        let t = SimTier::new(TierSpec::of(TierKind::S3), 1 << 20, clock.clone(), 1);
        t.put("k", payload(10)).unwrap();
        t.get("k").unwrap();
        t.get("k").unwrap();
        let u = t.meter().usage(clock.now());
        assert_eq!(u.puts, 1);
        assert_eq!(u.gets, 2);
    }

    #[test]
    fn last_access_updates_on_get() {
        let clock = ManualClock::new();
        let t = SimTier::new(TierSpec::of(TierKind::EbsSsd), 1 << 20, clock.clone(), 1);
        t.put("k", payload(10)).unwrap();
        let t1 = t.last_access("k").unwrap();
        clock.advance(SimDuration::from_hours(5));
        t.get("k").unwrap();
        let t2 = t.last_access("k").unwrap();
        assert_eq!(t2.elapsed_since(t1), SimDuration::from_hours(5));
        assert_eq!(t.last_access("missing"), None);
    }
}
