//! Per-kind performance model.
//!
//! Latency constants are calibrated so that the Fig. 9 experiment (4 KB
//! operations against each tier from within US-East) reproduces the paper's
//! ordering and rough magnitudes: EBS-SSD fastest among durable tiers,
//! EBS-HDD in between, S3 slowest, S3-IA like S3 with pricier requests —
//! and "<1 ms regardless of EBS type" when the OS page cache is warm.

use crate::cost::CostSpec;
use crate::kind::TierKind;
use serde::{Deserialize, Serialize};
use wiera_sim::LatencyDist;

/// Performance + cost model for one tier kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TierSpec {
    pub kind: TierKind,
    /// Per-operation latency for reads (excludes size-dependent transfer).
    pub get_latency: LatencyDist,
    /// Per-operation latency for writes.
    pub put_latency: LatencyDist,
    /// Size-dependent cost, milliseconds per MiB transferred.
    pub per_mib_ms: f64,
    /// Hard cap on operations per second (token-bucket), if the service
    /// throttles — Azure disks are capped at 500 IOPS (§5.4.1 / Fig. 11).
    pub iops_cap: Option<f64>,
    /// When true, reads served from the OS page cache short-circuit the
    /// native latency. The paper disables this with O_DIRECT for SysBench
    /// and MySQL, and notes "<1 ms regardless of EBS type" when it is on.
    pub page_cache: bool,
    /// Latency of a page-cache hit.
    pub cache_hit_latency: LatencyDist,
    pub cost: CostSpec,
}

impl TierSpec {
    /// The calibrated default model for a tier kind.
    pub fn of(kind: TierKind) -> TierSpec {
        let (get_ms, put_ms, per_mib_ms, iops_cap) = match kind {
            // In-memory: sub-millisecond, fast transfer.
            TierKind::Memcached => (0.35, 0.35, 2.0, None),
            // EBS gp2: ~1.5 ms native access, 125 MiB/s.
            TierKind::EbsSsd => (1.5, 1.8, 8.0, None),
            // EBS magnetic: ~9 ms seek-bound.
            TierKind::EbsHdd => (9.0, 10.0, 12.0, None),
            // S3: tens of ms per request.
            TierKind::S3 => (24.0, 38.0, 25.0, None),
            // S3-IA: same service path as S3, slightly slower.
            TierKind::S3Ia => (28.0, 42.0, 25.0, None),
            // Glacier: puts are S3-like, retrieval takes hours.
            TierKind::Glacier => (3.5 * 3600.0 * 1000.0, 45.0, 25.0, None),
            // Azure local disk: SSD-class latency, hard 500 IOPS cap.
            TierKind::AzureDisk => (1.6, 1.9, 8.0, Some(500.0)),
            // Azure Blob: S3-class.
            TierKind::AzureBlob => (26.0, 40.0, 25.0, None),
        };
        TierSpec {
            kind,
            get_latency: LatencyDist::storage(get_ms),
            put_latency: LatencyDist::storage(put_ms),
            per_mib_ms,
            iops_cap,
            page_cache: false,
            cache_hit_latency: LatencyDist::storage(0.2),
            cost: CostSpec::of(kind),
        }
    }

    /// Enable the OS page cache (the default EBS behaviour when the VM has
    /// free memory; the paper's experiments throttle memory to disable it).
    pub fn with_page_cache(mut self, enabled: bool) -> Self {
        self.page_cache = enabled;
        self
    }

    /// Typical (median) latency for a `bytes`-sized read, ignoring caching
    /// and throttling. Used for documentation and planning, not simulation.
    pub fn typical_get_ms(&self, bytes: u64) -> f64 {
        self.get_latency.typical_ms() + self.per_mib_ms * bytes as f64 / (1024.0 * 1024.0)
    }

    pub fn typical_put_ms(&self, bytes: u64) -> f64 {
        self.put_latency.typical_ms() + self.per_mib_ms * bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 9's ordering: SSD < HDD < S3 ≤ S3-IA for 4 KB operations.
    #[test]
    fn fig9_latency_ordering() {
        let b = 4096;
        let ssd = TierSpec::of(TierKind::EbsSsd).typical_get_ms(b);
        let hdd = TierSpec::of(TierKind::EbsHdd).typical_get_ms(b);
        let s3 = TierSpec::of(TierKind::S3).typical_get_ms(b);
        let s3ia = TierSpec::of(TierKind::S3Ia).typical_get_ms(b);
        assert!(
            ssd < hdd && hdd < s3 && s3 <= s3ia,
            "{ssd} {hdd} {s3} {s3ia}"
        );
    }

    #[test]
    fn memcached_is_fastest() {
        let b = 4096;
        let mem = TierSpec::of(TierKind::Memcached).typical_get_ms(b);
        for k in TierKind::ALL {
            if k != TierKind::Memcached {
                assert!(mem < TierSpec::of(k).typical_get_ms(b), "{k}");
            }
        }
    }

    #[test]
    fn glacier_reads_take_hours() {
        let g = TierSpec::of(TierKind::Glacier);
        assert!(g.typical_get_ms(4096) > 3600.0 * 1000.0);
        // but writes are cheap
        assert!(g.typical_put_ms(4096) < 100.0);
    }

    #[test]
    fn azure_disk_is_capped_at_500_iops() {
        assert_eq!(TierSpec::of(TierKind::AzureDisk).iops_cap, Some(500.0));
        assert_eq!(TierSpec::of(TierKind::EbsSsd).iops_cap, None);
    }

    #[test]
    fn page_cache_hit_is_submillisecond() {
        let s = TierSpec::of(TierKind::EbsSsd).with_page_cache(true);
        assert!(s.page_cache);
        assert!(s.cache_hit_latency.typical_ms() < 1.0);
    }

    #[test]
    fn transfer_component_scales() {
        let s = TierSpec::of(TierKind::S3);
        let small = s.typical_get_ms(4096);
        let big = s.typical_get_ms(100 * 1024 * 1024);
        assert!(big > small + 2000.0, "100MiB from S3 should add seconds");
    }
}
