//! The storage-tier vocabulary used across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A cloud storage service kind. One [`crate::SimTier`] instantiates one of
/// these inside a particular data center.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TierKind {
    /// ElastiCache / Memcached: in-memory, volatile, fastest.
    Memcached,
    /// EBS gp2 (general-purpose SSD).
    EbsSsd,
    /// EBS magnetic (HDD).
    EbsHdd,
    /// S3 standard object storage.
    S3,
    /// S3 Infrequent Access: cheapest always-online storage, priciest requests.
    S3Ia,
    /// Glacier: archival; retrievals take hours.
    Glacier,
    /// Azure VM local disk (throttled to 500 IOPS regardless of VM size, §5.4.1).
    AzureDisk,
    /// Azure Blob storage (S3 analogue, for cross-provider policies).
    AzureBlob,
}

impl TierKind {
    pub const ALL: [TierKind; 8] = [
        TierKind::Memcached,
        TierKind::EbsSsd,
        TierKind::EbsHdd,
        TierKind::S3,
        TierKind::S3Ia,
        TierKind::Glacier,
        TierKind::AzureDisk,
        TierKind::AzureBlob,
    ];

    /// Does the tier lose its contents when the hosting VM dies?
    pub fn volatile(self) -> bool {
        matches!(self, TierKind::Memcached)
    }

    /// Durability as "number of nines" (9 → 99.999999999%).
    pub fn durability_nines(self) -> u8 {
        match self {
            TierKind::Memcached => 0,
            TierKind::EbsSsd | TierKind::EbsHdd | TierKind::AzureDisk => 5,
            TierKind::S3 | TierKind::S3Ia | TierKind::AzureBlob => 11,
            TierKind::Glacier => 11,
        }
    }

    /// Archival tiers are excluded from synchronous read paths.
    pub fn archival(self) -> bool {
        matches!(self, TierKind::Glacier)
    }

    pub fn name(self) -> &'static str {
        match self {
            TierKind::Memcached => "Memcached",
            TierKind::EbsSsd => "EBS-SSD",
            TierKind::EbsHdd => "EBS-HDD",
            TierKind::S3 => "S3",
            TierKind::S3Ia => "S3-IA",
            TierKind::Glacier => "Glacier",
            TierKind::AzureDisk => "AzureDisk",
            TierKind::AzureBlob => "AzureBlob",
        }
    }
}

impl fmt::Display for TierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl FromStr for TierKind {
    type Err = String;

    /// Parse the names used in policy specifications. Accepts both this
    /// crate's canonical names and the aliases the paper's figures use
    /// (`LocalMemory`, `LocalDisk`, `CheapestArchival`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase().replace(['-', '_'], "");
        Ok(match norm.as_str() {
            "memcached" | "elasticache" | "localmemory" | "memory" => TierKind::Memcached,
            "ebsssd" | "ebs" | "ssd" | "localdisk" | "disk" => TierKind::EbsSsd,
            "ebshdd" | "hdd" | "magnetic" => TierKind::EbsHdd,
            "s3" => TierKind::S3,
            "s3ia" | "s3infrequent" => TierKind::S3Ia,
            "glacier" | "cheapestarchival" | "archival" => TierKind::Glacier,
            "azuredisk" => TierKind::AzureDisk,
            "azureblob" => TierKind::AzureBlob,
            _ => return Err(format!("unknown storage tier '{s}'")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_memory_is_volatile() {
        for k in TierKind::ALL {
            assert_eq!(k.volatile(), k == TierKind::Memcached, "{k}");
        }
    }

    #[test]
    fn object_stores_are_most_durable() {
        assert!(TierKind::S3.durability_nines() > TierKind::EbsSsd.durability_nines());
        assert!(TierKind::EbsSsd.durability_nines() > TierKind::Memcached.durability_nines());
    }

    #[test]
    fn parse_canonical_and_paper_aliases() {
        assert_eq!(
            "Memcached".parse::<TierKind>().unwrap(),
            TierKind::Memcached
        );
        assert_eq!(
            "LocalMemory".parse::<TierKind>().unwrap(),
            TierKind::Memcached
        );
        assert_eq!("LocalDisk".parse::<TierKind>().unwrap(), TierKind::EbsSsd);
        assert_eq!("EBS".parse::<TierKind>().unwrap(), TierKind::EbsSsd);
        assert_eq!("S3-IA".parse::<TierKind>().unwrap(), TierKind::S3Ia);
        assert_eq!(
            "CheapestArchival".parse::<TierKind>().unwrap(),
            TierKind::Glacier
        );
        assert!("floppy".parse::<TierKind>().is_err());
    }

    #[test]
    fn glacier_is_archival() {
        assert!(TierKind::Glacier.archival());
        assert!(!TierKind::S3Ia.archival());
    }
}
