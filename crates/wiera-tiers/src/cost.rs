//! Cloud pricing — Table 4 and the §5.3 cost arithmetic.
//!
//! Prices are the paper's Table 4 (AWS US-East, 2016) plus the Glacier and
//! ElastiCache prices the text alludes to. All rates are US dollars.

use crate::kind::TierKind;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use wiera_sim::SimInstant;

/// Hours in a billing month (AWS convention ≈ 730).
pub const HOURS_PER_MONTH: f64 = 730.0;

/// Price book entry for one tier kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostSpec {
    /// $/GB-month of provisioned or stored data.
    pub storage_gb_month: f64,
    /// $ per 10,000 put requests.
    pub put_per_10k: f64,
    /// $ per 10,000 get requests.
    pub get_per_10k: f64,
    /// $/GB of traffic leaving the cloud to the Internet.
    pub egress_internet_gb: f64,
    /// $/GB of traffic between DCs of the same provider ("$0.02 between AWS").
    pub egress_inter_dc_gb: f64,
    /// $/hour for instance-based services (ElastiCache nodes).
    pub node_hour: f64,
}

impl CostSpec {
    /// Table 4 prices (AWS US-East) with the text's additions.
    pub fn of(kind: TierKind) -> CostSpec {
        let (storage, put10k, get10k, node_hour) = match kind {
            // ElastiCache cache.t2.micro-class node.
            TierKind::Memcached => (0.0, 0.0, 0.0, 0.017),
            TierKind::EbsSsd => (0.10, 0.0, 0.0, 0.0),
            TierKind::EbsHdd => (0.05, 0.0005, 0.0005, 0.0),
            TierKind::S3 => (0.03, 0.05, 0.004, 0.0),
            TierKind::S3Ia => (0.0125, 0.10, 0.01, 0.0),
            TierKind::Glacier => (0.007, 0.05, 0.004, 0.0),
            TierKind::AzureDisk => (0.10, 0.0, 0.0, 0.0),
            TierKind::AzureBlob => (0.024, 0.05, 0.004, 0.0),
        };
        CostSpec {
            storage_gb_month: storage,
            put_per_10k: put10k,
            get_per_10k: get10k,
            egress_internet_gb: 0.09,
            egress_inter_dc_gb: 0.02,
            node_hour,
        }
    }

    /// Monthly cost of holding `gb` gigabytes in this tier.
    pub fn monthly_storage(&self, gb: f64) -> f64 {
        self.storage_gb_month * gb
    }

    pub fn request_cost(&self, puts: u64, gets: u64) -> f64 {
        self.put_per_10k * puts as f64 / 10_000.0 + self.get_per_10k * gets as f64 / 10_000.0
    }
}

/// One row of the regenerated Table 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PriceRow {
    pub tier: TierKind,
    pub storage_gb_month: f64,
    pub put_per_10k: f64,
    pub get_per_10k: f64,
    pub network_within_dc_gb: f64,
    pub network_to_internet_gb: f64,
}

/// Regenerate Table 4 (the four tiers the paper tabulates).
pub fn price_table() -> Vec<PriceRow> {
    [
        TierKind::EbsSsd,
        TierKind::EbsHdd,
        TierKind::S3,
        TierKind::S3Ia,
    ]
    .into_iter()
    .map(|tier| {
        let c = CostSpec::of(tier);
        PriceRow {
            tier,
            storage_gb_month: c.storage_gb_month,
            put_per_10k: c.put_per_10k,
            get_per_10k: c.get_per_10k,
            network_within_dc_gb: 0.0,
            network_to_internet_gb: c.egress_internet_gb,
        }
    })
    .collect()
}

/// Accumulated usage for one tier instance, integrated over modeled time.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Usage {
    pub gb_hours: f64,
    pub puts: u64,
    pub gets: u64,
    pub egress_internet_bytes: u64,
    pub egress_inter_dc_bytes: u64,
    pub node_hours: f64,
}

/// Thread-safe usage meter. The backend reports byte-holdings over time and
/// request counts; the replication layer reports egress.
pub struct CostMeter {
    state: Mutex<MeterState>,
}

struct MeterState {
    usage: Usage,
    current_bytes: u64,
    last_at: SimInstant,
}

impl CostMeter {
    pub fn new(start: SimInstant) -> Self {
        CostMeter {
            state: Mutex::new(MeterState {
                usage: Usage::default(),
                current_bytes: 0,
                last_at: start,
            }),
        }
    }

    fn integrate(s: &mut MeterState, now: SimInstant) {
        let dt_hours = now.elapsed_since(s.last_at).as_secs_f64() / 3600.0;
        s.usage.gb_hours += s.current_bytes as f64 / 1e9 * dt_hours;
        s.usage.node_hours += dt_hours;
        s.last_at = now;
    }

    /// Record that the tier now holds `bytes` (integrates the previous level
    /// over the elapsed modeled time first).
    pub fn set_bytes(&self, bytes: u64, now: SimInstant) {
        let mut s = self.state.lock();
        Self::integrate(&mut s, now);
        s.current_bytes = bytes;
    }

    pub fn note_put(&self) {
        self.state.lock().usage.puts += 1;
    }

    pub fn note_get(&self) {
        self.state.lock().usage.gets += 1;
    }

    pub fn note_egress(&self, bytes: u64, to_internet: bool) {
        let mut s = self.state.lock();
        if to_internet {
            s.usage.egress_internet_bytes += bytes;
        } else {
            s.usage.egress_inter_dc_bytes += bytes;
        }
    }

    /// Snapshot usage up to `now`.
    pub fn usage(&self, now: SimInstant) -> Usage {
        let mut s = self.state.lock();
        Self::integrate(&mut s, now);
        s.usage.clone()
    }

    /// Bill the accumulated usage against a price book entry.
    pub fn report(&self, spec: &CostSpec, now: SimInstant) -> CostReport {
        let u = self.usage(now);
        CostReport::from_usage(&u, spec)
    }
}

/// A bill: dollars per component plus the projected monthly run-rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostReport {
    pub storage: f64,
    pub requests: f64,
    pub egress: f64,
    pub nodes: f64,
    pub total: f64,
    /// Total extrapolated to a 730-hour month at the observed run-rate.
    pub monthly_run_rate: f64,
    pub elapsed_hours: f64,
}

impl CostReport {
    pub fn from_usage(u: &Usage, spec: &CostSpec) -> CostReport {
        let storage = u.gb_hours / HOURS_PER_MONTH * spec.storage_gb_month;
        let requests = spec.request_cost(u.puts, u.gets);
        let egress = u.egress_internet_bytes as f64 / 1e9 * spec.egress_internet_gb
            + u.egress_inter_dc_bytes as f64 / 1e9 * spec.egress_inter_dc_gb;
        let nodes = u.node_hours * spec.node_hour;
        let total = storage + requests + egress + nodes;
        let monthly = if u.node_hours > 0.0 {
            total / u.node_hours * HOURS_PER_MONTH
        } else {
            0.0
        };
        CostReport {
            storage,
            requests,
            egress,
            nodes,
            total,
            monthly_run_rate: monthly,
            elapsed_hours: u.node_hours,
        }
    }
}

/// Pure arithmetic behind §5.3: cost of keeping `gb` in `kind` for a month.
pub fn monthly_cost_gb(kind: TierKind, gb: f64) -> f64 {
    CostSpec::of(kind).monthly_storage(gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiera_sim::SimDuration;

    #[test]
    fn table4_values_match_paper() {
        let t = price_table();
        let row = |k: TierKind| t.iter().find(|r| r.tier == k).unwrap().clone();
        let ssd = row(TierKind::EbsSsd);
        assert_eq!(ssd.storage_gb_month, 0.10);
        assert_eq!(ssd.put_per_10k, 0.0);
        let hdd = row(TierKind::EbsHdd);
        assert_eq!(hdd.storage_gb_month, 0.05);
        assert_eq!(hdd.put_per_10k, 0.0005);
        let s3 = row(TierKind::S3);
        assert_eq!(s3.storage_gb_month, 0.03);
        assert_eq!(s3.put_per_10k, 0.05);
        assert_eq!(s3.get_per_10k, 0.004);
        let ia = row(TierKind::S3Ia);
        assert_eq!(ia.storage_gb_month, 0.0125);
        assert_eq!(ia.put_per_10k, 0.10);
        assert_eq!(ia.get_per_10k, 0.01);
        for r in &t {
            assert_eq!(r.network_within_dc_gb, 0.0);
            assert_eq!(r.network_to_internet_gb, 0.09);
        }
    }

    /// §5.3: moving 8 TB of a 10 TB dataset from EBS to S3-IA saves ≈$700/mo
    /// (SSD) or ≈$300/mo (HDD) per instance.
    #[test]
    fn sec53_savings_arithmetic() {
        let cold_gb = 8000.0;
        let ssd_saving =
            monthly_cost_gb(TierKind::EbsSsd, cold_gb) - monthly_cost_gb(TierKind::S3Ia, cold_gb);
        let hdd_saving =
            monthly_cost_gb(TierKind::EbsHdd, cold_gb) - monthly_cost_gb(TierKind::S3Ia, cold_gb);
        assert!((ssd_saving - 700.0).abs() < 1.0, "ssd saving {ssd_saving}");
        assert!((hdd_saving - 300.0).abs() < 1.0, "hdd saving {hdd_saving}");
        // Dropping one 8 TB S3-IA replica saves ≈$100/region.
        let replica = monthly_cost_gb(TierKind::S3Ia, cold_gb);
        assert!((replica - 100.0).abs() < 1.0, "replica {replica}");
    }

    #[test]
    fn meter_integrates_storage_over_time() {
        let t0 = SimInstant::EPOCH;
        let m = CostMeter::new(t0);
        m.set_bytes(100e9 as u64, t0); // 100 GB from t0
        let now = t0 + SimDuration::from_hours(730);
        let u = m.usage(now);
        assert!((u.gb_hours - 100.0 * 730.0).abs() < 1.0);
        let spec = CostSpec::of(TierKind::EbsSsd);
        let bill = CostReport::from_usage(&u, &spec);
        assert!(
            (bill.storage - 10.0).abs() < 0.01,
            "100GB-month of SSD = $10, got {}",
            bill.storage
        );
    }

    #[test]
    fn meter_request_and_egress_billing() {
        let t0 = SimInstant::EPOCH;
        let m = CostMeter::new(t0);
        for _ in 0..20_000 {
            m.note_put();
        }
        for _ in 0..10_000 {
            m.note_get();
        }
        m.note_egress(5e9 as u64, true);
        m.note_egress(10e9 as u64, false);
        let spec = CostSpec::of(TierKind::S3);
        let bill = m.report(&spec, t0 + SimDuration::from_hours(1));
        assert!((bill.requests - (2.0 * 0.05 + 0.004)).abs() < 1e-9);
        assert!((bill.egress - (5.0 * 0.09 + 10.0 * 0.02)).abs() < 1e-9);
    }

    #[test]
    fn meter_level_changes_integrate_piecewise() {
        let t0 = SimInstant::EPOCH;
        let m = CostMeter::new(t0);
        m.set_bytes(10e9 as u64, t0);
        m.set_bytes(20e9 as u64, t0 + SimDuration::from_hours(10));
        let u = m.usage(t0 + SimDuration::from_hours(20));
        // 10 GB for 10 h + 20 GB for 10 h = 300 GB-hours.
        assert!((u.gb_hours - 300.0).abs() < 0.5, "{}", u.gb_hours);
    }

    #[test]
    fn memcached_bills_by_node_hour() {
        let t0 = SimInstant::EPOCH;
        let m = CostMeter::new(t0);
        let spec = CostSpec::of(TierKind::Memcached);
        let bill = m.report(&spec, t0 + SimDuration::from_hours(100));
        assert!((bill.nodes - 1.7).abs() < 0.01);
        assert_eq!(bill.storage, 0.0);
    }
}
