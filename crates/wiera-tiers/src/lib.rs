#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Simulated cloud storage tiers.
//!
//! The paper composes real cloud storage services — ElastiCache/Memcached,
//! EBS (SSD and HDD), S3, S3-Infrequent-Access, Glacier, and Azure local
//! disks — each with its own latency, durability, price, and throttling
//! behaviour. This crate reproduces those services as in-process backends
//! whose *characteristics* are calibrated to the paper's own measurements
//! (Fig. 9 latencies, Table 4 prices, Azure's 500-IOPS disk cap in Fig. 11):
//!
//! * [`kind`] — the tier vocabulary ([`TierKind`]).
//! * [`spec`] — per-kind performance/durability model ([`TierSpec`]),
//!   including the OS-page-cache effect the paper notes for EBS.
//! * [`cost`] — Table 4's price book, a running [`CostMeter`], and the pure
//!   [`cost::monthly_cost_gb`] arithmetic behind the §5.3 savings claims.
//! * [`backend`] — [`SimTier`], the live backend: stores real bytes, samples
//!   modeled latencies, enforces capacity and IOPS caps, meters cost, and
//!   supports failure/degradation injection.

pub mod backend;
pub mod cost;
pub mod kind;
pub mod spec;

pub use backend::{SimTier, TierError, TierResult, TierStats};
pub use cost::{CostMeter, CostReport, CostSpec};
pub use kind::TierKind;
pub use spec::TierSpec;
