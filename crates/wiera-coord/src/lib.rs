#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Coordination service — the ZooKeeper + Curator stand-in.
//!
//! Wiera relies on ZooKeeper (accessed through Curator's lock recipe) for the
//! *global lock* taken on a key before a MultiPrimaries update is broadcast
//! (§4.2), with the coordinator co-located with Wiera in US-East. This crate
//! reproduces exactly the slice of ZooKeeper semantics Wiera depends on:
//!
//! * **Sessions** with heartbeat-based expiry ([`service`]): a client that
//!   stops heartbeating loses its session, and everything ephemeral it owned
//!   is cleaned up — so a crashed lock holder cannot deadlock the system.
//! * **Ephemeral znodes**: simple named registrations that vanish with their
//!   session (used for liveness registries).
//! * **A fair FIFO global lock** ([`client::LockGuard`]): equivalent to
//!   Curator's `InterProcessMutex`. Waiters queue at the service; the grant
//!   is delivered by completing the waiter's in-flight RPC, so the blocking
//!   client structure mirrors the Curator call the paper uses.
//!
//! Because the service lives on the [`wiera_net::Mesh`], acquiring a lock
//! from US-West pays a real modeled round trip to US-East — which is why the
//! paper's MultiPrimaries put takes ≈400 ms and its Eventual put <10 ms, the
//! contrast Fig. 7 is built on.

pub mod client;
pub mod msg;
pub mod service;
pub mod shard;

pub use client::{CoordClient, CoordError, LockGuard};
pub use msg::CoordMsg;
pub use service::{CoordConfig, CoordService};
pub use shard::{key_hash, ShardMap};
