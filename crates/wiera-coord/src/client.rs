//! Client handle to the coordination service.
//!
//! Mirrors how a Tiera instance uses Curator: open a session, keep it alive
//! with a heartbeat thread, and take blocking global locks around
//! MultiPrimaries updates. Every call reports its modeled cost so the caller
//! can fold lock acquisition into the operation latency it exposes to the
//! application (the dominant term of the paper's ≈400 ms strong-consistency
//! put).

use crate::msg::CoordMsg;
use crate::service::CoordConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wiera_net::{Mesh, NetError, NodeId};
use wiera_sim::SimDuration;

/// Client-side coordination errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    Net(NetError),
    /// The service refused the request (bad session, double release, …).
    Rejected(String),
    /// The service answered with something protocol-incoherent.
    Protocol(String),
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordError::Net(e) => write!(f, "network: {e}"),
            CoordError::Rejected(w) => write!(f, "rejected: {w}"),
            CoordError::Protocol(w) => write!(f, "protocol: {w}"),
        }
    }
}

impl std::error::Error for CoordError {}

impl From<NetError> for CoordError {
    fn from(e: NetError) -> Self {
        CoordError::Net(e)
    }
}

/// RPC timeout for ordinary coordination calls.
const CALL_TIMEOUT: SimDuration = SimDuration::from_secs(30);
/// Lock acquisition may legitimately queue for a long time.
const LOCK_TIMEOUT: SimDuration = SimDuration::from_secs(300);

/// A connected session. Dropping the client closes the session (best-effort)
/// and stops the heartbeat thread.
pub struct CoordClient {
    mesh: Arc<Mesh<CoordMsg>>,
    me: NodeId,
    service: NodeId,
    session: u64,
    stop_hb: Arc<AtomicBool>,
    hb_interval: SimDuration,
}

impl CoordClient {
    /// Open a session and start heartbeating at a third of the service's
    /// session timeout.
    pub fn connect(
        mesh: Arc<Mesh<CoordMsg>>,
        me: NodeId,
        service: NodeId,
        config: &CoordConfig,
    ) -> Result<Arc<Self>, CoordError> {
        Self::connect_at(mesh, me, service, config.session_timeout / 3)
    }

    fn connect_at(
        mesh: Arc<Mesh<CoordMsg>>,
        me: NodeId,
        service: NodeId,
        hb_interval: SimDuration,
    ) -> Result<Arc<Self>, CoordError> {
        let reply = mesh.rpc(&me, &service, CoordMsg::OpenSession, 64, CALL_TIMEOUT)?;
        let session = match reply.msg {
            CoordMsg::SessionOpened { session } => session,
            other => return Err(CoordError::Protocol(format!("{other:?}"))),
        };
        let stop_hb = Arc::new(AtomicBool::new(false));
        {
            let mesh = mesh.clone();
            let me = me.clone();
            let service = service.clone();
            let stop = stop_hb.clone();
            let interval = hb_interval;
            std::thread::Builder::new()
                .name(format!("coord-hb-{session}"))
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        mesh.clock.sleep(interval);
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        // A live session gets `HeartbeatAck`; an expired one
                        // gets a definitive `Error`, after which beating on
                        // is pointless — the owner comes back via
                        // `reconnect`. RPC errors are transient partitions
                        // and worth retrying.
                        match mesh.rpc(
                            &me,
                            &service,
                            CoordMsg::Heartbeat { session },
                            64,
                            CALL_TIMEOUT,
                        ) {
                            Ok(r) if matches!(r.msg, CoordMsg::HeartbeatAck) => {}
                            Ok(_) => return,
                            Err(_) => {}
                        }
                    }
                })
                .map_err(|e| CoordError::Protocol(format!("cannot spawn heartbeat thread: {e}")))?;
        }
        Ok(Arc::new(CoordClient {
            mesh,
            me,
            service,
            session,
            stop_hb,
            hb_interval,
        }))
    }

    /// Open a **fresh** session against the same service with the same
    /// identity and heartbeat cadence. A restarting node whose old session
    /// expired (crash, paused heartbeats) uses this to come back — the old
    /// session's ephemeral znodes stay gone; the new session starts clean.
    pub fn reconnect(&self) -> Result<Arc<Self>, CoordError> {
        Self::connect_at(
            self.mesh.clone(),
            self.me.clone(),
            self.service.clone(),
            self.hb_interval,
        )
    }

    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// Pause the heartbeat thread — test hook to simulate a hung client and
    /// exercise session expiry.
    pub fn pause_heartbeats(&self) {
        self.stop_hb.store(true, Ordering::Release);
    }

    fn call(
        &self,
        msg: CoordMsg,
        timeout: SimDuration,
    ) -> Result<(CoordMsg, SimDuration), CoordError> {
        let bytes = msg.wire_bytes();
        let reply = self
            .mesh
            .rpc(&self.me, &self.service, msg, bytes, timeout)?;
        let cost = reply.total();
        match reply.msg {
            CoordMsg::Error { what } => Err(CoordError::Rejected(what)),
            m => Ok((m, cost)),
        }
    }

    /// Take the global lock at `path`, blocking until granted. Returns the
    /// guard and the modeled acquisition cost (RTT + queue wait).
    pub fn lock(self: &Arc<Self>, path: &str) -> Result<(LockGuard, SimDuration), CoordError> {
        let (msg, cost) = self.call(
            CoordMsg::Acquire {
                session: self.session,
                path: path.to_string(),
            },
            LOCK_TIMEOUT,
        )?;
        match msg {
            CoordMsg::Granted { path } => Ok((
                LockGuard {
                    client: self.clone(),
                    path: Some(path),
                },
                cost,
            )),
            other => Err(CoordError::Protocol(format!("{other:?}"))),
        }
    }

    /// Explicit synchronous release; returns the modeled cost. (The guard's
    /// `Drop` releases asynchronously instead, off the critical path — the
    /// paper releases the lock only after all replicas ack, but the *ack*
    /// wait is the put's job, not the release's.)
    pub fn unlock_sync(&self, path: &str) -> Result<SimDuration, CoordError> {
        let (msg, cost) = self.call(
            CoordMsg::Release {
                session: self.session,
                path: path.to_string(),
            },
            CALL_TIMEOUT,
        )?;
        match msg {
            CoordMsg::Released => Ok(cost),
            other => Err(CoordError::Protocol(format!("{other:?}"))),
        }
    }

    fn release_async(&self, path: String) {
        let _ = self.mesh.send(
            &self.me,
            &self.service,
            CoordMsg::Release {
                session: self.session,
                path,
            },
            64,
        );
    }

    // ---- znodes -----------------------------------------------------------

    pub fn create_znode(&self, path: &str, ephemeral: bool) -> Result<SimDuration, CoordError> {
        let (msg, cost) = self.call(
            CoordMsg::Create {
                session: self.session,
                path: path.into(),
                ephemeral,
            },
            CALL_TIMEOUT,
        )?;
        match msg {
            CoordMsg::Created => Ok(cost),
            other => Err(CoordError::Protocol(format!("{other:?}"))),
        }
    }

    pub fn exists(&self, path: &str) -> Result<bool, CoordError> {
        let (msg, _) = self.call(CoordMsg::Exists { path: path.into() }, CALL_TIMEOUT)?;
        match msg {
            CoordMsg::ExistsReply { exists } => Ok(exists),
            other => Err(CoordError::Protocol(format!("{other:?}"))),
        }
    }

    pub fn delete_znode(&self, path: &str) -> Result<(), CoordError> {
        let (msg, _) = self.call(
            CoordMsg::Delete {
                session: self.session,
                path: path.into(),
            },
            CALL_TIMEOUT,
        )?;
        match msg {
            CoordMsg::Deleted => Ok(()),
            other => Err(CoordError::Protocol(format!("{other:?}"))),
        }
    }

    pub fn list_children(&self, prefix: &str) -> Result<Vec<String>, CoordError> {
        let (msg, _) = self.call(
            CoordMsg::ListChildren {
                prefix: prefix.into(),
            },
            CALL_TIMEOUT,
        )?;
        match msg {
            CoordMsg::Children { paths } => Ok(paths),
            other => Err(CoordError::Protocol(format!("{other:?}"))),
        }
    }

    /// Graceful synchronous shutdown: stop the heartbeat thread, close the
    /// session, and wait for the service's [`CoordMsg::SessionClosed`]
    /// confirmation (so the caller *knows* the ephemerals are gone).
    /// `Drop` instead fires the close off asynchronously, off the critical
    /// path.
    pub fn close(&self) -> Result<SimDuration, CoordError> {
        self.stop_hb.store(true, Ordering::Release);
        let (msg, cost) = self.call(
            CoordMsg::CloseSession {
                session: self.session,
            },
            CALL_TIMEOUT,
        )?;
        match msg {
            CoordMsg::SessionClosed => Ok(cost),
            other => Err(CoordError::Protocol(format!("{other:?}"))),
        }
    }
}

impl Drop for CoordClient {
    fn drop(&mut self) {
        self.stop_hb.store(true, Ordering::Release);
        let _ = self.mesh.send(
            &self.me,
            &self.service,
            CoordMsg::CloseSession {
                session: self.session,
            },
            64,
        );
    }
}

/// RAII guard for a held global lock. Dropping releases asynchronously.
pub struct LockGuard {
    client: Arc<CoordClient>,
    path: Option<String>,
}

impl LockGuard {
    /// Path this guard holds, or `None` once the lock has been released.
    pub fn path(&self) -> Option<&str> {
        self.path.as_deref()
    }

    /// Release synchronously, returning the modeled cost.
    pub fn release_sync(mut self) -> Result<SimDuration, CoordError> {
        match self.path.take() {
            Some(path) => self.client.unlock_sync(&path),
            None => Err(CoordError::Rejected("guard already released".into())),
        }
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            self.client.release_async(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::CoordService;
    use parking_lot::Mutex;
    use wiera_net::{Fabric, Region};
    use wiera_sim::ScaledClock;

    /// Timing-sensitive tests (wall-clock staggering, expiry sweeps) are
    /// serialized so parallel test threads on small hosts don't skew them.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    struct Setup {
        mesh: Arc<Mesh<CoordMsg>>,
        service: Arc<CoordService>,
    }

    fn setup(scale: f64) -> Setup {
        let fabric = Arc::new(Fabric::multicloud(3).without_jitter());
        let mesh = Mesh::new(fabric, ScaledClock::shared(scale));
        // A generous session timeout: at high time compression the default
        // 10 s would be milliseconds of wall time, and a briefly descheduled
        // heartbeat thread would spuriously expire healthy sessions.
        let config = CoordConfig {
            session_timeout: wiera_sim::SimDuration::from_secs(600),
            sweep_interval: wiera_sim::SimDuration::from_secs(5),
        };
        let service = CoordService::spawn(mesh.clone(), NodeId::new(Region::UsEast, "zk"), config)
            .expect("coord service spawns");
        Setup { mesh, service }
    }

    fn client(s: &Setup, region: Region, name: &str) -> Arc<CoordClient> {
        CoordClient::connect(
            s.mesh.clone(),
            NodeId::new(region, name),
            s.service.node.clone(),
            &CoordConfig {
                session_timeout: wiera_sim::SimDuration::from_secs(600),
                sweep_interval: wiera_sim::SimDuration::from_secs(5),
            },
        )
        .unwrap()
    }

    #[test]
    fn lock_costs_a_round_trip_to_us_east() {
        let _serial = serial();
        let s = setup(2000.0);
        let c = client(&s, Region::UsWest, "c1");
        let (guard, cost) = c.lock("/keys/k1").unwrap();
        // US-West → US-East RTT is 70 ms; grant is immediate.
        let ms = cost.as_millis_f64();
        assert!((ms - 70.0).abs() < 3.0, "lock cost {ms}ms");
        assert!(s.service.lock_held("/keys/k1"));
        let rel = guard.release_sync().unwrap();
        assert!(rel.as_millis_f64() > 60.0);
        assert!(!s.service.lock_held("/keys/k1"));
    }

    #[test]
    fn contended_lock_is_mutually_exclusive_and_fifo() {
        let _serial = serial();
        let s = setup(5000.0);
        let c1 = client(&s, Region::UsEast, "c1");
        let c2 = client(&s, Region::UsWest, "c2");
        let c3 = client(&s, Region::EuWest, "c3");

        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let (g1, _) = c1.lock("/k").unwrap();
        order.lock().push("c1-acquired");

        // Enqueue c2, then c3, waiting on the service's queue depth so the
        // FIFO order is deterministic regardless of scheduler timing.
        let mut handles = Vec::new();
        for (i, (c, tag)) in [(c2.clone(), "c2"), (c3.clone(), "c3")]
            .into_iter()
            .enumerate()
        {
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                let (g, cost) = c.lock("/k").unwrap();
                order.lock().push(match tag {
                    "c2" => "c2-acquired",
                    _ => "c3-acquired",
                });
                // Queued acquisition must include wait time beyond one RTT.
                assert!(cost.as_millis_f64() > 30.0);
                drop(g);
            }));
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while s.service.lock_waiters("/k") < i + 1 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "waiter {tag} never queued"
                );
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        order.lock().push("c1-releasing");
        drop(g1);
        for h in handles {
            h.join().unwrap();
        }
        let o = order.lock().clone();
        assert_eq!(o[0], "c1-acquired");
        assert_eq!(o[1], "c1-releasing");
        assert_eq!(o[2], "c2-acquired", "FIFO order, got {o:?}");
        assert_eq!(o[3], "c3-acquired");
    }

    #[test]
    fn double_release_is_rejected() {
        let s = setup(2000.0);
        let c = client(&s, Region::UsEast, "c1");
        let (guard, _) = c.lock("/k").unwrap();
        guard.release_sync().unwrap();
        match c.unlock_sync("/k") {
            Err(CoordError::Rejected(_)) => {}
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn session_expiry_releases_held_locks() {
        let _serial = serial();
        let fabric = Arc::new(Fabric::multicloud(3).without_jitter());
        let mesh = Mesh::new(fabric, ScaledClock::shared(1000.0));
        let cfg = CoordConfig {
            session_timeout: SimDuration::from_secs(30),
            sweep_interval: SimDuration::from_secs(5),
        };
        let service =
            CoordService::spawn(mesh.clone(), NodeId::new(Region::UsEast, "zk"), cfg.clone())
                .expect("coord service spawns");
        let c1 = CoordClient::connect(
            mesh.clone(),
            NodeId::new(Region::UsEast, "c1"),
            service.node.clone(),
            &cfg,
        )
        .unwrap();
        let c2 = CoordClient::connect(
            mesh.clone(),
            NodeId::new(Region::UsWest, "c2"),
            service.node.clone(),
            &cfg,
        )
        .unwrap();
        let (g, _) = c1.lock("/k").unwrap();
        c1.pause_heartbeats(); // simulate a hung holder
        std::mem::forget(g); // never released explicitly
                             // c2 must eventually acquire once c1's session expires.
        let (g2, cost) = c2.lock("/k").unwrap();
        assert!(
            cost > SimDuration::from_millis(70),
            "had to wait for expiry: {cost}"
        );
        drop(g2);
        assert_eq!(service.session_count(), 1, "expired session removed");
    }

    #[test]
    fn ephemeral_znodes_vanish_with_session() {
        let _serial = serial();
        let s = setup(2000.0);
        let c1 = client(&s, Region::UsEast, "c1");
        let c2 = client(&s, Region::UsWest, "c2");
        c1.create_znode("/servers/a", true).unwrap();
        c2.create_znode("/servers/b", true).unwrap();
        c1.create_znode("/config/x", false).unwrap();
        assert_eq!(
            c2.list_children("/servers/").unwrap(),
            vec!["/servers/a".to_string(), "/servers/b".to_string()]
        );
        drop(c1); // closes session → /servers/a removed, /config/x persists
        std::thread::sleep(std::time::Duration::from_millis(100));
        assert_eq!(
            c2.list_children("/servers/").unwrap(),
            vec!["/servers/b".to_string()]
        );
        assert!(c2.exists("/config/x").unwrap());
        c2.delete_znode("/config/x").unwrap();
        assert!(!c2.exists("/config/x").unwrap());
    }

    #[test]
    fn locks_on_different_paths_do_not_contend() {
        let s = setup(2000.0);
        let c1 = client(&s, Region::UsEast, "c1");
        let c2 = client(&s, Region::UsWest, "c2");
        let (g1, _) = c1.lock("/a").unwrap();
        let (g2, cost2) = c2.lock("/b").unwrap();
        assert!(cost2.as_millis_f64() < 100.0, "no queueing: {cost2}");
        drop(g1);
        drop(g2);
    }
}
