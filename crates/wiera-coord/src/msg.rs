//! Wire protocol between [`crate::CoordClient`] and [`crate::CoordService`].

/// Coordination protocol messages. Requests carry the session id so the
/// service can enforce ownership; replies are matched through the mesh's
/// RPC reply slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordMsg {
    // -- sessions --
    OpenSession,
    SessionOpened {
        session: u64,
    },
    Heartbeat {
        session: u64,
    },
    HeartbeatAck,
    CloseSession {
        session: u64,
    },
    SessionClosed,

    // -- global lock (Curator InterProcessMutex recipe) --
    /// Acquire the lock at `path`. The reply is withheld until granted.
    Acquire {
        session: u64,
        path: String,
    },
    Granted {
        path: String,
    },
    Release {
        session: u64,
        path: String,
    },
    Released,

    // -- ephemeral znodes --
    Create {
        session: u64,
        path: String,
        ephemeral: bool,
    },
    Created,
    Exists {
        path: String,
    },
    ExistsReply {
        exists: bool,
    },
    Delete {
        session: u64,
        path: String,
    },
    Deleted,
    ListChildren {
        prefix: String,
    },
    Children {
        paths: Vec<String>,
    },

    /// Any request-level failure (bad session, double release, …).
    Error {
        what: String,
    },
}

impl CoordMsg {
    /// Approximate wire size for network modeling (coordination messages are
    /// tiny; only their RTT matters).
    pub fn wire_bytes(&self) -> u64 {
        64
    }
}
