//! The coordination service node.
//!
//! Single-threaded message handler (like ZooKeeper's serialized request
//! pipeline) plus a session-expiry sweeper thread. Lock grants complete the
//! waiter's withheld RPC reply; queue-wait time is reported as the RPC's
//! remote processing time so callers account it into their put latency.

use crate::msg::CoordMsg;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wiera_net::{Delivery, Mesh, NodeId, ReplySlot};
use wiera_sim::lockreg::TrackedMutex;
use wiera_sim::{MetricsRegistry, SimDuration, SimInstant, Tracer};

/// Tunables for the coordination service.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// A session with no heartbeat for this long is expired and its locks
    /// and ephemeral znodes are released.
    pub session_timeout: SimDuration,
    /// How often the sweeper checks for expired sessions.
    pub sweep_interval: SimDuration,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig {
            session_timeout: SimDuration::from_secs(10),
            sweep_interval: SimDuration::from_secs(2),
        }
    }
}

struct Waiter {
    session: u64,
    slot: ReplySlot<CoordMsg>,
    enqueued_at: SimInstant,
    path: String,
}

struct LockState {
    holder: Option<u64>,
    queue: VecDeque<Waiter>,
}

#[derive(Default)]
struct State {
    sessions: HashMap<u64, SimInstant>, // last heartbeat
    locks: HashMap<String, LockState>,
    znodes: HashMap<String, Option<u64>>, // path -> owning session (ephemeral) or None
    held_by: HashMap<u64, HashSet<String>>, // session -> lock paths held
}

/// The running service. Create with [`CoordService::spawn`]; it owns two
/// background threads (handler + sweeper) until [`CoordService::stop`].
pub struct CoordService {
    pub node: NodeId,
    state: Arc<TrackedMutex<State>>,
    stop: Arc<AtomicBool>,
}

impl CoordService {
    /// Start the service threads. Fails (instead of panicking) when the OS
    /// refuses to spawn them, so embedders can surface the error over RPC.
    pub fn spawn(
        mesh: Arc<Mesh<CoordMsg>>,
        node: NodeId,
        config: CoordConfig,
    ) -> Result<Arc<Self>, String> {
        let state = Arc::new(TrackedMutex::new("coord.state", State::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let next_session = Arc::new(AtomicU64::new(1));

        let inbox = mesh.register(node.clone());
        {
            let state = state.clone();
            let stop = stop.clone();
            let mesh = mesh.clone();
            std::thread::Builder::new()
                .name("coord-handler".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match inbox.recv_timeout(std::time::Duration::from_millis(50)) {
                            Ok(d) => {
                                // A panic while serving one request must not
                                // kill the handler thread (the service would
                                // silently stop granting locks). The State
                                // mutex is non-poisoning, so recovery here is
                                // complete: the failed request's reply slot
                                // drops (callers see an RPC timeout) and the
                                // next request is served normally.
                                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    Self::handle(&mesh, &state, &next_session, d)
                                }));
                                if r.is_err() {
                                    MetricsRegistry::global().inc("coord_handler_recoveries", &[]);
                                }
                            }
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                        }
                    }
                })
                .map_err(|e| format!("cannot spawn coord handler thread: {e}"))?;
        }
        {
            let state = state.clone();
            let stop = stop.clone();
            let clock = mesh.clock.clone();
            let timeout = config.session_timeout;
            let interval = config.sweep_interval;
            std::thread::Builder::new()
                .name("coord-sweeper".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        clock.sleep(interval);
                        let now = clock.now();
                        // Same recovery rationale as the handler thread: a
                        // sweeper that dies stops expiring sessions, which
                        // leaks every lock whose holder hangs.
                        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            Self::expire_sessions(&state, now, timeout);
                        }));
                        if r.is_err() {
                            MetricsRegistry::global().inc("coord_sweeper_recoveries", &[]);
                        }
                    }
                })
                .map_err(|e| format!("cannot spawn coord sweeper thread: {e}"))?;
        }

        Ok(Arc::new(CoordService { node, state, stop }))
    }

    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Number of live sessions (for tests/observability).
    ///
    /// The `State` mutex is non-poisoning ([`TrackedMutex`] over the
    /// parking_lot shim) and the handler/sweeper threads recover from
    /// per-request panics, so this and the other getters can no longer
    /// propagate a poisoned-lock panic to observers.
    pub fn session_count(&self) -> usize {
        self.state.lock().sessions.len()
    }

    /// Number of sessions queued behind the current holder of `path`.
    pub fn lock_waiters(&self, path: &str) -> usize {
        self.state
            .lock()
            .locks
            .get(path)
            .map(|l| l.queue.len())
            .unwrap_or(0)
    }

    /// Is the lock at `path` currently held?
    pub fn lock_held(&self, path: &str) -> bool {
        self.state
            .lock()
            .locks
            .get(path)
            .map(|l| l.holder.is_some())
            .unwrap_or(false)
    }

    fn handle(
        mesh: &Arc<Mesh<CoordMsg>>,
        state: &Arc<TrackedMutex<State>>,
        next_session: &Arc<AtomicU64>,
        d: Delivery<CoordMsg>,
    ) {
        let now = mesh.clock.now();
        // Tiny modeled service time per request.
        let svc = SimDuration::from_micros(200);
        let reply = |slot: Option<ReplySlot<CoordMsg>>, msg: CoordMsg| {
            if let Some(s) = slot {
                let bytes = msg.wire_bytes();
                s.reply(msg, svc, bytes);
            }
        };

        match d.msg {
            CoordMsg::OpenSession => {
                let id = next_session.fetch_add(1, Ordering::Relaxed);
                state.lock().sessions.insert(id, now);
                reply(d.reply, CoordMsg::SessionOpened { session: id });
            }
            CoordMsg::Heartbeat { session } => {
                let mut s = state.lock();
                if let Some(hb) = s.sessions.get_mut(&session) {
                    *hb = now;
                    drop(s);
                    reply(d.reply, CoordMsg::HeartbeatAck);
                } else {
                    drop(s);
                    reply(
                        d.reply,
                        CoordMsg::Error {
                            what: format!("no session {session}"),
                        },
                    );
                }
            }
            CoordMsg::CloseSession { session } => {
                Self::teardown_session(state, session, now);
                reply(d.reply, CoordMsg::SessionClosed);
            }
            CoordMsg::Acquire { session, path } => {
                let Some(slot) = d.reply else { return };
                let mut s = state.lock();
                if !s.sessions.contains_key(&session) {
                    drop(s);
                    reply(
                        Some(slot),
                        CoordMsg::Error {
                            what: format!("no session {session}"),
                        },
                    );
                    return;
                }
                let lock = s.locks.entry(path.clone()).or_insert_with(|| LockState {
                    holder: None,
                    queue: VecDeque::new(),
                });
                match lock.holder {
                    None => {
                        lock.holder = Some(session);
                        s.held_by.entry(session).or_default().insert(path.clone());
                        drop(s);
                        // Immediate grant: only the service time is charged.
                        let metrics = MetricsRegistry::global();
                        metrics.inc("coord_lock_grants", &[("path", "immediate")]);
                        metrics.observe("coord_lock_wait", &[], SimDuration::ZERO);
                        slot.reply(CoordMsg::Granted { path }, svc, 64);
                    }
                    Some(_) => {
                        lock.queue.push_back(Waiter {
                            session,
                            slot,
                            enqueued_at: now,
                            path,
                        });
                        MetricsRegistry::global()
                            .gauge("coord_lock_queue_depth", &[])
                            .inc();
                    }
                }
            }
            CoordMsg::Release { session, path } => {
                let granted = {
                    let mut s = state.lock();
                    Self::do_release(&mut s, session, &path, now)
                };
                match granted {
                    Ok(()) => reply(d.reply, CoordMsg::Released),
                    Err(e) => reply(d.reply, CoordMsg::Error { what: e }),
                }
            }
            CoordMsg::Create {
                session,
                path,
                ephemeral,
            } => {
                let mut s = state.lock();
                if ephemeral && !s.sessions.contains_key(&session) {
                    drop(s);
                    reply(
                        d.reply,
                        CoordMsg::Error {
                            what: format!("no session {session}"),
                        },
                    );
                    return;
                }
                s.znodes
                    .insert(path, if ephemeral { Some(session) } else { None });
                drop(s);
                reply(d.reply, CoordMsg::Created);
            }
            CoordMsg::Exists { path } => {
                let exists = state.lock().znodes.contains_key(&path);
                reply(d.reply, CoordMsg::ExistsReply { exists });
            }
            CoordMsg::Delete { session: _, path } => {
                state.lock().znodes.remove(&path);
                reply(d.reply, CoordMsg::Deleted);
            }
            CoordMsg::ListChildren { prefix } => {
                let mut paths: Vec<String> = state
                    .lock()
                    .znodes
                    .keys()
                    .filter(|p| p.starts_with(&prefix))
                    .cloned()
                    .collect();
                paths.sort();
                reply(d.reply, CoordMsg::Children { paths });
            }
            // Reply-only variants arriving as requests are protocol errors.
            other => {
                reply(
                    d.reply,
                    CoordMsg::Error {
                        what: format!("unexpected request {other:?}"),
                    },
                );
            }
        }
    }

    /// Release a lock and grant it to the next FIFO waiter (if any). The
    /// waiter's queue time is reported as its RPC processing time.
    fn do_release(s: &mut State, session: u64, path: &str, now: SimInstant) -> Result<(), String> {
        let lock = s
            .locks
            .get_mut(path)
            .ok_or_else(|| format!("no lock at {path}"))?;
        if lock.holder != Some(session) {
            return Err(format!("session {session} does not hold {path}"));
        }
        if let Some(held) = s.held_by.get_mut(&session) {
            held.remove(path);
        }
        let metrics = MetricsRegistry::global();
        loop {
            match lock.queue.pop_front() {
                Some(w) if s.sessions.contains_key(&w.session) => {
                    metrics.gauge("coord_lock_queue_depth", &[]).dec();
                    lock.holder = Some(w.session);
                    s.held_by
                        .entry(w.session)
                        .or_default()
                        .insert(w.path.clone());
                    let waited = now.elapsed_since(w.enqueued_at) + SimDuration::from_micros(200);
                    metrics.inc("coord_lock_grants", &[("path", "queued")]);
                    metrics.observe("coord_lock_wait", &[], waited);
                    w.slot.reply(CoordMsg::Granted { path: w.path }, waited, 64);
                    return Ok(());
                }
                Some(_) => {
                    // Waiter's session expired meanwhile; skip it.
                    metrics.gauge("coord_lock_queue_depth", &[]).dec();
                    continue;
                }
                None => {
                    lock.holder = None;
                    return Ok(());
                }
            }
        }
    }

    fn teardown_session(state: &Arc<TrackedMutex<State>>, session: u64, now: SimInstant) {
        let mut s = state.lock();
        s.sessions.remove(&session);
        // Release all locks the session held.
        let held: Vec<String> = s
            .held_by
            .remove(&session)
            .map(|h| h.into_iter().collect())
            .unwrap_or_default();
        for path in held {
            let _ = Self::do_release(&mut s, session, &path, now);
            // do_release removed from held_by already-removed map; holder
            // ownership was keyed by the lock itself so this is safe.
        }
        // Drop queued waiters belonging to the session (their RPC fails with
        // NoReply, which clients surface as a lost lock attempt).
        let mut dropped_waiters = 0i64;
        for lock in s.locks.values_mut() {
            let before = lock.queue.len();
            lock.queue.retain(|w| w.session != session);
            dropped_waiters += (before - lock.queue.len()) as i64;
        }
        if dropped_waiters > 0 {
            MetricsRegistry::global()
                .gauge("coord_lock_queue_depth", &[])
                .add(-dropped_waiters);
        }
        // Remove ephemeral znodes.
        s.znodes.retain(|_, owner| *owner != Some(session));
    }

    fn expire_sessions(state: &Arc<TrackedMutex<State>>, now: SimInstant, timeout: SimDuration) {
        let expired: Vec<u64> = {
            let s = state.lock();
            s.sessions
                .iter()
                .filter(|(_, &hb)| now.elapsed_since(hb) > timeout)
                .map(|(&id, _)| id)
                .collect()
        };
        for id in expired {
            MetricsRegistry::global().inc("coord_session_expiries", &[]);
            Tracer::global().point(
                now,
                "coord",
                "session_expired",
                Some(format!("session {id}")),
            );
            Self::teardown_session(state, id, now);
        }
    }
}
