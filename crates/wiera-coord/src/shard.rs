//! The fleet shard map: consistent-hash partitioning of the keyspace
//! across many replica groups.
//!
//! One Wiera deployment (a *replica group*) replicates every object it
//! owns to all of its replicas — which caps aggregate throughput at one
//! group's write path. The shard map is the coordinator-owned routing
//! table that spreads the keyspace over a **fleet** of groups: keys hash
//! onto a ring of virtual nodes, every ring point belongs to one of a
//! fixed number of shards, and each shard is assigned to exactly one
//! group. Rebalancing moves shards between groups; the map's `version`
//! increases monotonically on every assignment change, so replicas and
//! clients can order maps exactly like deployment epochs — a stale map
//! is detected (`WrongShard` refusal) rather than silently misrouting.
//!
//! The map is a small immutable value: mutation returns a new map at the
//! next version, and everyone shares it behind an `Arc`.

use std::sync::Arc;

/// FNV-1a with a splitmix64 avalanche finalizer. Plain FNV-1a clusters
/// badly on short structured strings (ring-point names, sequential user
/// keys): at 64 shards a raw-FNV ring leaves ~1/6 of the shards empty
/// no matter how many vnodes are added. The finalizer spreads the points
/// uniformly over the circle. Stable across processes and runs — the
/// ring must hash identically at the coordinator, every replica, and
/// every client.
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer (Steele et al.): full avalanche in 3 rounds.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// A versioned consistent-hash routing table: `shards` shards, each with
/// `vnodes` points on the ring, each shard assigned to one replica group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    version: u64,
    vnodes: u32,
    /// Ring points sorted by hash value; each point names the shard that
    /// owns the arc ending at it.
    ring: Arc<[(u64, u32)]>,
    /// `assignment[shard]` is the group that currently owns the shard.
    assignment: Vec<u32>,
    groups: u32,
}

impl ShardMap {
    /// Build a fresh map at version 1 with shards assigned to groups
    /// round-robin. `vnodes` points per shard smooth the arc lengths.
    pub fn new(shards: u32, vnodes: u32, groups: u32) -> Result<ShardMap, String> {
        if shards == 0 || vnodes == 0 || groups == 0 {
            return Err(format!(
                "shard map needs at least one shard, vnode, and group \
                 (got {shards}/{vnodes}/{groups})"
            ));
        }
        let mut ring: Vec<(u64, u32)> = Vec::with_capacity((shards * vnodes) as usize);
        for s in 0..shards {
            for v in 0..vnodes {
                ring.push((key_hash(&format!("shard-{s}/vnode-{v}")), s));
            }
        }
        // Sort by point; on the (astronomically unlikely) equal-hash tie,
        // the lower shard id wins deterministically everywhere.
        ring.sort();
        let assignment = (0..shards).map(|s| s % groups).collect();
        Ok(ShardMap {
            version: 1,
            vnodes,
            ring: ring.into(),
            assignment,
            groups,
        })
    }

    /// The degenerate one-shard, one-group map: every key routes to shard 0
    /// on group 0. This is what a legacy (pre-fleet) client uses so that
    /// single-deployment and fleet routing share one code path. Infallible
    /// by construction, unlike [`ShardMap::new`].
    pub fn single() -> ShardMap {
        ShardMap {
            version: 1,
            vnodes: 1,
            ring: vec![(key_hash("shard-0/vnode-0"), 0)].into(),
            assignment: vec![0],
            groups: 1,
        }
    }

    /// Monotonic map version. Replicas and clients keep the highest
    /// version they have seen and refuse to regress, like epochs.
    pub fn version(&self) -> u64 {
        self.version
    }

    pub fn num_shards(&self) -> u32 {
        self.assignment.len() as u32
    }

    pub fn num_groups(&self) -> u32 {
        self.groups
    }

    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The shard a key belongs to: the ring point at or clockwise-after
    /// the key's hash (wrapping past the top back to the first point).
    pub fn shard_of(&self, key: &str) -> u32 {
        let h = key_hash(key);
        let idx = self.ring.partition_point(|&(point, _)| point < h);
        let (_, shard) = self.ring[idx % self.ring.len()];
        shard
    }

    /// The group that owns `key` under this map version.
    pub fn group_of(&self, key: &str) -> u32 {
        self.group_of_shard(self.shard_of(key))
    }

    /// The group that owns `shard`. Out-of-range shard ids map to group 0
    /// (callers validate; this keeps routing total).
    pub fn group_of_shard(&self, shard: u32) -> u32 {
        self.assignment.get(shard as usize).copied().unwrap_or(0)
    }

    /// Every shard currently assigned to `group`.
    pub fn shards_of_group(&self, group: u32) -> Vec<u32> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, g)| **g == group)
            .map(|(s, _)| s as u32)
            .collect()
    }

    /// Reassign one shard, yielding the successor map at `version + 1`.
    /// Assigning to a previously unseen group grows the fleet (elastic
    /// scale-out); the ring itself never changes, only ownership.
    pub fn assign(&self, shard: u32, group: u32) -> Result<ShardMap, String> {
        if shard >= self.num_shards() {
            return Err(format!(
                "shard {shard} out of range (map has {} shards)",
                self.num_shards()
            ));
        }
        let mut next = self.clone();
        next.assignment[shard as usize] = group;
        next.groups = next.groups.max(group + 1);
        next.version = self.version + 1;
        Ok(next)
    }

    /// Approximate serialized size, for wire modeling.
    pub fn wire_bytes(&self) -> u64 {
        16 + self.ring.len() as u64 * 12 + self.assignment.len() as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_robin_initial_assignment() {
        let m = ShardMap::new(8, 4, 3).unwrap();
        assert_eq!(m.version(), 1);
        assert_eq!(m.num_shards(), 8);
        assert_eq!(m.num_groups(), 3);
        assert_eq!(m.group_of_shard(0), 0);
        assert_eq!(m.group_of_shard(1), 1);
        assert_eq!(m.group_of_shard(2), 2);
        assert_eq!(m.group_of_shard(3), 0);
        assert_eq!(m.shards_of_group(0), vec![0, 3, 6]);
    }

    #[test]
    fn single_map_routes_everything_to_group_zero() {
        let m = ShardMap::single();
        assert_eq!(m.version(), 1);
        assert_eq!(m.num_shards(), 1);
        assert_eq!(m.num_groups(), 1);
        for k in ["", "a", "user42", "shard-0/vnode-0"] {
            assert_eq!(m.shard_of(k), 0);
            assert_eq!(m.group_of(k), 0);
        }
    }

    #[test]
    fn zero_sizes_are_rejected() {
        assert!(ShardMap::new(0, 4, 1).is_err());
        assert!(ShardMap::new(4, 0, 1).is_err());
        assert!(ShardMap::new(4, 4, 0).is_err());
    }

    #[test]
    fn assign_bumps_version_and_moves_only_that_shard() {
        let m1 = ShardMap::new(16, 8, 2).unwrap();
        let m2 = m1.assign(5, 1).unwrap();
        assert_eq!(m2.version(), 2);
        assert_eq!(m2.group_of_shard(5), 1);
        for s in 0..16 {
            if s != 5 {
                assert_eq!(m1.group_of_shard(s), m2.group_of_shard(s));
            }
        }
        // Routing is unchanged: only ownership moved, not the ring.
        for k in 0..200 {
            let key = format!("key-{k}");
            assert_eq!(m1.shard_of(&key), m2.shard_of(&key));
        }
        assert!(m1.assign(99, 0).is_err());
    }

    #[test]
    fn assigning_a_new_group_grows_the_fleet() {
        let m = ShardMap::new(8, 4, 2).unwrap();
        let m2 = m.assign(3, 5).unwrap();
        assert_eq!(m2.num_groups(), 6);
        assert_eq!(m2.group_of_shard(3), 5);
    }

    #[test]
    fn keys_spread_over_shards() {
        let m = ShardMap::new(64, 16, 8).unwrap();
        let mut counts = vec![0usize; 64];
        for k in 0..20_000 {
            counts[m.shard_of(&format!("user{k:08}")) as usize] += 1;
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        let min = counts.iter().min().copied().unwrap_or(0);
        assert!(min > 0, "every shard owns keys");
        // Virtual nodes keep the arcs comparable: no shard takes more
        // than ~6x the smallest share at 16 vnodes.
        assert!(max < min * 6, "imbalanced: max {max} min {min}");
    }

    #[test]
    fn hash_is_stable() {
        // Pinned value: the ring must hash identically everywhere, so the
        // function can never silently change.
        assert_eq!(key_hash(""), 0xf52a_15e9_a9b5_e89b);
        assert_eq!(key_hash("a"), 0x02c0_bdbf_4814_20f8);
    }

    proptest! {
        /// The tentpole routing property: under ANY map version reachable
        /// by a sequence of shard moves, every key routes to exactly one
        /// shard, that shard is in range, its owning group is the
        /// assignment entry, and routing is independent of ownership
        /// changes (moves change WHO owns a shard, never WHICH shard a
        /// key hashes to).
        #[test]
        fn every_key_routes_to_exactly_one_shard(
            key_bytes in proptest::collection::vec(any::<u8>(), 0..48),
            shards in 1u32..96,
            vnodes in 1u32..12,
            groups in 1u32..9,
            moves in proptest::collection::vec((0u32..96, 0u32..12), 0..16),
        ) {
            let key = String::from_utf8_lossy(&key_bytes).into_owned();
            let mut map = ShardMap::new(shards, vnodes, groups).unwrap();
            let home = map.shard_of(&key);
            prop_assert!(home < map.num_shards());
            // Deterministic: the same key always lands on the same shard.
            prop_assert_eq!(map.shard_of(&key), home);
            let mut version = map.version();
            for (shard, group) in moves {
                let Ok(next) = map.assign(shard, group) else {
                    // Out-of-range shard id: the map must be unchanged.
                    prop_assert!(shard >= map.num_shards());
                    continue;
                };
                prop_assert_eq!(next.version(), version + 1);
                version = next.version();
                map = next;
                // Ownership moved; the key's shard did not.
                prop_assert_eq!(map.shard_of(&key), home);
                prop_assert_eq!(map.group_of(&key), map.group_of_shard(home));
                prop_assert!(map.group_of(&key) < map.num_groups());
                // Exactly one group owns the shard: the partition of
                // shards over groups is total and disjoint by construction.
                let owners = (0..map.num_groups())
                    .filter(|g| map.shards_of_group(*g).contains(&home))
                    .count();
                prop_assert_eq!(owners, 1);
            }
        }
    }
}
