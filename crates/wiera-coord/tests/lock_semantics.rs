//! Lock-semantics invariants the consistency-history oracle assumes.
//!
//! wiera-check's linearizability argument for MultiPrimaries leans on two
//! properties of the coordination service's global lock: grants are FIFO in
//! queue order (so waiters can't starve or reorder), and an expired
//! session's held lock is released with the next queued waiter promoted
//! (so a crashed holder can't wedge the protocol). These tests pin both
//! under more contenders than the unit tests use.

use std::sync::Arc;
use wiera_coord::{CoordClient, CoordConfig, CoordMsg, CoordService};
use wiera_net::{Fabric, Mesh, NodeId, Region};
use wiera_sim::{ScaledClock, SimDuration};

/// Wall-clock timing (thread staggering, expiry sweeps) is involved, so the
/// tests serialize against each other.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

struct Setup {
    mesh: Arc<Mesh<CoordMsg>>,
    service: Arc<CoordService>,
    config: CoordConfig,
}

fn setup(scale: f64, config: CoordConfig) -> Setup {
    let fabric = Arc::new(Fabric::multicloud(11).without_jitter());
    let mesh = Mesh::new(fabric, ScaledClock::shared(scale));
    let service = CoordService::spawn(
        mesh.clone(),
        NodeId::new(Region::UsEast, "zk"),
        config.clone(),
    )
    .expect("coord service spawns");
    Setup {
        mesh,
        service,
        config,
    }
}

fn client(s: &Setup, name: &str) -> Arc<CoordClient> {
    CoordClient::connect(
        s.mesh.clone(),
        NodeId::new(Region::UsEast, name),
        s.service.node.clone(),
        &s.config,
    )
    .expect("client connects")
}

fn wait_waiters(s: &Setup, path: &str, n: usize, what: &str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while s.service.lock_waiters(path) < n {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

/// Six sessions contend for one lock; each holder releases only after its
/// successor is already queued. The grant order must equal the queue order
/// — FIFO fairness, no barging, no starvation.
#[test]
fn fifo_fairness_under_n_contenders() {
    let _serial = serial();
    const N: usize = 6;
    let s = setup(
        4000.0,
        CoordConfig {
            // Generous: at high compression a descheduled heartbeat thread
            // must not spuriously expire a healthy contender.
            session_timeout: SimDuration::from_secs(3600),
            sweep_interval: SimDuration::from_secs(10),
        },
    );
    let holder = client(&s, "holder");
    let (g0, _) = holder.lock("/fifo").expect("initial grant");

    let grants: Arc<std::sync::Mutex<Vec<usize>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for i in 0..N {
        let c = client(&s, &format!("c{i}"));
        let grants = grants.clone();
        handles.push(std::thread::spawn(move || {
            let (g, _) = c.lock("/fifo").expect("queued grant");
            grants.lock().unwrap_or_else(|e| e.into_inner()).push(i);
            // Hold briefly so the next grant is observably later.
            std::thread::sleep(std::time::Duration::from_millis(5));
            drop(g);
        }));
        // Wait until this contender is queued before starting the next, so
        // the expected FIFO order is exactly 0..N.
        wait_waiters(&s, "/fifo", i + 1, &format!("contender {i} to queue"));
    }

    drop(g0);
    for h in handles {
        h.join().expect("contender thread");
    }
    let order = grants.lock().unwrap_or_else(|e| e.into_inner()).clone();
    assert_eq!(
        order,
        (0..N).collect::<Vec<_>>(),
        "grants must follow queue order"
    );
    // Guard drops release asynchronously; wait for the last one to land.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while s.service.lock_held("/fifo") {
        assert!(
            std::time::Instant::now() < deadline,
            "final async release never processed"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

/// A holder whose session expires must lose the lock, and the waiter that
/// was already queued behind it must be promoted — without any release
/// message from the dead holder.
#[test]
fn session_expiry_promotes_queued_waiter() {
    let _serial = serial();
    let s = setup(
        1000.0,
        CoordConfig {
            session_timeout: SimDuration::from_secs(30),
            sweep_interval: SimDuration::from_secs(5),
        },
    );
    let hung = client(&s, "hung");
    let waiter = client(&s, "waiter");

    let (g, _) = hung.lock("/promote").expect("initial grant");
    // Queue the waiter while the lock is still healthily held.
    let waiter2 = waiter.clone();
    let promoted =
        std::thread::spawn(move || waiter2.lock("/promote").expect("promoted after expiry"));
    wait_waiters(&s, "/promote", 1, "waiter to queue");

    // Now the holder hangs: heartbeats stop, the guard is never released.
    hung.pause_heartbeats();
    std::mem::forget(g);

    let (g2, cost) = promoted.join().expect("waiter thread");
    assert!(
        cost > SimDuration::from_secs(10),
        "promotion should happen via expiry, not an early release (cost {cost})"
    );
    assert!(s.service.lock_held("/promote"), "waiter now holds the lock");
    g2.release_sync().expect("synchronous release");
    assert!(!s.service.lock_held("/promote"));
    assert_eq!(s.service.session_count(), 1, "hung session swept");
}

/// The failure-lifecycle variant of expiry: a session holding both an
/// ephemeral lease znode (the failure detector's liveness signal) and the
/// election lock goes silent. One sweep must revoke the lease — visible to
/// other sessions via `exists` — AND promote the queued waiter, so a backup
/// watching the lease observes the death no later than it can win the lock.
#[test]
fn session_expiry_revokes_lease_and_promotes_waiter() {
    let _serial = serial();
    let s = setup(
        1000.0,
        CoordConfig {
            session_timeout: SimDuration::from_secs(30),
            sweep_interval: SimDuration::from_secs(5),
        },
    );
    let primary = client(&s, "primary");
    let backup = client(&s, "backup");

    primary
        .create_znode("/leases/dep/primary", true)
        .expect("lease created");
    assert_eq!(backup.exists("/leases/dep/primary"), Ok(true));
    let (g, _) = primary.lock("/election/dep").expect("initial grant");

    let backup2 = backup.clone();
    let promoted = std::thread::spawn(move || {
        backup2
            .lock("/election/dep")
            .expect("promoted after expiry")
    });
    wait_waiters(
        &s,
        "/election/dep",
        1,
        "backup to queue on the election lock",
    );

    // The primary dies without releasing anything.
    primary.pause_heartbeats();
    std::mem::forget(g);

    let (g2, _) = promoted.join().expect("backup thread");
    assert_eq!(
        backup.exists("/leases/dep/primary"),
        Ok(false),
        "the dead session's ephemeral lease must be revoked by the sweep"
    );
    assert!(s.service.lock_held("/election/dep"));
    drop(g2);
    // A fresh session (the primary restarting) can re-create the lease.
    let rejoined = client(&s, "primary-rejoined");
    rejoined
        .create_znode("/leases/dep/primary", true)
        .expect("lease re-created after rejoin");
    assert_eq!(backup.exists("/leases/dep/primary"), Ok(true));
}
