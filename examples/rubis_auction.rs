//! An unmodified application on Wiera (paper §5.4.2, Fig. 12 in miniature).
//!
//! ```sh
//! cargo run --release --example rubis_auction
//! ```
//!
//! The RUBiS-like auction application knows nothing about Wiera: it talks
//! to a MySQL-like record store over a POSIX-style file layer (the FUSE
//! stand-in). We run it twice on the exact same code path — once with the
//! database files on the Azure VM's local 500-IOPS disk, once with reads
//! served from AWS memory across the 2 ms inter-cloud link through Wiera —
//! and compare throughput.

use std::sync::Arc;
use wiera::replica::{ReplicaConfig, ReplicaNode};
use wiera_apps::fs::{FsConfig, WieraFs};
use wiera_apps::rubis::{Rubis, RubisConfig};
use wiera_net::{Fabric, Mesh, NodeId, Region};
use wiera_policy::ConsistencyModel;
use wiera_sim::{ScaledClock, SharedClock, SimDuration};
use wiera_tiers::{SimTier, TierKind, TierSpec};
use wiera_workload::KvStore;

fn demo_cfg() -> RubisConfig {
    RubisConfig {
        items: 8_000,
        users: 8_000,
        clients: 10,
        buffer_pool_bytes: 1 << 20,
        ramp_up: SimDuration::from_secs(2),
        measure: SimDuration::from_secs(10),
        ramp_down: SimDuration::from_secs(1),
        seed: 11,
    }
}

fn run_on(store: Arc<dyn KvStore>, clock: &SharedClock, label: &str) -> f64 {
    let fs = WieraFs::new(store, FsConfig::direct(16 * 1024));
    let (rubis, populate_time) = Rubis::populate(fs, demo_cfg()).unwrap();
    println!("[{label}] database populated in {populate_time} (modeled)");
    let report = rubis.run_paced(clock);
    println!(
        "[{label}] {:.0} requests/s  (mean tx latency {:.1} ms, buffer-pool hit rate {:.0}%)",
        report.throughput,
        report.latency.mean_ms,
        report.buffer_pool_hit_rate * 100.0
    );
    report.throughput
}

fn main() {
    // --- local disk, no Wiera -------------------------------------------------
    let clock: SharedClock = ScaledClock::shared(3.0);
    let disk = SimTier::new(TierSpec::of(TierKind::AzureDisk), 1 << 30, clock.clone(), 1);
    let local_store = wiera_apps::TierStore::paced(disk, clock.clone());
    let local = run_on(local_store, &clock, "local Azure disk");

    // --- remote AWS memory through Wiera ---------------------------------------
    let fabric = Arc::new(Fabric::multicloud(1));
    fabric.set_egress_cap_mbps(Region::AzureUsEast, Some(96.0)); // a Standard D2
    let mesh = Mesh::new(fabric, ScaledClock::shared(3.0));
    let azure = ReplicaNode::spawn(
        mesh.clone(),
        ReplicaConfig {
            node: NodeId::new(Region::AzureUsEast, "azure"),
            instance: tiera::InstanceConfig::new("azure", Region::AzureUsEast)
                .with_tier("tier1", "AzureDisk", 1 << 30)
                .with_sleep(true, false),
            consistency: ConsistencyModel::PrimaryBackup { sync: true },
            flush_interval: SimDuration::from_millis(500),
            coord: None,
            forward_gets_to: None,
            shard_group: None,
            service_time: None,
            overload: None,
        },
    )
    .expect("replica spawns");
    let aws = ReplicaNode::spawn(
        mesh.clone(),
        ReplicaConfig {
            node: NodeId::new(Region::UsEast, "aws"),
            instance: tiera::InstanceConfig::new("aws", Region::UsEast)
                .with_tier("tier1", "Memcached", 1 << 30)
                .with_sleep(true, false),
            consistency: ConsistencyModel::PrimaryBackup { sync: true },
            flush_interval: SimDuration::from_millis(500),
            coord: None,
            forward_gets_to: None,
            shard_group: None,
            service_time: None,
            overload: None,
        },
    )
    .expect("replica spawns");
    let peers = vec![azure.node.clone(), aws.node.clone()];
    azure.set_peers_direct(peers.clone(), Some(azure.node.clone()), 1);
    aws.set_peers_direct(peers, Some(azure.node.clone()), 1);
    azure.set_forward_gets_to(Some(aws.node.clone()));
    let client = wiera::client::WieraClient::builder(mesh.clone(), Region::AzureUsEast, "rubis-vm")
        .replicas(vec![azure.node.clone()])
        .build();
    let remote = run_on(client, &mesh.clock, "remote AWS memory via Wiera");

    println!(
        "\nremote memory vs local disk: {:+.0}% throughput (paper Fig. 12: +50-80% on D2/D3)",
        (remote / local - 1.0) * 100.0
    );
    azure.stop();
    aws.stop();
    mesh.shutdown();
}
