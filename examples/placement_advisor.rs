//! Automated policy generation — the paper's future work, live.
//!
//! ```sh
//! cargo run --release --example placement_advisor
//! ```
//!
//! §3.1 sketches a "data placement manager" that would generate global
//! policies automatically from monitor data. This example closes that loop:
//! observed per-region load + live RTTs go into the advisor, which picks
//! placement/consistency, *generates the policy in the paper's notation*,
//! registers it with the controller, and launches it — then we verify the
//! deployment behaves as estimated.

use bytes::Bytes;
use wiera::advisor::{advise, AdvisorConfig, MetricWeights, RegionLoad};
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::Cluster;
use wiera_net::Region;
use wiera_tiers::TierKind;

fn main() {
    let regions = [
        Region::UsWest,
        Region::UsEast,
        Region::EuWest,
        Region::AsiaEast,
    ];
    let cluster = Cluster::launch(&regions, 1000.0, 13);

    // What the workload monitor would have aggregated: an EU-heavy service.
    let loads = vec![
        RegionLoad {
            region: Region::EuWest,
            puts_per_sec: 4.0,
            gets_per_sec: 80.0,
        },
        RegionLoad {
            region: Region::UsEast,
            puts_per_sec: 1.0,
            gets_per_sec: 20.0,
        },
        RegionLoad {
            region: Region::AsiaEast,
            puts_per_sec: 0.2,
            gets_per_sec: 4.0,
        },
    ];
    let weights = MetricWeights {
        get_latency: 2.0,
        put_latency: 1.0,
        cost: 0.5,
        min_replicas: 2,
        require_strong: false,
    };
    let cfg = AdvisorConfig {
        candidate_regions: regions.to_vec(),
        dataset_gb: 50.0,
        object_bytes: 2048.0,
        tier: TierKind::EbsSsd,
        coordinator: Region::UsEast,
    };

    let advice = advise(&cluster.fabric, &loads, &weights, &cfg).expect("a configuration exists");
    println!("advisor chose:");
    println!(
        "  replicas    : {:?}",
        advice.replicas.iter().map(|r| r.name()).collect::<Vec<_>>()
    );
    println!("  primary     : {}", advice.primary);
    println!("  consistency : {}", advice.consistency);
    println!("  est. get    : {:.1} ms", advice.est_get_ms);
    println!("  est. put    : {:.1} ms", advice.est_put_ms);
    println!("  est. cost   : ${:.2}/month", advice.est_monthly_cost);

    // Generate the policy in the paper's notation and deploy it.
    let policy = advice.to_policy("AdvisedPolicy", "1G", "10G");
    println!("\ngenerated policy:\n{policy}");
    cluster
        .controller
        .register_policy("advised", &policy.to_string())
        .unwrap();
    let dep = cluster
        .controller
        .start_instances("advised-app", "advised", DeploymentConfig::default())
        .unwrap();

    // Measure from the dominant region and compare against the estimate.
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::EuWest, "eu-app")
        .replicas(dep.replicas())
        .build();
    let mut put_ms = 0.0;
    let mut get_ms = 0.0;
    let n = 20;
    for i in 0..n {
        put_ms += client
            .put(&format!("k{i}"), Bytes::from(vec![0u8; 2048]))
            .unwrap()
            .latency
            .as_millis_f64();
        get_ms += client
            .get(&format!("k{i}"))
            .unwrap()
            .latency
            .as_millis_f64();
    }
    println!(
        "\nmeasured from EU-West: put {:.1} ms, get {:.1} ms (estimates were for the \
         traffic-weighted mix across all regions)",
        put_ms / n as f64,
        get_ms / n as f64
    );
    assert!(
        advice.replicas.contains(&Region::EuWest),
        "an EU-heavy workload must place a replica in EU-West"
    );
    cluster.shutdown();
    println!("done.");
}
