//! Cold-data tiering and the cost it saves (paper Fig. 6(a) / §5.3).
//!
//! ```sh
//! cargo run --example cold_data_tiering
//! ```
//!
//! A Tiera instance runs the paper's ReducedCostPolicy: any object untouched
//! for 120 hours is moved from EBS-SSD to S3-IA by the ColdDataMonitoring
//! event. We write a dataset, keep 20% of it hot for a simulated month, and
//! print where everything ended up plus the metered bill vs. the all-SSD
//! alternative.

use bytes::Bytes;
use tiera::{InstanceConfig, TieraInstance};
use wiera_net::Region;
use wiera_policy::{compile, parse};
use wiera_sim::{Clock, ManualClock, SimDuration};
use wiera_tiers::cost::CostSpec;
use wiera_tiers::TierKind;

const POLICY: &str = "
Tiera ColdTiering(time t) {
    tier1: {name: EBS-SSD, size: 1G};
    tier2: {name: S3-IA};
    % Fig. 6(a): data untouched for 120 hours moves to cheap storage.
    event(object.lastAccessedTime > 120 hours) : response {
        move(what:object.location == tier1, to:tier2);
    }
}";

fn main() {
    let compiled = compile(&parse(POLICY).unwrap()).unwrap();
    let clock = ManualClock::new();
    let cfg = InstanceConfig::new("cold-demo", Region::UsEast)
        .with_tier("tier1", "EBS-SSD", 1 << 30)
        .with_tier("tier2", "S3-IA", 0)
        .with_rules(compiled.rules);
    let inst = TieraInstance::build(cfg, clock.clone()).unwrap();

    // 30 objects of 256 KiB; objects 0..6 stay hot.
    for i in 0..30 {
        inst.put(&format!("obj-{i}"), Bytes::from(vec![i as u8; 256 * 1024]))
            .unwrap();
    }
    println!("wrote 30 objects (7.5 MiB) into EBS-SSD");

    // A simulated month: advance a day at a time; touch the hot set; let the
    // cold-data rule run (the background engine would do this on its own —
    // we drive it explicitly so the demo is deterministic).
    for day in 1..=30 {
        clock.advance(SimDuration::from_hours(24));
        for i in 0..6 {
            inst.get(&format!("obj-{i}")).unwrap();
        }
        let moved = inst.run_cold_rules();
        if moved > 0 {
            println!("day {day:>2}: ColdDataMonitoring moved {moved} objects to S3-IA");
        }
    }

    // Where did everything land?
    let mut ssd = 0;
    let mut ia = 0;
    for i in 0..30 {
        let loc = inst
            .meta()
            .with(&format!("obj-{i}"), |o| {
                o.latest().unwrap().location.clone()
            })
            .unwrap();
        if loc == "tier1" {
            ssd += 1;
        } else {
            ia += 1;
        }
    }
    println!("\nfinal placement: {ssd} objects on EBS-SSD (hot), {ia} on S3-IA (cold)");
    assert_eq!(ssd, 6);
    assert_eq!(ia, 24);

    // The metered month, against each tier's Table 4 prices.
    let now = clock.now();
    let mut total = 0.0;
    for (label, kind) in [("tier1", TierKind::EbsSsd), ("tier2", TierKind::S3Ia)] {
        let tier = inst.tier(label).unwrap().as_local().unwrap();
        let bill = tier.meter().report(&CostSpec::of(kind), now);
        println!(
            "{label} ({kind}): storage ${:.6}, requests ${:.6}",
            bill.storage, bill.requests
        );
        total += bill.storage + bill.requests;
    }
    // What the same month would have cost all-SSD.
    let gb = 30.0 * 256.0 * 1024.0 / 1e9;
    let all_ssd = 0.10 * gb;
    println!(
        "\nmonth total ${total:.6} vs all-SSD ${all_ssd:.6} — saved {:.0}%",
        (1.0 - total / all_ssd) * 100.0
    );
    println!(
        "(migration lag and per-request costs matter at demo scale; at the paper's \
         10TB steady state this is the ~$700/month saving of §5.3 — run \
         `cargo run -p wiera-bench --bin sec53_cost_savings` for that arithmetic)"
    );
}
