//! Quickstart: launch a geo-distributed Wiera instance and use it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Stands up the full architecture of the paper's Fig. 2 — a Wiera
//! controller + coordination service in US-East and a Tiera server per
//! region — then launches the canned `EventualConsistency` policy
//! (paper Fig. 4) across US-West and US-East, writes from one coast,
//! and reads from both.

use bytes::Bytes;
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::Cluster;
use wiera_net::Region;

fn main() {
    // A cluster compressed 500x: WAN round trips take microseconds of wall
    // time but all reported latencies are modeled milliseconds.
    let cluster = Cluster::launch(&[Region::UsWest, Region::UsEast], 500.0, 42);
    println!("cluster up: controller + ZooKeeper stand-in in US-East, servers in 2 regions");

    // Table 1 API: startInstances(id, policy). Canned paper policies are
    // pre-registered; your own policy text works through
    // `controller.register_policy`.
    let deployment = cluster
        .controller
        .start_instances("quickstart", "eventual", DeploymentConfig::default())
        .expect("deployment launches");
    println!(
        "deployment '{}' running {} replicas: {:?}",
        deployment.id,
        deployment.replicas().len(),
        deployment
            .replicas()
            .iter()
            .map(|r| r.region.name())
            .collect::<Vec<_>>()
    );

    // An application connects to the closest instance (§4.1 step 8).
    let west = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "app-west")
        .replicas(deployment.replicas())
        .build();
    let east = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app-east")
        .replicas(deployment.replicas())
        .build();

    let put = west
        .put("hello", Bytes::from_static(b"world"))
        .expect("put succeeds");
    println!(
        "west put 'hello' -> version {} in {} (eventual: local write only)",
        put.version, put.latency
    );

    let got = west.get("hello").expect("local read");
    println!(
        "west get 'hello' -> {:?} in {} (served by {})",
        String::from_utf8_lossy(&got.value.clone().unwrap()),
        got.latency,
        got.served_by
    );

    // The east replica converges once the queued update is distributed.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match east.get("hello") {
            Ok(view) => {
                println!(
                    "east get 'hello' -> {:?} in {} (replicated asynchronously)",
                    String::from_utf8_lossy(&view.value.clone().unwrap()),
                    view.latency
                );
                break;
            }
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => panic!("replication never arrived: {e}"),
        }
    }

    // Versioning API (Table 2).
    west.put("hello", Bytes::from_static(b"again")).unwrap();
    let versions = west.get_version_list("hello").unwrap();
    println!("versions of 'hello': {versions:?}");
    let v1 = west.get_version("hello", 1).unwrap();
    println!(
        "version 1 still reads: {:?}",
        String::from_utf8_lossy(&v1.value.unwrap())
    );

    cluster.controller.stop_instances("quickstart").unwrap();
    cluster.shutdown();
    println!("done.");
}
