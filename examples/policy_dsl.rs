//! The policy language end to end.
//!
//! ```sh
//! cargo run --example policy_dsl
//! ```
//!
//! Parses a custom Wiera policy written in the paper's notation, shows what
//! the compiler recognized (layout, rules, consistency protocol), pretty-
//! prints the canonical form, and round-trips every canned paper figure.

use wiera_policy::{compile, parse, ConsistencyModel};

const MY_POLICY: &str = "
% A three-region policy: strong consistency, a write-back local tier
% stack, cold data archived after 48 hours, and a dynamic fallback to
% eventual consistency when puts degrade.
Wiera MyGlobalPolicy(time t) {
    Region1 = {name:LowLatencyInstance, region:US-East, primary:True,
        tier1 = {name:Memcached, size=2G},
        tier2 = {name:EBS-SSD, size=20G},
        tier3 = {name:S3-IA} }
    Region2 = {name:LowLatencyInstance, region:EU-West,
        tier1 = {name:Memcached, size=2G},
        tier2 = {name:EBS-SSD, size=20G},
        tier3 = {name:S3-IA} }

    event(insert.into) : response {
        lock(what:insert.key)
        store(what:insert.object, to:local_instance)
        copy(what:insert.object, to:all_regions)
        release(what:insert.key)
    }
    event(object.lastAccessedTime > 48 hours) : response {
        move(what:object.location == tier2, to:tier3, bandwidth:200KB/s);
    }
    event(threshold.type == put) : response {
        if(threshold.latency > 500 ms && threshold.period > 20 seconds)
            change_policy(what:consistency, to:EventualConsistency);
    }
}";

fn main() {
    let spec = parse(MY_POLICY).expect("parses");
    println!("parsed '{}' ({:?} spec)", spec.name, spec.kind);
    println!("  regions: {}", spec.regions.len());
    println!("  event rules: {}", spec.events.len());

    let compiled = compile(&spec).expect("compiles");
    for r in &compiled.regions {
        println!(
            "  {} -> {} ({} tiers{})",
            r.label,
            r.region_name,
            r.instance.tiers.len(),
            if r.primary { ", primary" } else { "" }
        );
        for t in &r.instance.tiers {
            println!(
                "      {} = {} ({} bytes)",
                t.label, t.kind_name, t.size_bytes
            );
        }
    }
    println!("  recognized consistency: {:?}", compiled.consistency);
    assert_eq!(compiled.consistency, Some(ConsistencyModel::MultiPrimaries));

    println!("\ncanonical pretty-print:\n{}", spec);

    // Round-trip: pretty-print → reparse → identical AST.
    let reparsed = parse(&spec.to_string()).expect("canonical form reparses");
    assert_eq!(spec, reparsed);
    println!("\nround-trip OK");

    // Every figure from the paper parses and compiles too.
    for (id, name, src) in wiera_policy::canned::ALL {
        let c = compile(&parse(src).unwrap()).unwrap();
        println!(
            "canned '{id}' ({name}): {} rules, consistency {:?}",
            c.rules.len(),
            c.consistency
        );
    }
}
