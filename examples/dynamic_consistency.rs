//! Dynamic consistency (paper Fig. 5(a) / Fig. 7), live.
//!
//! ```sh
//! cargo run --example dynamic_consistency
//! ```
//!
//! A MultiPrimaries deployment over three regions with the
//! DynamicConsistency monitor (800 ms threshold, 8 s period for a fast
//! demo). We inject a sustained network delay at EU-West: strong puts blow
//! past the threshold, Wiera switches the deployment to Eventual, the
//! application's put latency collapses; once the delay clears, Wiera
//! switches back — all while the application keeps issuing the same
//! unmodified PUT calls.

use bytes::Bytes;
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::Cluster;
use wiera_net::Region;
use wiera_policy::ConsistencyModel;
use wiera_sim::SimDuration;

fn main() {
    let cluster = Cluster::launch(&[Region::UsWest, Region::UsEast, Region::EuWest], 400.0, 7);
    let dep = cluster
        .controller
        .start_instances(
            "dyn",
            "multi-primaries",
            DeploymentConfig::default().with_dynamic_consistency(800.0, 8_000.0),
        )
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsWest, "app")
        .replicas(dep.replicas())
        .build();

    let put_once = |label: &str| {
        let view = client.put("status", Bytes::from_static(b"ok")).unwrap();
        println!(
            "[{label:<22}] put -> {:>9}  (consistency: {})",
            view.latency.to_string(),
            dep.consistency()
        );
        view.latency
    };

    println!("--- healthy network, strong consistency ---");
    for _ in 0..3 {
        put_once("strong");
        cluster.clock.sleep(SimDuration::from_secs(1));
    }

    println!("--- injecting 1s one-way delay at EU-West ---");
    cluster
        .fabric
        .inject_node_delay(Region::EuWest, SimDuration::from_millis(1000));
    // Keep writing; the monitor needs sustained violations for its period.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while dep.consistency() != ConsistencyModel::Eventual {
        put_once("degraded strong");
        cluster.clock.sleep(SimDuration::from_secs(1));
        assert!(
            std::time::Instant::now() < deadline,
            "switch never happened"
        );
    }
    println!("--- Wiera switched to EVENTUAL ---");
    let weak = put_once("eventual");
    assert!(weak.as_millis_f64() < 50.0);

    println!("--- clearing the delay ---");
    cluster.fabric.clear_node_delay(Region::EuWest);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while dep.consistency() != ConsistencyModel::MultiPrimaries {
        put_once("recovering");
        cluster.clock.sleep(SimDuration::from_secs(1));
        assert!(
            std::time::Instant::now() < deadline,
            "switch-back never happened"
        );
    }
    println!("--- Wiera restored MULTI-PRIMARIES ---");
    put_once("strong again");

    cluster.shutdown();
    println!("done.");
}
