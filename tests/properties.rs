//! Property-based tests on cross-crate invariants.

use bytes::Bytes;
use proptest::prelude::*;
use tiera::{InstanceConfig, TieraInstance};
use wiera_net::Region;
use wiera_policy::{compile, parse};
use wiera_sim::{Histogram, ManualClock, SimDuration, SimInstant};

// ---- policy language properties ---------------------------------------------

/// Strategy for simple generated Tiera policies.
fn gen_policy() -> impl Strategy<Value = String> {
    let tier_kinds = prop::sample::select(vec!["Memcached", "EBS-SSD", "EBS-HDD", "S3", "S3-IA"]);
    let sizes = prop::sample::select(vec!["1G", "5G", "512M", "10G"]);
    (
        prop::collection::vec((tier_kinds, sizes), 1..4),
        1u64..600,
        1u64..100,
    )
        .prop_map(|(tiers, timer_secs, filled_pct)| {
            let mut s = String::from("Tiera Generated(time t) {\n");
            for (i, (kind, size)) in tiers.iter().enumerate() {
                s.push_str(&format!("  tier{}: {{name: {kind}, size: {size}}};\n", i + 1));
            }
            s.push_str(
                "  event(insert.into) : response {\n    insert.object.dirty = true;\n    store(what:insert.object, to:tier1);\n  }\n",
            );
            s.push_str(&format!(
                "  event(time={timer_secs} seconds) : response {{\n    copy(what: object.location == tier1 && object.dirty == true, to:tier1);\n  }}\n"
            ));
            s.push_str(&format!(
                "  event(tier1.filled == {filled_pct}%) : response {{\n    delete(what:object.dirty == false);\n  }}\n"
            ));
            s.push('}');
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated policy parses, compiles, and pretty-print round-trips
    /// to an identical AST.
    #[test]
    fn prop_policy_roundtrip(src in gen_policy()) {
        let spec = parse(&src).expect("generated policy parses");
        let compiled = compile(&spec).expect("generated policy compiles");
        prop_assert!(compiled.rules.len() == 3);
        let printed = spec.to_string();
        let reparsed = parse(&printed).expect("pretty-print reparses");
        prop_assert_eq!(spec, reparsed);
    }

    /// Histogram quantiles are monotone and bounded by min/max for any
    /// sample set.
    #[test]
    fn prop_histogram_quantiles(samples in prop::collection::vec(1u64..10_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(SimDuration::from_micros(s));
        }
        let q10 = h.quantile(0.1);
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        prop_assert!(q10 <= q50 && q50 <= q99);
        prop_assert!(q99 <= h.max());
        prop_assert!(h.mean() <= h.max());
        prop_assert!(h.min() <= h.mean());
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Last-write-wins is order-independent: applying the same set of
    /// replicated updates in any order leaves every instance with the same
    /// winning value.
    #[test]
    fn prop_lww_convergence(
        mut updates in prop::collection::vec((1u64..6, 0u64..1000u64, any::<u8>()), 2..12),
        seed in any::<u64>(),
    ) {
        // Deduplicate (version, mtime) pairs: LWW ties on identical stamps
        // are resolved by arrival order, which genuinely diverges.
        updates.sort();
        updates.dedup_by_key(|(v, m, _)| (*v, *m));

        let build = || {
            TieraInstance::build(
                InstanceConfig::new("lww", Region::UsEast).with_tier("tier1", "EBS-SSD", 1 << 20),
                ManualClock::new(),
            )
            .unwrap()
        };
        let a = build();
        let b = build();
        // a gets them in sorted order, b in a seed-shuffled order.
        let mut shuffled = updates.clone();
        let mut rng = wiera_sim::SimRng::new(seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range_usize(0, i + 1);
            shuffled.swap(i, j);
        }
        for (v, m, payload) in &updates {
            let t = SimInstant::EPOCH + SimDuration::from_millis(*m);
            a.apply_replicated("k", *v, t, Bytes::from(vec![*payload; 4])).unwrap();
        }
        for (v, m, payload) in &shuffled {
            let t = SimInstant::EPOCH + SimDuration::from_millis(*m);
            b.apply_replicated("k", *v, t, Bytes::from(vec![*payload; 4])).unwrap();
        }
        let va = a.get("k").unwrap().value.unwrap();
        let vb = b.get("k").unwrap().value.unwrap();
        prop_assert_eq!(va, vb, "replicas must converge regardless of delivery order");
    }

    /// Unit conversions scale linearly.
    #[test]
    fn prop_unit_conversions(v in 0.0f64..1e6) {
        use wiera_policy::units::{to_bytes, to_millis, Unit};
        let ms = to_millis(v, Unit::Seconds).unwrap();
        prop_assert!((ms - v * 1000.0).abs() < 1e-6 * v.max(1.0));
        if v < 1e6 {
            let b = to_bytes(v, Unit::KiB).unwrap();
            prop_assert_eq!(b, (v * 1024.0) as u64);
        }
    }
}

// ---- versioned-store properties ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Puts and version reads behave like an append-only log: version i
    /// always returns the i-th written payload, the latest wins.
    #[test]
    fn prop_version_log(payloads in prop::collection::vec(any::<u8>(), 1..20)) {
        let inst = TieraInstance::build(
            InstanceConfig::new("log", Region::UsEast).with_tier("tier1", "EBS-SSD", 1 << 20),
            ManualClock::new(),
        )
        .unwrap();
        for (i, p) in payloads.iter().enumerate() {
            let out = inst.put("k", Bytes::from(vec![*p; 8])).unwrap();
            prop_assert_eq!(out.version, i as u64 + 1);
        }
        for (i, p) in payloads.iter().enumerate() {
            let got = inst.get_version("k", i as u64 + 1).unwrap();
            prop_assert_eq!(got.value.unwrap()[0], *p);
        }
        let latest = inst.get("k").unwrap();
        prop_assert_eq!(latest.version, payloads.len() as u64);
        prop_assert_eq!(latest.value.unwrap()[0], *payloads.last().unwrap());
    }

    /// FS writes at arbitrary offsets are readable back exactly, across
    /// block boundaries.
    #[test]
    fn prop_fs_write_read(
        offset in 0u64..5000,
        data in prop::collection::vec(any::<u8>(), 1..3000),
    ) {
        use wiera_apps::fs::{FsConfig, WieraFs};
        use wiera_apps::testutil::MapStore;
        let store = MapStore::shared(SimDuration::from_micros(10), SimDuration::from_micros(10));
        let fs = WieraFs::new(store, FsConfig { block_size: 512, direct_io: true, cache_bytes: 0 });
        fs.create_filled("/f", 8192, 0).unwrap();
        fs.write_at("/f", offset, &data).unwrap();
        let (back, _) = fs.read_at("/f", offset, data.len()).unwrap();
        prop_assert_eq!(back.as_ref(), &data[..]);
    }
}
