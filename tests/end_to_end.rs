//! Cross-crate end-to-end tests: the full pipeline from policy text to a
//! live geo-distributed deployment serving workload generators and
//! application substrates.

use bytes::Bytes;
use std::sync::Arc;
use wiera::client::WieraClient;
use wiera::deployment::DeploymentConfig;
use wiera::testkit::{bodies, Cluster};
use wiera_apps::fs::{FsConfig, WieraFs};
use wiera_net::Region;
use wiera_sim::{SimDuration, SimRng};
use wiera_workload::{ClientDriver, Ledger, WorkloadSpec};

#[test]
fn policy_text_to_running_deployment() {
    // The whole paper pipeline: write a policy in the figures' notation,
    // register it via the GPM, launch via the WUI, use via a client.
    let cluster = Cluster::launch(&[Region::UsEast, Region::UsWest], 2000.0, 21);
    let policy = "
    Wiera EndToEnd() {
        Region1 = {name:LowLatencyInstance, region:US-East,
            tier1 = {name:Memcached, size=1G},
            tier2 = {name:EBS-SSD, size=1G} }
        Region2 = {name:LowLatencyInstance, region:US-West,
            tier1 = {name:Memcached, size=1G},
            tier2 = {name:EBS-SSD, size=1G} }
        event(insert.into) : response {
            store(what:insert.object, to:local_instance)
            queue(what:insert.object, to:all_regions)
        }
    }";
    cluster.controller.register_policy("e2e", policy).unwrap();
    let dep = cluster
        .controller
        .start_instances(
            "e2e-dep",
            "e2e",
            DeploymentConfig {
                flush_ms: 100.0,
                ..Default::default()
            },
        )
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .build();
    for i in 0..20 {
        client
            .put(&format!("k{i}"), Bytes::from(vec![i as u8; 256]))
            .unwrap();
    }
    for i in 0..20 {
        let got = client.get(&format!("k{i}")).unwrap();
        assert_eq!(got.value.unwrap()[0], i as u8);
    }
    cluster.controller.stop_instances("e2e-dep").unwrap();
    cluster.shutdown();
}

#[test]
fn ycsb_driver_against_live_deployment() {
    let cluster = Cluster::launch(&[Region::UsEast, Region::UsWest], 3000.0, 22);
    cluster
        .register_policy_over(
            "ev2",
            &[("US-East", false), ("US-West", false)],
            bodies::EVENTUAL,
        )
        .unwrap();
    let dep = cluster
        .controller
        .start_instances(
            "ycsb",
            "ev2",
            DeploymentConfig {
                flush_ms: 100.0,
                ..Default::default()
            },
        )
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "ycsb")
        .replicas(dep.replicas())
        .build();
    let ledger = Arc::new(Ledger::new());
    let driver = ClientDriver::new(
        WorkloadSpec::ycsb_a(50, 128),
        ledger.clone(),
        SimDuration::ZERO,
    );
    let mut rng = SimRng::new(5);
    driver.run_ops(client.as_ref(), &cluster.clock, &mut rng, 300);
    let report = driver.report();
    assert_eq!(report.ops, 300);
    assert_eq!(report.errors, 0);
    assert!(
        report.put_latency.count > 80,
        "puts ran: {}",
        report.put_latency.count
    );
    // Eventual puts via the local replica are fast.
    assert!(report.put_latency.p50_ms < 10.0, "{}", report.put_latency);
    assert!(ledger.tracked_keys() > 10);
    cluster.shutdown();
}

#[test]
fn posix_files_on_a_geo_deployment() {
    // The "unmodified application" path: POSIX-ish file I/O through the
    // FUSE stand-in onto a replicated Wiera deployment.
    let cluster = Cluster::launch(&[Region::UsEast, Region::UsWest], 3000.0, 23);
    cluster
        .register_policy_over(
            "fs-ev",
            &[("US-East", false), ("US-West", false)],
            bodies::EVENTUAL,
        )
        .unwrap();
    let dep = cluster
        .controller
        .start_instances(
            "fs",
            "fs-ev",
            DeploymentConfig {
                flush_ms: 100.0,
                ..Default::default()
            },
        )
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "fs-app")
        .replicas(dep.replicas())
        .build();
    let fs = WieraFs::new(client, FsConfig::default());
    fs.create_filled("/data/report.bin", 100_000, 0xCD).unwrap();
    let (data, lat) = fs.read_at("/data/report.bin", 50_000, 10_000).unwrap();
    assert_eq!(data.len(), 10_000);
    assert!(data.iter().all(|&b| b == 0xCD));
    assert!(lat > SimDuration::ZERO);
    // Overwrite a range and read it back.
    fs.write_at("/data/report.bin", 99_990, &[0xEE; 20])
        .unwrap();
    assert_eq!(fs.file_len("/data/report.bin"), 100_010);
    let (tail, _) = fs.read_at("/data/report.bin", 99_990, 20).unwrap();
    assert!(tail.iter().all(|&b| b == 0xEE));
    cluster.shutdown();
}

#[test]
fn cost_meters_run_through_the_stack() {
    // Cost accounting is visible end to end: after a burst of client
    // operations, the replica's tier meters hold the request counts.
    let cluster = Cluster::launch(&[Region::UsEast], 3000.0, 24);
    cluster
        .register_policy_over("solo", &[("US-East", false)], bodies::EVENTUAL)
        .unwrap();
    let dep = cluster
        .controller
        .start_instances("solo-dep", "solo", DeploymentConfig::default())
        .unwrap();
    let client = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "app")
        .replicas(dep.replicas())
        .build();
    for i in 0..25 {
        client
            .put(&format!("k{i}"), Bytes::from(vec![0u8; 1024]))
            .unwrap();
    }
    for _ in 0..10 {
        client.get("k0").unwrap();
    }
    let replica = &cluster.deployment_replicas("solo-dep")[0];
    let tier = replica
        .instance()
        .tier("tier1")
        .unwrap()
        .as_local()
        .unwrap();
    let usage = tier.meter().usage(cluster.clock.now());
    assert_eq!(usage.puts, 25);
    assert!(usage.gets >= 10);
    cluster.shutdown();
}

#[test]
fn multi_deployment_isolation() {
    // Two Wiera instances (deployments) on the same servers are isolated:
    // same keys, different data.
    let cluster = Cluster::launch(&[Region::UsEast, Region::UsWest], 3000.0, 25);
    cluster
        .register_policy_over(
            "iso",
            &[("US-East", false), ("US-West", false)],
            bodies::EVENTUAL,
        )
        .unwrap();
    let a = cluster
        .controller
        .start_instances("app-a", "iso", DeploymentConfig::default())
        .unwrap();
    let b = cluster
        .controller
        .start_instances("app-b", "iso", DeploymentConfig::default())
        .unwrap();
    let ca = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "a")
        .replicas(a.replicas())
        .build();
    let cb = WieraClient::builder(cluster.data_mesh.clone(), Region::UsEast, "b")
        .replicas(b.replicas())
        .build();
    ca.put("shared-key", Bytes::from_static(b"from-a")).unwrap();
    cb.put("shared-key", Bytes::from_static(b"from-b")).unwrap();
    assert_eq!(
        ca.get("shared-key").unwrap().value.unwrap().as_ref(),
        b"from-a"
    );
    assert_eq!(
        cb.get("shared-key").unwrap().value.unwrap().as_ref(),
        b"from-b"
    );
    cluster.shutdown();
}
