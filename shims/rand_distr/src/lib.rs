//! Offline shim for `rand_distr`: `Normal` and `LogNormal` via the
//! Box-Muller transform, over the `rand` shim's `RngCore`.

use rand::RngCore;

/// Error returned when distribution parameters are invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// A distribution that can be sampled with any RNG.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

fn unit_open(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    // Uniform in (0, 1]: avoids ln(0) in Box-Muller.
    (((rng.next_u64() >> 11) + 1) as f64) / (1u64 << 53) as f64
}

fn standard_normal(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    let u1 = unit_open(rng);
    let u2 = unit_open(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: exp(N(mu, sigma)).
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(Error);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::{Distribution, LogNormal, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_mean_and_spread() {
        let n = Normal::new(10.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_median_tracks_mu() {
        // For LogNormal, median = exp(mu).
        let mu = 3.0f64.ln();
        let d = LogNormal::new(mu, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 3.0).abs() < 0.15, "median {median}");
        assert!(samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
    }
}
