//! Offline shim for `rand`: a deterministic xoshiro256** generator behind
//! the `Rng` / `RngCore` / `SeedableRng` trait names the workspace imports.
//!
//! The sequences differ from the real `rand` crate's `StdRng` (which is
//! ChaCha-based); everything in this workspace treats RNG output as an
//! opaque reproducible stream, so only determinism matters, not the exact
//! sequence.

/// Core trait: raw random word generation.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open range that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53-bit mantissa → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end - self.start;
        // Debiased modulo: reject the tail of the u64 space that would wrap
        // unevenly. The loop terminates almost immediately in practice.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return self.start + v % span;
            }
        }
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        ((self.start as u64)..(self.end as u64)).sample_from(rng) as usize
    }
}

impl SampleRange for std::ops::Range<u32> {
    type Output = u32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        ((self.start as u64)..(self.end as u64)).sample_from(rng) as u32
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Uniform f64 in [0, 1).
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is invalid for xoshiro; splitmix output of any
            // seed is never all zeros across four draws, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = r.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&f));
            let u = r.gen_range(10usize..20);
            assert!((10..20).contains(&u));
        }
    }

    #[test]
    fn range_covers_span() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut r = StdRng::seed_from_u64(5);
        for len in [0usize, 1, 7, 8, 9, 64] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} left zeroed");
            }
        }
    }
}
