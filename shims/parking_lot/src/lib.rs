//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace supplies
//! the subset of the parking_lot API it actually uses: non-poisoning
//! [`Mutex`] / [`RwLock`] with guard-returning `lock()` / `read()` /
//! `write()`, and a [`Condvar`] whose `wait` / `wait_for` operate on this
//! crate's `MutexGuard`. Poisoned std locks are recovered transparently —
//! parking_lot has no concept of poisoning.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Non-poisoning mutex with the parking_lot calling convention.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of [`Condvar::wait_for`].
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on this crate's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard holds the lock");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard holds the lock");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
