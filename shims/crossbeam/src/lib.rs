//! Offline shim for `crossbeam`, providing the `channel` subset the
//! workspace uses (unbounded MPSC with blocking/timeout receives), backed
//! by `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u32>();
        match rx.recv_timeout(Duration::from_millis(10)) {
            Err(RecvTimeoutError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn disconnect_reported() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        match rx.recv_timeout(Duration::from_millis(10)) {
            Err(RecvTimeoutError::Disconnected) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.iter().take(2).sum::<i32>(), 3);
    }
}
