//! Offline shim for `serde`: a `Value`-based data model instead of the real
//! visitor architecture. `Serialize` converts a type into a [`Value`] tree;
//! `Deserialize` rebuilds a type from one. `serde_json` (the sibling shim)
//! renders/parses `Value` as JSON text.
//!
//! The subset covers exactly what this workspace uses: derived impls on
//! structs and enums (externally tagged, like real serde), primitives,
//! `String`, `Option`, `Vec`, `Box`, tuples, arrays, and maps with string
//! or integer keys.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialized data model. Objects use `BTreeMap` so every export is
/// deterministically key-ordered.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Index into an object by key; `Null` for misses (like serde_json).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Convert a type into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild a type from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, String>;
}

// ---- primitives ------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let u = v.as_u64().ok_or_else(|| format!(
                    "expected unsigned integer, got {v:?}"
                ))?;
                <$t>::try_from(u).map_err(|_| format!("{u} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let i = v.as_i64().ok_or_else(|| format!(
                    "expected integer, got {v:?}"
                ))?;
                <$t>::try_from(i).map_err(|_| format!("{i} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        if v.is_null() {
            // Non-finite floats serialize as null (JSON has no NaN).
            return Ok(f64::NAN);
        }
        v.as_f64()
            .ok_or_else(|| format!("expected number, got {v:?}"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, String> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_bool()
            .ok_or_else(|| format!("expected bool, got {v:?}"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| format!("expected string, got {v:?}"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, String> {
        let s = v
            .as_str()
            .ok_or_else(|| format!("expected char string, got {v:?}"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(format!("expected single-char string, got {s:?}")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, String> {
        Ok(())
    }
}

// ---- references and smart pointers -----------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, got {v:?}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, String> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of length {N}, got {len}"))
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, String> {
                let arr = v.as_array().ok_or_else(|| format!("expected tuple array, got {v:?}"))?;
                let want = [$($idx),+].len();
                if arr.len() != want {
                    return Err(format!("expected {want}-tuple, got {} elements", arr.len()));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, got {v:?}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

/// Map keys must render as JSON object keys (strings). Real serde does this
/// for integer keys too; this trait mirrors that.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn parse_key(s: &str) -> Result<Self, String>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn parse_key(s: &str) -> Result<Self, String> {
        Ok(s.to_owned())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn parse_key(s: &str) -> Result<Self, String> {
                s.parse().map_err(|_| format!("invalid {} map key: {s:?}", stringify!($t)))
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_object()
            .ok_or_else(|| format!("expected object, got {v:?}"))?
            .iter()
            .map(|(k, v)| Ok((K::parse_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Route through BTreeMap<String, _> so output order is deterministic.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_object()
            .ok_or_else(|| format!("expected object, got {v:?}"))?
            .iter()
            .map(|(k, v)| Ok((K::parse_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn option_null_mapping() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u64).to_value(), Value::UInt(3));
        assert_eq!(Option::<u64>::from_value(&Value::UInt(3)).unwrap(), Some(3));
    }

    #[test]
    fn integer_map_keys_become_strings() {
        let mut m = BTreeMap::new();
        m.insert(7u64, "seven".to_string());
        let v = m.to_value();
        assert_eq!(v.get("7").and_then(Value::as_str), Some("seven"));
        let back: BTreeMap<u64, String> = BTreeMap::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_and_vecs() {
        let t = (1u64, "x".to_string());
        let v = t.to_value();
        let back: (u64, String) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, t);
        let xs = vec![1u8, 2, 3];
        let back: Vec<u8> = Deserialize::from_value(&xs.to_value()).unwrap();
        assert_eq!(back, xs);
    }
}
