//! Offline shim for `criterion`: a minimal wall-clock micro-benchmark
//! harness exposing the API subset used by `benches/micro.rs`. No
//! statistical analysis — each benchmark is timed over a fixed number of
//! warm-up and measurement iterations and reported as mean ns/iter.

use std::time::{Duration, Instant};

/// Batch sizing hint; only the variants the workspace names exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    /// (iterations, total elapsed) recorded by the last `iter*` call.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn run<F: FnMut() -> Duration>(&mut self, mut timed_block: F) {
        // Warm-up: run until the warm-up budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            timed_block();
        }
        // Measurement: accumulate in-block time until the budget elapses.
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            total += timed_block();
            iters += 1;
        }
        self.result = Some((iters.max(1), total));
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.run(|| {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed();
            drop(std::hint::black_box(out));
            elapsed
        });
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.run(|| {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let elapsed = start.elapsed();
            drop(std::hint::black_box(out));
            elapsed
        });
    }
}

/// Benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(200),
            measure: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sample count is ignored; kept for API compatibility.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        // Cap so `cargo bench` stays quick even with generous settings.
        self.measure = d.min(Duration::from_secs(2));
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d.min(Duration::from_secs(1));
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((iters, total)) => {
                let ns_per_iter = total.as_nanos() as f64 / iters as f64;
                println!("bench {name:<40} {ns_per_iter:>14.1} ns/iter ({iters} iters)");
            }
            None => println!("bench {name:<40} (no measurement)"),
        }
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut c: $crate::Criterion = $config;
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_each_time() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("shim/batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
