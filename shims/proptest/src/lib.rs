//! Offline shim for `proptest`: deterministic random testing with the
//! `proptest!` / `prop_assert*` macro surface this workspace uses.
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! generated inputs via the assertion message only), and generation is
//! seeded deterministically so CI runs are reproducible.

/// Deterministic generator used by strategies (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Runner configuration. Only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Sentinel error message used by `prop_assume!` rejections.
pub const REJECT_MSG: &str = "__proptest_shim_reject__";

/// A source of generated values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

// ---- range strategies --------------------------------------------------------

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for std::ops::Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as u32
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for std::ops::Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start
            .wrapping_add(rng.below(self.end.abs_diff(self.start)) as i64)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---- tuple strategies --------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

// ---- any ---------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: keeps arithmetic-heavy properties meaningful.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy for the full domain of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---- sample / collection -----------------------------------------------------

pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy that picks uniformly from a fixed list.
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }

    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs a non-empty list");
        Select { items }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with length drawn from `len` and elements from
    /// `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end - self.len.start;
            let n = self.len.start
                + if span == 0 {
                    0
                } else {
                    rng.below(span as u64) as usize
                };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }
}

/// Namespace mirror of the real crate's `prop::` prelude alias.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

// ---- macros ------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "prop_assert failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq failed: {:?} != {:?}", __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "prop_assert_eq failed ({:?} != {:?}): {}", __l, __r, format!($($fmt)+)
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!("prop_assert_ne failed: both {:?}", __l));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::REJECT_MSG.to_string());
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! { [$cfg] [$body] [] $($args)* }
        }
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All args normalized into [pat => strategy] groups: run the cases.
    ([$cfg:expr] [$body:block] [$([$p:pat => $s:expr])*]) => {{
        let __cfg: $crate::ProptestConfig = $cfg;
        // Per-test deterministic seed, derived from the test body text.
        let __seed = {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in concat!(module_path!(), stringify!($body)).bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            h
        };
        let mut __rng = $crate::TestRng::deterministic(__seed);
        let mut __accepted: u32 = 0;
        let mut __tries: u32 = 0;
        let __max_tries = __cfg.cases.saturating_mul(20).max(100);
        while __accepted < __cfg.cases && __tries < __max_tries {
            __tries += 1;
            let __outcome: ::std::result::Result<(), ::std::string::String> =
                (|| -> ::std::result::Result<(), ::std::string::String> {
                    $(let $p = $crate::Strategy::generate(&$s, &mut __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
            match __outcome {
                ::std::result::Result::Ok(()) => __accepted += 1,
                ::std::result::Result::Err(e) if e == $crate::REJECT_MSG => {}
                ::std::result::Result::Err(e) => panic!("property failed: {e}"),
            }
        }
        assert!(
            __accepted > 0,
            "prop_assume! rejected every generated case"
        );
    }};
    // `name: Type` arg (shorthand for `name in any::<Type>()`).
    ([$cfg:expr] [$body:block] [$($acc:tt)*] $n:ident : $t:ty) => {
        $crate::__proptest_case! { [$cfg] [$body] [$($acc)* [$n => $crate::any::<$t>()]] }
    };
    ([$cfg:expr] [$body:block] [$($acc:tt)*] $n:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_case! { [$cfg] [$body] [$($acc)* [$n => $crate::any::<$t>()]] $($rest)* }
    };
    // `pat in strategy` arg.
    ([$cfg:expr] [$body:block] [$($acc:tt)*] $p:pat in $s:expr) => {
        $crate::__proptest_case! { [$cfg] [$body] [$($acc)* [$p => $s]] }
    };
    ([$cfg:expr] [$body:block] [$($acc:tt)*] $p:pat in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_case! { [$cfg] [$body] [$($acc)* [$p => $s]] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic(1);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
            let f = crate::Strategy::generate(&(1.0f64..2.0), &mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn select_and_vec_compose() {
        let mut rng = crate::TestRng::deterministic(2);
        let s = prop::collection::vec(prop::sample::select(vec!["a", "b"]), 1..4);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|x| *x == "a" || *x == "b"));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::deterministic(3);
        let s = (1u64..5).prop_map(|v| v * 10);
        for _ in 0..50 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_in_form(x in 1u64..100, y in 1u64..100) {
            prop_assert!(x + y >= 2);
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn macro_type_form(x: u8, flag: bool) {
            prop_assume!(flag || x < 200);
            prop_assert!(u64::from(x) < 256);
        }

        #[test]
        fn macro_mixed_form(data in prop::collection::vec(any::<u8>(), 0..64), key: u64) {
            let _ = key;
            prop_assert!(data.len() < 64);
        }
    }
}
