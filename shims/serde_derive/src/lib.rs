//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` against the sibling serde shim's `Value` model.
//!
//! No syn/quote — the item is parsed directly from the `proc_macro` token
//! stream (field *names* and variant shapes are all the generated code
//! needs; field types are inferred at the use site). Enums use serde's
//! externally-tagged representation: unit variants as `"Name"`, everything
//! else as a single-key object.
//!
//! Unsupported (and unused in this workspace): generics, `#[serde(...)]`
//! attributes, unions.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skip any `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(iter: &mut TokenIter) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("expected attribute body after '#', got {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Skip tokens until a top-level comma (tracking `<`/`>` generic depth) or
/// end of stream. Consumes the comma.
fn skip_to_comma(iter: &mut TokenIter) {
    let mut depth = 0i32;
    for tok in iter.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Count the comma-separated fields of a tuple struct/variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut in_segment = false;
    for tok in body {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    in_segment = false;
                    continue;
                }
                _ => {}
            }
        }
        if !in_segment {
            in_segment = true;
            count += 1;
        }
    }
    count
}

/// Parse `name: Type` field declarations from a brace-group body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut iter = body.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected ':' after field name, got {other:?}"),
                }
                skip_to_comma(&mut iter);
            }
            Some(other) => panic!("unexpected token in fields: {other:?}"),
        }
    }
    names
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let mut iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                let fields = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        iter.next();
                        Fields::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let names = parse_named_fields(g.stream());
                        iter.next();
                        Fields::Named(names)
                    }
                    _ => Fields::Unit,
                };
                variants.push((id.to_string(), fields));
                // Skip discriminants (`= expr`) and the separating comma.
                skip_to_comma(&mut iter);
            }
            Some(other) => panic!("unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected 'struct' or 'enum', got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic types ({name})");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("unexpected enum body: {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde shim derive supports struct/enum, got '{other}'"),
    }
}

// ---- code generation --------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Fields::Named(names) => {
                    let mut s =
                        String::from("{ let mut __m = ::std::collections::BTreeMap::new();\n");
                    for f in names {
                        s.push_str(&format!(
                            "__m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                        ));
                    }
                    s.push_str("::serde::Value::Object(__m) }");
                    s
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => {{\n\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(\"{v}\".to_string(), {inner});\n\
                             ::serde::Value::Object(__m) }}\n",
                            binds = binds.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let pat = names.join(", ");
                        let mut inner =
                            String::from("{ let mut __o = ::std::collections::BTreeMap::new();\n");
                        for f in names {
                            inner.push_str(&format!(
                                "__o.insert(\"{f}\".to_string(), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        inner.push_str("::serde::Value::Object(__o) }");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pat} }} => {{\n\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(\"{v}\".to_string(), {inner});\n\
                             ::serde::Value::Object(__m) }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n}}"
            )
        }
    }
}

fn gen_named_ctor(path: &str, names: &[String], src: &str, ctx: &str) -> String {
    let mut s = format!("::std::result::Result::Ok({path} {{\n");
    for f in names {
        s.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value({src}.get(\"{f}\")\
             .unwrap_or(&::serde::Value::Null))\
             .map_err(|e| format!(\"{ctx}.{f}: {{e}}\"))?,\n"
        ));
    }
    s.push_str("})");
    s
}

fn gen_tuple_ctor(path: &str, n: usize, arr: &str) -> String {
    let elems: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&{arr}[{i}])?"))
        .collect();
    format!(
        "if {arr}.len() != {n} {{\n\
         return ::std::result::Result::Err(format!(\"expected {n} elements for {path}, got {{}}\", {arr}.len()));\n\
         }}\n\
         ::std::result::Result::Ok({path}({elems}))",
        elems = elems.join(", ")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
            Fields::Tuple(1) => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            Fields::Tuple(n) => format!(
                "let __arr = __v.as_array()\
                 .ok_or_else(|| format!(\"expected array for {name}, got {{__v:?}}\"))?;\n{}",
                gen_tuple_ctor(name, *n, "__arr")
            ),
            Fields::Named(names) => format!(
                "let __obj = __v.as_object()\
                 .ok_or_else(|| format!(\"expected object for {name}, got {{__v:?}}\"))?;\n{}",
                gen_named_ctor(name, names, "__obj", name)
            ),
        },
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (v, fields) in variants {
                let path = format!("{name}::{v}");
                match fields {
                    Fields::Unit => unit_arms
                        .push_str(&format!("\"{v}\" => ::std::result::Result::Ok({path}),\n")),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({path}(\
                         ::serde::Deserialize::from_value(__val)?)),\n"
                    )),
                    Fields::Tuple(n) => data_arms.push_str(&format!(
                        "\"{v}\" => {{\n\
                         let __arr = __val.as_array()\
                         .ok_or_else(|| format!(\"expected array for {path}\"))?;\n{}\n}}\n",
                        gen_tuple_ctor(&path, *n, "__arr")
                    )),
                    Fields::Named(names) => data_arms.push_str(&format!(
                        "\"{v}\" => {{\n\
                         let __obj = __val.as_object()\
                         .ok_or_else(|| format!(\"expected object for {path}\"))?;\n{}\n}}\n",
                        gen_named_ctor(&path, names, "__obj", &path)
                    )),
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(format!(\"unknown variant {{__other:?}} for {name}\")),\n\
                 }},\n\
                 ::serde::Value::Object(__m) => {{\n\
                 let (__k, __val) = __m.iter().next()\
                 .ok_or_else(|| format!(\"empty variant object for {name}\"))?;\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => ::std::result::Result::Err(format!(\"unknown variant {{__other:?}} for {name}\")),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(format!(\"expected string or object for {name}, got {{__other:?}}\")),\n\
                 }}"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
         {body}\n}}\n}}"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
