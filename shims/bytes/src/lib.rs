//! Offline shim for `bytes::Bytes`: an immutable, cheaply cloneable byte
//! buffer. Static slices are kept as references (zero-copy, like the real
//! crate); owned data is shared behind an `Arc`.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of bytes physically copied into or out of [`Bytes`]
/// buffers. Cheap refcount clones and `from_static` do not count; copying
/// constructors (`copy_from_slice`, `From<Vec<u8>>`, `From<String>`,
/// `FromIterator`) and `to_vec` do. This metering hook is a deviation from
/// the real `bytes` crate, used by the hotpath bench and zero-copy tests.
static COPIED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Bytes physically copied since process start (or last [`reset_copied_bytes`]).
pub fn copied_bytes() -> u64 {
    COPIED_BYTES.load(Ordering::Relaxed)
}

/// Reset the copy counter to zero. Tests that assert on copy counts should
/// run in their own process (dedicated integration-test file) to avoid
/// cross-test pollution.
pub fn reset_copied_bytes() {
    COPIED_BYTES.store(0, Ordering::Relaxed);
}

fn count_copy(n: usize) {
    COPIED_BYTES.fetch_add(n as u64, Ordering::Relaxed);
}

/// Immutable shared byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// Empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    /// Zero-copy wrapper around a static slice.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    /// Copying constructor from any slice.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        count_copy(data.len());
        Bytes {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        count_copy(self.len());
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        // `Arc::from(vec)` moves the bytes into a fresh refcounted
        // allocation — a physical copy.
        count_copy(v.len());
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 32 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_eq() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.as_ref(), b"hello");
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec().len(), 1024);
    }

    #[test]
    fn deref_gives_slice_methods() {
        let a = Bytes::from_static(b"abc");
        assert_eq!(&a[1..], b"bc");
        assert_eq!(a.iter().copied().max(), Some(b'c'));
    }
}
