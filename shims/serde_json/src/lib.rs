//! Offline shim for `serde_json`: renders and parses the serde shim's
//! [`Value`] model as JSON text. Object keys are always sorted (the model
//! uses `BTreeMap`), so output is deterministic.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error type for serialization/deserialization failures.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

// ---- serialization ----------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; mirror JavaScript's JSON.stringify.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep floats recognizably floats so round-trips stay stable.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push('}');
        }
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Convert any serializable type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::new)
}

// ---- parsing ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                            self.pos -= 1; // compensate for the += 1 below
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a type from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::from_value(&value).map_err(Error::new)
}

/// Parse a type from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_nested() {
        let mut inner = BTreeMap::new();
        inner.insert("a".to_string(), vec![1u64, 2, 3]);
        inner.insert("b".to_string(), vec![]);
        let text = to_string(&inner).unwrap();
        assert_eq!(text, r#"{"a":[1,2,3],"b":[]}"#);
        let back: BTreeMap<String, Vec<u64>> = from_str(&text).unwrap();
        assert_eq!(back, inner);
    }

    #[test]
    fn pretty_output_is_indented_and_sorted() {
        let mut m = BTreeMap::new();
        m.insert("zebra".to_string(), 1u64);
        m.insert("apple".to_string(), 2u64);
        let text = to_string_pretty(&m).unwrap();
        assert_eq!(text, "{\n  \"apple\": 2,\n  \"zebra\": 1\n}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" back\\slash \u{1F600}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escape_parsing() {
        let back: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(back, "A\u{1F600}");
    }

    #[test]
    fn numbers_parse_by_kind() {
        let v: f64 = from_str("2.5").unwrap();
        assert_eq!(v, 2.5);
        let v: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(v, u64::MAX);
        let v: i64 = from_str("-42").unwrap();
        assert_eq!(v, -42);
        let v: f64 = from_str("1e3").unwrap();
        assert_eq!(v, 1000.0);
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn errors_are_displayed() {
        let err = from_str::<u64>("not json").unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
