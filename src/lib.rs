//! Wiera reproduction — facade crate.
//!
//! Re-exports the workspace's public surface so examples and downstream
//! users can depend on a single crate. See the individual crates for the
//! full documentation:
//!
//! * [`wiera`] — the geo-distributed storage system (controller, replicas,
//!   deployments, clients, monitors).
//! * [`tiera`] — the single-DC multi-tiered instance Wiera builds on.
//! * [`wiera_policy`] — the policy specification language.
//! * [`wiera_tiers`] — simulated cloud storage services with cost models.
//! * [`wiera_net`] — the simulated multi-cloud WAN.
//! * [`wiera_coord`] — the ZooKeeper-style coordination service.
//! * [`wiera_workload`] — YCSB-style workload generation.
//! * [`wiera_apps`] — application substrates (FS shim, SysBench, RUBiS).
//! * [`wiera_sim`] — clocks, RNG, and measurement plumbing.

pub use tiera;
pub use wiera;
pub use wiera_apps;
pub use wiera_coord;
pub use wiera_net;
pub use wiera_policy;
pub use wiera_sim;
pub use wiera_tiers;
pub use wiera_workload;

/// Workspace version, for binaries that report it.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_align() {
        // Types from different crates must be the same items through the
        // facade (i.e., a single dependency graph, no duplicate versions).
        let r: crate::wiera_net::Region = crate::wiera_net::Region::UsEast;
        assert_eq!(r.to_string(), "US-East");
        assert!(!crate::VERSION.is_empty());
    }
}
